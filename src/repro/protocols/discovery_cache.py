"""Cross-query cache for §4.3/§4.4 discovery artifacts.

The paper is explicit that discovery "needs to be done only once and
refreshed from time to time" (§4.4) — yet without a cache every C_Noise
or ED_Hist query re-runs the full S_Agg COUNT GROUP BY bootstrap.  This
module is that "once": a per-process cache keyed by **(dataset epoch,
table, column, artifact, parameters)** so overlapping and repeated
queries share one discovery run per epoch.

* The **epoch** is the refresh handle.  :meth:`DiscoveryCache.bump_epoch`
  invalidates everything at once (the "refreshed from time to time"
  event — e.g. after enough TDSs joined or churned that the distribution
  is stale); stale entries can never be served because the epoch is part
  of the key and old-epoch entries are dropped on the bump.
* The **artifact** field keeps protocols from aliasing each other:
  ED_Hist's equi-depth histogram and C_Noise's domain list for the same
  column live under distinct keys (with histogram parameters — the
  bucket count — in the key too).  Both *derive* from the one shared
  frequency table, so the expensive S_Agg run happens once per
  (epoch, table, column) regardless of which protocols consume it.

Privacy argument (also in DESIGN.md §10): the cached artifacts are the
frequency table, domain list and bucket map of the grouping attribute —
exactly the data the paper's discovery phase already computes, returns
to the querier/provider, and distributes to every TDS for each query.
Caching changes *when* that computation happens, never *what* is
revealed or to whom: the cache lives querier/provider-side, and the SSI
only ever sees the same S_Agg wire traffic as before (just less of it).

Trust boundary: protocol role (querier/TDS side).  Plaintext
distributions never transit ssi-role modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, TypeVar

from repro.obs import metrics as obs_metrics
from repro.protocols.deployment import Deployment
from repro.protocols.discovery import discover_distribution
from repro.tds.histogram import EquiDepthHistogram

_HITS = obs_metrics.REGISTRY.counter(
    "repro_discovery_cache_hits_total",
    "Discovery artifacts served from cache, by querier and artifact kind.",
    ("querier", "artifact"),
)
_MISSES = obs_metrics.REGISTRY.counter(
    "repro_discovery_cache_misses_total",
    "Discovery artifacts computed on a cache miss, by querier and artifact.",
    ("querier", "artifact"),
)

_T = TypeVar("_T")


@dataclass(frozen=True)
class DiscoveryKey:
    """Identity of one cached discovery artifact.

    ``artifact`` names the derived shape ("distribution", "domain",
    "histogram"); ``params`` carries artifact parameters that change the
    result (the histogram's bucket count) so e.g. 2-bucket and 4-bucket
    histograms of the same column never alias."""

    epoch: int
    table: str
    column: str
    artifact: str
    params: tuple = ()


class DiscoveryCache:
    """Per-epoch memo of discovery artifacts, with hit/miss counters."""

    def __init__(self) -> None:
        self._epoch = 0
        self._entries: dict[DiscoveryKey, Any] = {}
        # pre-resolved metric children, one per (querier, artifact) seen
        self._c_hits: dict[tuple[str, str], obs_metrics.CounterChild] = {}
        self._c_misses: dict[tuple[str, str], obs_metrics.CounterChild] = {}
        #: lifetime totals (cheap introspection for tests/benchmarks,
        #: independent of the process-global metric registry)
        self.hits = 0
        self.misses = 0

    @property
    def epoch(self) -> int:
        return self._epoch

    def __len__(self) -> int:
        return len(self._entries)

    def bump_epoch(self) -> int:
        """Invalidate every cached artifact: the dataset moved on (TDS
        churn, refresh interval elapsed).  Returns the new epoch."""
        self._epoch += 1
        self._entries.clear()
        return self._epoch

    def key(self, table: str, column: str, artifact: str, params: tuple = ()) -> DiscoveryKey:
        """A key bound to the cache's *current* epoch."""
        return DiscoveryKey(self._epoch, table, column, artifact, params)

    def get_or_compute(
        self, key: DiscoveryKey, compute: Callable[[], _T], subject: str = "discovery"
    ) -> _T:
        """Serve *key* from cache, or run *compute* once and remember it.
        Keys from a bumped (stale) epoch never hit: the epoch is part of
        the key and the bump dropped their entries."""
        if key in self._entries:
            self.hits += 1
            self._hit_child(subject, key.artifact).inc()
            return self._entries[key]
        self.misses += 1
        self._miss_child(subject, key.artifact).inc()
        value = self._entries[key] = compute()
        return value

    # ------------------------------------------------------------------ #
    def _hit_child(
        self, subject: str, artifact: str
    ) -> obs_metrics.CounterChild:
        child = self._c_hits.get((subject, artifact))
        if child is None:
            child = self._c_hits[(subject, artifact)] = _HITS.labels(
                querier=subject, artifact=artifact
            )
        return child

    def _miss_child(
        self, subject: str, artifact: str
    ) -> obs_metrics.CounterChild:
        child = self._c_misses.get((subject, artifact))
        if child is None:
            child = self._c_misses[(subject, artifact)] = _MISSES.labels(
                querier=subject, artifact=artifact
            )
        return child


def cached_distribution(
    cache: DiscoveryCache,
    deployment: Deployment,
    table: str,
    column: str,
    worker_fraction: float = 1.0,
    subject: str = "discovery",
    roles: tuple[str, ...] = ("public",),
) -> dict[Any, int]:
    """:func:`~repro.protocols.discovery.discover_distribution`, once per
    (epoch, table, column).  Returns a copy — callers may mutate theirs
    without corrupting what later queries are served."""
    key = cache.key(table, column, "distribution")
    value = cache.get_or_compute(
        key,
        lambda: discover_distribution(
            deployment, table, column, worker_fraction, subject, roles
        ),
        subject,
    )
    return dict(value)


def cached_domain(
    cache: DiscoveryCache,
    deployment: Deployment,
    table: str,
    column: str,
    worker_fraction: float = 1.0,
    subject: str = "discovery",
    roles: tuple[str, ...] = ("public",),
) -> list[Any]:
    """C_Noise's domain list, derived from the shared cached frequency
    table (no second S_Agg run when the histogram already discovered
    this column this epoch) and cached under its own key."""
    key = cache.key(table, column, "domain")

    def compute() -> list[Any]:
        distribution = cached_distribution(
            cache, deployment, table, column, worker_fraction, subject, roles
        )
        return sorted(distribution, key=lambda v: (str(type(v)), str(v)))

    return list(cache.get_or_compute(key, compute, subject))


def cached_histogram(
    cache: DiscoveryCache,
    deployment: Deployment,
    table: str,
    column: str,
    num_buckets: int,
    worker_fraction: float = 1.0,
    subject: str = "discovery",
    roles: tuple[str, ...] = ("public",),
) -> EquiDepthHistogram:
    """ED_Hist's equi-depth histogram, derived from the shared cached
    frequency table and cached per bucket count."""
    key = cache.key(table, column, "histogram", (num_buckets,))

    def compute() -> EquiDepthHistogram:
        distribution = cached_distribution(
            cache, deployment, table, column, worker_fraction, subject, roles
        )
        return EquiDepthHistogram.from_distribution(distribution, num_buckets)

    return cache.get_or_compute(key, compute, subject)
