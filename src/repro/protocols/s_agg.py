"""S_Agg: the Secure Aggregation protocol (§4.2, Fig. 4).

Collection uses pure nDet_Enc, so the SSI has **no** routing information:
tuples of the same group are randomly scattered across partitions.  The
aggregation phase is therefore *iterative*: each round, connected TDSs
download random partitions of encrypted tuples/partials and upload one
partial aggregation each; the number of items shrinks by the reduction
factor α every round until a single partial holds the final aggregation
(``n = log_α(Nt/G)`` rounds).  The cost model shows α ≈ 3.6 minimizes the
response time (§6.1.1); the default uses that optimum.

Security: every byte the SSI sees is nDet_Enc ciphertext — the most
confidential of the proposed protocols (Fig. 8).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.messages import EncryptedPartial, EncryptedTuple, Partition, QueryEnvelope
from repro.exceptions import ProtocolError
from repro.protocols.base import ProtocolDriver
from repro.sql.ast import SelectStatement
from repro.ssi.partitioner import RandomPartitioner
from repro.tds.node import TrustedDataServer

if TYPE_CHECKING:
    from repro.protocols.verification import SpotChecker

#: optimal reduction factor derived in §6.1.1 (dTQ/dα = 0 → α ≈ 3.6);
#: partitions must hold at least 2 items for the iteration to converge.
ALPHA_OPTIMAL = 3.6


class SAggProtocol(ProtocolDriver):
    """Iterative secure aggregation."""

    name = "s_agg"

    def __init__(
        self,
        *args: Any,
        alpha: float = ALPHA_OPTIMAL,
        spot_checker: "SpotChecker | None" = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(*args, **kwargs)
        if alpha < 2:
            raise ProtocolError("the reduction factor alpha must be >= 2")
        self.alpha = alpha
        #: optional :class:`~repro.protocols.verification.SpotChecker`: when
        #: set, every partial is audited and corrected if tampered (the §8
        #: compromised-TDS countermeasure)
        self.spot_checker = spot_checker

    def execute(self, envelope: QueryEnvelope) -> None:
        statement = self.open_statement(envelope)
        if not statement.is_aggregate_query():
            raise ProtocolError("S_Agg runs Group-By queries; use the basic "
                                "protocol for plain Select-From-Where")
        self._collection_phase(envelope)
        final_partial = self._aggregation_phase(envelope, statement)
        self._filtering_phase(envelope, statement, final_partial)

    # ------------------------------------------------------------------ #
    def _collection_phase(self, envelope: QueryEnvelope) -> None:
        self.run_collection(envelope, lambda tds, env: tds.collect_for_sagg(env))

    def _aggregation_phase(
        self, envelope: QueryEnvelope, statement: SelectStatement
    ) -> EncryptedPartial:
        """Iterate: random partitions of size ⌈α⌉ → one partial per
        partition → repeat on the partials until one remains."""
        items: list[EncryptedTuple | EncryptedPartial] = list(
            self.ssi.covering_result(envelope.query_id)
        )
        partition_size = max(2, round(self.alpha))
        round_index = 0
        while True:
            round_outputs: list[EncryptedPartial] = []
            partitioner = RandomPartitioner(partition_size, self.rng)
            partitions = partitioner.partition(items)

            def handle(worker: TrustedDataServer, partition: Partition) -> int:
                partial = worker.aggregate_partition(statement, partition)
                if self.spot_checker is not None:
                    partial = self.spot_checker.audit_and_correct(
                        statement, partition, partial, worker.tds_id
                    )
                round_outputs.append(partial)
                self.ssi.submit_partials(envelope.query_id, [partial])
                return len(partial.payload)

            self.run_partitions(partitions, handle, round_index=round_index)
            self.ssi.take_partials(envelope.query_id)  # drained into next round
            self.stats.aggregation_rounds += 1
            round_index += 1
            if len(round_outputs) <= 1:
                if not round_outputs:
                    raise ProtocolError("aggregation produced no output")
                return round_outputs[0]
            items = list(round_outputs)

    def _filtering_phase(
        self,
        envelope: QueryEnvelope,
        statement: SelectStatement,
        final_partial: EncryptedPartial,
    ) -> None:
        """One TDS evaluates HAVING + projection on the final aggregation
        and re-encrypts the result under k1 (steps 9-12)."""
        partition = Partition(partition_id=-1, items=(final_partial,))
        worker = self.workers[self.rng.randrange(len(self.workers))]
        rows = worker.finalize_partition(statement, partition)
        self.account(
            "filtering",
            0,
            worker.tds_id,
            partition.byte_size(),
            sum(len(r) for r in rows),
        )
        self.publish(envelope, rows)
