"""Collection- and filtering-phase costs (the technical-report extension).

The paper's TQ deliberately covers only the aggregation phase, "since the
time in the collection phase is application-dependent and is similar for
all protocols, and since the time in the filtering phase is also similar
for all protocols" (§6.1).  The companion technical report [20] carries
the complete model; this module reconstructs the two missing phases so
end-to-end latencies can be compared across deployment scenarios (the
always-on smart meter vs. the seldom-connected PCEHR token of §2.3).

Model assumptions, kept deliberately simple and stated:

* each TDS connects once per ``connection_period`` seconds, uniformly at
  random within the period (smart meter: seconds; PCEHR: days);
* collection needs ``nt`` contributions out of ``population`` candidates:
  with uniform arrivals the SIZE clause closes after
  ``connection_period · nt / population``;
* filtering processes the covering result (basic protocol) or the G final
  partials (aggregate protocols) in waves over the available workers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.params import CostParameters
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class PhaseTimes:
    """End-to-end decomposition of one query."""

    collection: float
    aggregation: float
    filtering: float

    @property
    def total(self) -> float:
        return self.collection + self.aggregation + self.filtering


def collection_time(
    nt: int, population: int, connection_period: float
) -> float:
    """Expected time until *nt* of *population* TDSs have connected and
    contributed, with uniform arrivals over *connection_period*."""
    if population < nt:
        raise ConfigurationError("population must be >= nt")
    if connection_period <= 0:
        raise ConfigurationError("connection_period must be positive")
    return connection_period * nt / population


def filtering_time(
    params: CostParameters, covering_items: int | None = None
) -> float:
    """Filtering-phase makespan: *covering_items* work items (default: G
    final partials, the aggregate-protocol case) spread over the available
    workers."""
    items = covering_items if covering_items is not None else params.g
    workers = max(1.0, params.available_tds)
    # each worker handles its share of the items serially; with fewer
    # items than workers a single item's processing time remains
    items_per_worker = max(1.0, items / workers)
    return items_per_worker * params.tuple_time


def end_to_end(
    params: CostParameters,
    aggregation_seconds: float,
    population: int | None = None,
    connection_period: float = 900.0,
    covering_items: int | None = None,
) -> PhaseTimes:
    """Assemble the full pipeline latency.

    *population* defaults to ``nt / available_fraction`` (the paper's
    convention that the connected fraction is relative to Nt)."""
    pop = population if population is not None else int(params.nt / params.available_fraction)
    pop = max(pop, params.nt)
    return PhaseTimes(
        collection=collection_time(params.nt, pop, connection_period),
        aggregation=aggregation_seconds,
        filtering=filtering_time(params, covering_items),
    )
