"""Analytic cost model of the noise-based protocols (§6.1.2).

Aggregation has two steps.  In step 1, each group's (nf+1)·Nt/G tuples are
spread over n_NB TDSs; in step 2 one TDS per group merges the n_NB
partials:

    TQ     = (n_NB + (nf+1)·Nt/(n_NB·G) + 2) · Tt
    n_NB*  = √((nf+1)·Nt/G)          (Cauchy)
    PTDS   = (n_NB + 1) · G
    LoadQ  = ((nf+1)·Nt + 2·n_NB·G + G) · st
    Tlocal = total TDS work time / PTDS

Availability cap: the phase needs (n_NB+1)·G workers; when fewer TDSs are
connected the work proceeds in waves, stretching TQ proportionally — the
elasticity effect of Fig. 10i/j.
"""

from __future__ import annotations

from repro.costmodel.metrics import CostMetrics
from repro.costmodel.optimizer import optimal_noise_reduction
from repro.costmodel.params import CostParameters


def noise_metrics(
    params: CostParameters,
    nf: int | None = None,
    n_nb: float | None = None,
    label: str | None = None,
) -> CostMetrics:
    """Evaluate the Rnf_Noise/C_Noise model.

    *nf* defaults to ``params.nf``; pass the domain cardinality minus one
    for C_Noise.  *n_nb* overrides the reduction factor (defaults to the
    Cauchy optimum)."""
    nf = params.nf if nf is None else nf
    nt, g, tt, st = params.nt, params.g, params.tuple_time, params.tuple_bytes
    if n_nb is None:
        n_nb = optimal_noise_reduction(nf, nt, g)
    n_nb = max(n_nb, 1.0)

    tuples_per_group = (nf + 1) * nt / g
    base_tq = (n_nb + tuples_per_group / n_nb + 2) * tt
    p_tds = (n_nb + 1) * g

    # Elasticity: fewer connected TDSs than parallel slots → waves.
    waves = max(1.0, p_tds / params.available_tds)
    t_q = base_tq * waves

    load_q = ((nf + 1) * nt + 2 * n_nb * g + g) * st
    total_work_time = ((nf + 1) * nt + 2 * n_nb * g + g) * tt
    t_local = total_work_time / p_tds
    return CostMetrics(
        protocol=label or f"R{nf}_Noise",
        p_tds=p_tds,
        load_q_bytes=load_q,
        t_q_seconds=t_q,
        t_local_seconds=t_local,
    )


def c_noise_metrics(
    params: CostParameters, domain_cardinality: int | None = None
) -> CostMetrics:
    """C_Noise = the noise model with nf = nd − 1 (§4.3: one fake per
    other domain value).  nd is a property of the grouping attribute
    (``params.nd``, default 130 — the paper's Age example), constant
    across the G sweeps as in Fig. 10c."""
    nd = domain_cardinality if domain_cardinality is not None else params.nd
    nd = max(nd, 1)
    return noise_metrics(params, nf=nd - 1, label="C_Noise")


def noise_response_time(params: CostParameters, nf: int, n_nb: float) -> float:
    """TQ(n_NB) — exposed for the reduction-factor ablation."""
    return noise_metrics(params, nf=nf, n_nb=n_nb).t_q_seconds
