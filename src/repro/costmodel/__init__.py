"""Analytic cost model (§6.1) calibrated on device constants (§6.2).

One entry point per protocol plus :func:`all_protocol_metrics` for the
Fig. 10 sweeps.
"""

from __future__ import annotations

from repro.costmodel.ed_hist import ed_hist_metrics, ed_hist_response_time
from repro.costmodel.hardware import (
    SoftwareCalibration,
    UnitTestBreakdown,
    calibrate_software_crypto,
    unit_test_breakdown,
)
from repro.costmodel.metrics import CostMetrics
from repro.costmodel.noise import c_noise_metrics, noise_metrics, noise_response_time
from repro.costmodel.optimizer import (
    optimal_alpha,
    optimal_hist_reductions,
    optimal_noise_reduction,
    s_agg_alpha_objective,
)
from repro.costmodel.params import PAPER_DEFAULTS, CostParameters
from repro.costmodel.phases import PhaseTimes, collection_time, end_to_end, filtering_time
from repro.costmodel.s_agg import s_agg_metrics, s_agg_response_time


def all_protocol_metrics(params: CostParameters) -> dict[str, CostMetrics]:
    """The five curves plotted in every Fig. 10 panel: S_Agg, R2_Noise,
    R1000_Noise, C_Noise and ED_Hist."""
    return {
        "S_Agg": s_agg_metrics(params),
        "R2_Noise": noise_metrics(params, nf=2, label="R2_Noise"),
        "R1000_Noise": noise_metrics(params, nf=1000, label="R1000_Noise"),
        "C_Noise": c_noise_metrics(params),
        "ED_Hist": ed_hist_metrics(params),
    }


__all__ = [
    "CostMetrics",
    "CostParameters",
    "PAPER_DEFAULTS",
    "PhaseTimes",
    "collection_time",
    "end_to_end",
    "filtering_time",
    "SoftwareCalibration",
    "UnitTestBreakdown",
    "all_protocol_metrics",
    "c_noise_metrics",
    "calibrate_software_crypto",
    "ed_hist_metrics",
    "ed_hist_response_time",
    "noise_metrics",
    "noise_response_time",
    "optimal_alpha",
    "optimal_hist_reductions",
    "optimal_noise_reduction",
    "s_agg_alpha_objective",
    "s_agg_metrics",
    "s_agg_response_time",
    "unit_test_breakdown",
]
