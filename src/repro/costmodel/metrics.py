"""The four evaluation metrics (§6.1).

* **PTDS** — TDSs participating in the aggregation computation
  (parallelism);
* **LoadQ** — global resource consumption: total bytes processed by TDSs
  and SSI (scalability in number of concurrent queries);
* **TQ** — response time of the aggregation phase (the collection and
  filtering phases are protocol-independent);
* **Tlocal** — average time each participating TDS spends (feasibility on
  low-power devices).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostMetrics:
    """One protocol's predicted metrics at one parameter point."""

    protocol: str
    p_tds: float
    load_q_bytes: float
    t_q_seconds: float
    t_local_seconds: float

    @property
    def load_q_mb(self) -> float:
        """LoadQ in megabytes, the unit of Fig. 10c/d."""
        return self.load_q_bytes / 1e6
