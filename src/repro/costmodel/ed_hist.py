"""Analytic cost model of ED_Hist (§6.1.3).

Each of the M = G/h buckets holds h·Nt/G tuples.  Step 1 spreads a bucket
over n_ED TDSs (each returning up to h per-group partials); step 2 merges
each group's n_ED partials with m_ED TDSs; a final merge produces the
group's aggregate:

    TQ      = ((h·Nt/G)/n_ED + n_ED/m_ED + m_ED + h + 2) · Tt
    optimum : n_ED = (h·Nt/G)^(2/3), m_ED = (h·Nt/G)^(1/3)
    TQ(op)  = (3·(h·Nt/G)^(1/3) + h + 2) · Tt
    PTDS    = (n_ED/h + m_ED + 1) · G
    LoadQ   = (Nt + 2·n_ED·G + 2·m_ED·G + G) · st
    Tlocal  = (Nt + n_ED·G + m_ED·G) · Tt / PTDS

Like the noise model, an availability shortfall stretches TQ in waves.
"""

from __future__ import annotations

from repro.costmodel.metrics import CostMetrics
from repro.costmodel.optimizer import optimal_hist_reductions
from repro.costmodel.params import CostParameters


def ed_hist_metrics(
    params: CostParameters,
    n_ed: float | None = None,
    m_ed: float | None = None,
) -> CostMetrics:
    """Evaluate the ED_Hist model (reduction factors default to optima)."""
    nt, g, tt, st = params.nt, params.g, params.tuple_time, params.tuple_bytes
    h = params.h
    if n_ed is None or m_ed is None:
        opt_n, opt_m = optimal_hist_reductions(h, nt, g)
        n_ed = opt_n if n_ed is None else n_ed
        m_ed = opt_m if m_ed is None else m_ed
    n_ed = max(n_ed, 1.0)
    m_ed = max(m_ed, 1.0)

    bucket_tuples = h * nt / g
    base_tq = (bucket_tuples / n_ed + n_ed / m_ed + m_ed + h + 2) * tt
    p_tds = (n_ed / h + m_ed + 1) * g

    waves = max(1.0, p_tds / params.available_tds)
    t_q = base_tq * waves

    load_q = (nt + 2 * n_ed * g + 2 * m_ed * g + g) * st
    total_work_time = (nt + n_ed * g + m_ed * g) * tt
    t_local = total_work_time / p_tds
    return CostMetrics(
        protocol="ED_Hist",
        p_tds=p_tds,
        load_q_bytes=load_q,
        t_q_seconds=t_q,
        t_local_seconds=t_local,
    )


def ed_hist_response_time(params: CostParameters, n_ed: float, m_ed: float) -> float:
    """TQ(n_ED, m_ED) — exposed for the reduction-factor ablation."""
    return ed_hist_metrics(params, n_ed=n_ed, m_ed=m_ed).t_q_seconds
