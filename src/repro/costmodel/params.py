"""Cost-model parameters (§6.1) and the paper's defaults (§6.3).

The model's symbols map to fields as follows:

=========  =====================  =======================================
paper      field                  meaning
=========  =====================  =======================================
Nt         ``nt``                 tuples sent to the SSI (≈ participating
                                  TDSs: one tuple each in the model)
G          ``g``                  number of groups
st         ``tuple_bytes``        size of an encrypted tuple (16 B)
Tt         ``tuple_time``         time for a TDS to process one tuple
nf         ``nf``                 fake tuples per true tuple (noise)
h          ``h``                  groups per hash value (ED_Hist)
—          ``available_fraction`` connected TDSs as a fraction of Nt
=========  =====================  =======================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class CostParameters:
    """One point in the evaluation's parameter space."""

    nt: int = 1_000_000
    g: int = 1_000
    tuple_bytes: int = 16
    tuple_time: float = 16e-6
    nf: int = 2
    h: float = 5.0
    available_fraction: float = 0.10
    #: grouping-domain cardinality used by C_Noise (nd − 1 fakes per true
    #: tuple); a property of the attribute, not of the query — the paper's
    #: example is Age with nd ≈ 130 (§4.3)
    nd: int = 130

    def __post_init__(self) -> None:
        if self.nt < 1:
            raise ConfigurationError("nt must be >= 1")
        if not 1 <= self.g <= self.nt:
            raise ConfigurationError("g must be in [1, nt]")
        if self.tuple_bytes < 1 or self.tuple_time <= 0:
            raise ConfigurationError("tuple size/time must be positive")
        if self.nf < 0:
            raise ConfigurationError("nf must be >= 0")
        if self.h < 1:
            raise ConfigurationError("h must be >= 1")
        if not 0 < self.available_fraction <= 1:
            raise ConfigurationError("available_fraction must be in (0, 1]")
        if self.nd < 1:
            raise ConfigurationError("nd must be >= 1")

    @property
    def available_tds(self) -> float:
        """Number of TDSs connected and willing to work a phase."""
        return self.available_fraction * self.nt

    def with_(self, **changes) -> "CostParameters":
        """Functional update (sweep helper)."""
        return replace(self, **changes)


#: §6.3: "When the parameters are fixed, Nt = 10^6, G = 10^3, st = 16 b,
#: Tt = 16 µs, h = 5 and the percentage of TDS connected is 10 % of Nt."
PAPER_DEFAULTS = CostParameters()
