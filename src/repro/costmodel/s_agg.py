"""Analytic cost model of S_Agg (§6.1.1).

The aggregation phase runs ``n = log_α(Nt/G)`` iterative steps; in step i
``N_i = (Nt/G)·α^(−i)`` TDSs each download α partial aggregations of G
(group, aggregate) pairs and upload one.  The paper's closed forms:

    TQ     = (α + 1) · log_α(Nt/G) · G · Tt
    PTDS   = (Nt/G) · Σ_{i=1..n} α^(−i)
    LoadQ  = (1 + 2·Σ α^(−i)) · Nt · st
    Tlocal = (Nt + α·G·Σ_{i=2..n} N_i) · Tt / PTDS

S_Agg's parallelism is self-limited (N_1 = Nt/(αG) TDSs at most), so its
performance does not react to the availability knob — the "lowest
elasticity" verdict of §6.3.
"""

from __future__ import annotations

import math

from repro.costmodel.metrics import CostMetrics
from repro.costmodel.optimizer import optimal_alpha
from repro.costmodel.params import CostParameters

_ALPHA_OP = optimal_alpha()


def s_agg_metrics(params: CostParameters, alpha: float | None = None) -> CostMetrics:
    """Evaluate the S_Agg model at *params* (α defaults to the optimum)."""
    alpha = _ALPHA_OP if alpha is None else alpha
    nt, g, tt, st = params.nt, params.g, params.tuple_time, params.tuple_bytes
    ratio = max(nt / g, alpha)  # at least one aggregation step
    steps = max(math.log(ratio) / math.log(alpha), 1.0)

    # Σ_{i=1..n} α^(−i): the geometric series of per-step TDS counts.
    n_whole = max(int(math.floor(steps)), 1)
    geometric = sum(alpha ** (-i) for i in range(1, n_whole + 1))
    per_step_tds = [(nt / g) * alpha ** (-i) for i in range(1, n_whole + 1)]

    p_tds = (nt / g) * geometric
    t_q = (alpha + 1) * steps * g * tt
    load_q = (1 + 2 * geometric) * nt * st
    tail_tds = sum(per_step_tds[1:])  # Σ_{i=2..n} N_i
    t_local = (nt + alpha * g * tail_tds) * tt / p_tds if p_tds else 0.0
    return CostMetrics(
        protocol="S_Agg",
        p_tds=p_tds,
        load_q_bytes=load_q,
        t_q_seconds=t_q,
        t_local_seconds=t_local,
    )


def s_agg_response_time(params: CostParameters, alpha: float) -> float:
    """TQ(α) — exposed separately for the α-optimum ablation bench."""
    return s_agg_metrics(params, alpha=alpha).t_q_seconds
