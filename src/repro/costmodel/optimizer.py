"""Optimal reduction factors (§6.1).

* S_Agg: minimize f(α) = (α + 1) · log_α(Nt/G).  Setting df/dα = 0 gives
  α·ln α − (α + 1) = 0, whose root is α_op ≈ 3.591 — the paper's 3.6.
  Notably α_op is *independent* of Nt and G.
* Noise-based: by the AM-GM (Cauchy) inequality the optimum of
  n + a/n is n_NB = √a with a = (nf + 1)·Nt/G.
* ED_Hist: the optimum of a/x + x/y + y is x = a^(2/3), y = a^(1/3) with
  a = h·Nt/G.
"""

from __future__ import annotations

import math

from repro.exceptions import ConfigurationError


def s_agg_alpha_objective(alpha: float, ratio: float = math.e) -> float:
    """f(α) = (α + 1) · log_α(ratio); the minimizing α does not depend on
    *ratio* (it only scales f), so any ratio > 1 works."""
    if alpha <= 1:
        raise ConfigurationError("alpha must be > 1")
    if ratio <= 1:
        raise ConfigurationError("ratio must be > 1")
    return (alpha + 1) * math.log(ratio) / math.log(alpha)


def optimal_alpha(tolerance: float = 1e-10) -> float:
    """Solve α·ln α − (α + 1) = 0 by bisection → ≈ 3.5911."""

    def derivative_sign(alpha: float) -> float:
        return alpha * math.log(alpha) - (alpha + 1)

    low, high = 1.5, 10.0
    while high - low > tolerance:
        mid = (low + high) / 2
        if derivative_sign(mid) < 0:
            low = mid
        else:
            high = mid
    return (low + high) / 2


def optimal_noise_reduction(nf: int, nt: int, g: int) -> float:
    """n_NB = √((nf + 1) · Nt / G), from the Cauchy inequality (§6.1.2)."""
    if nt < 1 or g < 1:
        raise ConfigurationError("nt and g must be >= 1")
    if nf < 0:
        raise ConfigurationError("nf must be >= 0")
    return math.sqrt((nf + 1) * nt / g)


def optimal_hist_reductions(h: float, nt: int, g: int) -> tuple[float, float]:
    """(n_ED, m_ED) = (a^(2/3), a^(1/3)) with a = h · Nt / G (§6.1.3)."""
    if nt < 1 or g < 1:
        raise ConfigurationError("nt and g must be >= 1")
    if h < 1:
        raise ConfigurationError("h must be >= 1")
    a = h * nt / g
    return a ** (2.0 / 3.0), a ** (1.0 / 3.0)
