"""Hardware calibration (§6.2) and the Fig. 9b unit-test decomposition.

The paper calibrates its cost model by measuring "encryption, decryption,
hashing, communication and CPU time" on the secure development board and
plugging the numbers into the formulas.  We do the same twice over:

* :func:`unit_test_breakdown` — the *device* decomposition of Fig. 9b,
  straight from :data:`~repro.tds.device.SECURE_TOKEN`'s constants;
* :func:`calibrate_software_crypto` — measures our pure-Python AES and
  reports the slowdown factor versus the hardware coprocessor, documenting
  why concrete simulations use the device model for timing rather than
  wall-clock Python.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.crypto.ndet import NonDeterministicCipher
from repro.tds.device import SECURE_TOKEN, DeviceProfile

#: Fig. 9 uses 4 KB partitions for the unit test.
UNIT_TEST_PARTITION_BYTES = 4096
#: the aggregated result re-encrypted and uploaded after processing
UNIT_TEST_RESULT_BYTES = 64


@dataclass(frozen=True)
class UnitTestBreakdown:
    """Per-operation time to manage one partition (seconds)."""

    transfer: float
    cpu: float
    decrypt: float
    encrypt: float

    def total(self) -> float:
        return self.transfer + self.cpu + self.decrypt + self.encrypt

    def ordering(self) -> list[str]:
        """Operation names sorted by cost, highest first — Fig. 9b's
        message is the ordering transfer > cpu > decrypt > encrypt."""
        named = [
            ("transfer", self.transfer),
            ("cpu", self.cpu),
            ("decrypt", self.decrypt),
            ("encrypt", self.encrypt),
        ]
        return [name for name, __ in sorted(named, key=lambda kv: -kv[1])]


def unit_test_breakdown(
    device: DeviceProfile = SECURE_TOKEN,
    partition_bytes: int = UNIT_TEST_PARTITION_BYTES,
    result_bytes: int = UNIT_TEST_RESULT_BYTES,
) -> UnitTestBreakdown:
    """The Fig. 9b decomposition on *device* for one partition."""
    return UnitTestBreakdown(
        transfer=device.transfer_time(partition_bytes)
        + device.transfer_time(result_bytes),
        cpu=device.cpu_time(partition_bytes),
        decrypt=device.crypto_time(partition_bytes),
        encrypt=device.crypto_time(result_bytes),
    )


@dataclass(frozen=True)
class SoftwareCalibration:
    """Measured pure-Python crypto speed vs. the device coprocessor."""

    python_seconds_per_kb: float
    device_seconds_per_kb: float

    @property
    def slowdown(self) -> float:
        return self.python_seconds_per_kb / self.device_seconds_per_kb


def calibrate_software_crypto(
    sample_bytes: int = 4096, repetitions: int = 3
) -> SoftwareCalibration:
    """Time our pure-Python nDet_Enc on *sample_bytes* and compare with
    the crypto-coprocessor model — the software analogue of the paper's
    unit test."""
    cipher = NonDeterministicCipher(bytes(16))
    payload = bytes(sample_bytes)
    best = float("inf")
    for __ in range(repetitions):
        start = time.perf_counter()
        cipher.decrypt(cipher.encrypt(payload))
        best = min(best, time.perf_counter() - start)
    python_per_kb = best / (2 * sample_bytes / 1024)  # encrypt + decrypt
    device_per_kb = SECURE_TOKEN.crypto_time(1024)
    return SoftwareCalibration(python_per_kb, device_per_kb)
