"""Command-line interface: ``python -m repro <command>``.

Subcommands:

* ``demo``      — run one private query over a synthetic smart-meter
  population with any of the protocols and print the result + stats;
* ``figures``   — regenerate the paper's figure series without pytest;
* ``costmodel`` — evaluate the calibrated cost model at one parameter
  point (all four metrics, all five protocols);
* ``recommend`` — pick a protocol for a deployment scenario (§6.4);
* ``serve``     — run the SSI as an asyncio TCP service (``--data-dir``
  adds durable, tamper-evident state with crash recovery);
* ``fleet``     — run a population of TDS clients against a served SSI;
* ``query``     — post one query to a served SSI and await the result;
* ``multiquery`` — post N concurrent queries to a served SSI and report
  aggregate queries/s and latency percentiles;
* ``stats``     — fetch a served SSI's metrics (Prometheus text form);
* ``verify-log`` — offline integrity check of a ``serve`` data dir.

``serve``/``fleet``/``query`` are three independent processes speaking
the :mod:`repro.net` wire protocol; ``fleet`` and ``query`` must agree
on ``--tds/--districts/--seed`` so both rebuild the same deterministic
deployment (same keys, same credential authority) — the served SSI
itself never holds either.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import random
import sys
from typing import Sequence

from repro.bench import (
    loadq_vs_g,
    ptds_vs_g,
    render_series,
    render_table,
    tlocal_vs_g,
    tq_vs_g,
)
from repro.costmodel import PAPER_DEFAULTS, all_protocol_metrics
from repro.protocols import (
    CNoiseProtocol,
    Deployment,
    DiscoveryCache,
    EDHistProtocol,
    PCEHR_TOKEN_PRIORITIES,
    Priorities,
    RnfNoiseProtocol,
    SAggProtocol,
    SMART_METER_PRIORITIES,
    SelectWhereProtocol,
    build_histogram,
    cached_domain,
    cached_histogram,
    discover_domain,
    recommend_protocol,
)
from repro.workloads import smart_meter_factory

_DEFAULT_QUERY = (
    "SELECT district, AVG(cons) AS avg_cons, COUNT(*) AS meters "
    "FROM Power P, Consumer C WHERE C.cid = P.cid GROUP BY district"
)

PROTOCOL_CHOICES = ("s_agg", "rnf_noise", "c_noise", "ed_hist", "basic")


def _build_driver(name, deployment, workers, rng, nf, cache=None):
    """Instantiate the requested protocol, running discovery when the
    protocol needs domain/distribution knowledge.  With a
    :class:`~repro.protocols.DiscoveryCache`, repeated builds reuse one
    discovery run per dataset epoch instead of re-running S_Agg."""
    common = dict(
        collectors=deployment.tds_list, workers=workers, rng=rng
    )
    if name == "s_agg":
        return SAggProtocol(deployment.ssi, **common)
    if name == "basic":
        return SelectWhereProtocol(deployment.ssi, **common)
    if name in ("rnf_noise", "c_noise"):
        if cache is not None:
            values = cached_domain(cache, deployment, "Consumer", "district")
        else:
            values = discover_domain(deployment, "Consumer", "district")
        domain = [(d,) for d in values]
        if name == "rnf_noise":
            return RnfNoiseProtocol(deployment.ssi, domain=domain, nf=nf, **common)
        return CNoiseProtocol(deployment.ssi, domain=domain, **common)
    if name == "ed_hist":
        if cache is not None:
            histogram = cached_histogram(
                cache, deployment, "Consumer", "district", num_buckets=2
            )
        else:
            histogram = build_histogram(
                deployment, "Consumer", "district", num_buckets=2
            )
        return EDHistProtocol(deployment.ssi, histogram=histogram, **common)
    raise SystemExit(f"unknown protocol {name!r}")


def cmd_demo(args: argparse.Namespace) -> int:
    deployment = Deployment.build(
        args.tds,
        smart_meter_factory(num_districts=args.districts),
        tables=["Power", "Consumer"],
        seed=args.seed,
    )
    querier = deployment.make_querier()
    rng = random.Random(args.seed + 1)
    workers = deployment.connected_tds(args.availability)
    cache = DiscoveryCache() if args.discovery_cache else None
    rows: list = []
    for _ in range(max(1, args.repeat)):
        envelope = querier.make_envelope(args.query)
        deployment.ssi.post_query(envelope)
        driver = _build_driver(
            args.protocol, deployment, workers, rng, args.nf, cache
        )
        driver.execute(envelope)
        rows = querier.decrypt_result(
            deployment.ssi.fetch_result(envelope.query_id)
        )

    print(f"protocol : {driver.name}")
    print(f"query    : {args.query}")
    if args.repeat > 1:
        print(f"repeat   : {args.repeat} run(s)")
    if cache is not None:
        print(
            f"discovery: cache {cache.hits} hit(s) / {cache.misses} miss(es) "
            f"(epoch {cache.epoch})"
        )
    print(f"result   : {len(rows)} row(s)")
    for row in sorted(rows, key=str):
        print(f"  {row}")
    stats = driver.stats
    print(
        f"stats    : covering result {stats.tuples_collected} tuples, "
        f"{len(stats.participants)} TDSs, "
        f"{stats.aggregation_rounds} aggregation round(s), "
        f"{stats.bytes_processed} bytes moved"
    )
    tags = deployment.ssi.observer.tag_frequencies(envelope.query_id)
    print(f"SSI view : {len(tags)} distinct grouping tag(s) observed")
    return 0


_FIGURES = {
    "fig10a": ("PTDS vs G", ptds_vs_g),
    "fig10c": ("LoadQ (MB) vs G", loadq_vs_g),
    "fig10e": ("TQ (s) vs G", tq_vs_g),
    "fig10g": ("Tlocal (s) vs G", tlocal_vs_g),
}


def cmd_figures(args: argparse.Namespace) -> int:
    names = [args.only] if args.only else list(_FIGURES)
    for name in names:
        if name not in _FIGURES:
            raise SystemExit(
                f"unknown figure {name!r}; choose from {', '.join(_FIGURES)} "
                f"(the full set lives in benchmarks/)"
            )
        title, generator = _FIGURES[name]
        print(render_series(f"{name} — {title}", "G", generator()))
        print()
    return 0


def cmd_costmodel(args: argparse.Namespace) -> int:
    params = PAPER_DEFAULTS.with_(
        nt=args.nt, g=args.g, available_fraction=args.availability
    )
    metrics = all_protocol_metrics(params)
    rows = [
        [name, m.p_tds, m.load_q_mb, m.t_q_seconds, m.t_local_seconds]
        for name, m in metrics.items()
    ]
    print(
        render_table(
            f"Cost model @ Nt={params.nt:,}, G={params.g:,}, "
            f"availability={params.available_fraction:.0%}",
            ["protocol", "PTDS", "LoadQ (MB)", "TQ (s)", "Tlocal (s)"],
            rows,
        )
    )
    return 0


_SCENARIOS = {
    "pcehr-token": PCEHR_TOKEN_PRIORITIES,
    "smart-meter": SMART_METER_PRIORITIES,
    "balanced": Priorities(),
}


def cmd_recommend(args: argparse.Namespace) -> int:
    priorities = _SCENARIOS[args.scenario]
    params = PAPER_DEFAULTS.with_(g=args.g)
    recommendation = recommend_protocol(priorities, params)
    print(f"scenario      : {args.scenario}")
    print(f"recommendation: {recommendation.protocol}")
    print("scores        :")
    for name, score in sorted(recommendation.scores.items(), key=lambda kv: -kv[1]):
        print(f"  {name:>12}: {score:.2f}")
    print("axes (worst < ... < best):")
    for axis, ordering in recommendation.rationale.items():
        print(f"  {axis}: {ordering}")
    return 0


_FLEET_QUERY = "SELECT district, COUNT(*) AS meters FROM Consumer GROUP BY district"

NET_PROTOCOLS = ("s_agg", "ed_hist")


def _fleet_deployment(args: argparse.Namespace) -> Deployment:
    """The deterministic population ``fleet`` and ``query`` both rebuild
    (identical keys/authority under identical --tds/--districts/--seed)."""
    return Deployment.build(
        args.tds,
        smart_meter_factory(num_districts=args.districts),
        tables=["Power", "Consumer"],
        seed=args.seed,
    )


def cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.net.server import SSIDispatcher, SSIServer
    from repro.obs import spans as obs_spans
    from repro.obs.health import HealthMonitor
    from repro.obs.http import start_metrics_server
    from repro.obs.logs import configure_json_logging
    from repro.ssi.admission import AdmissionPolicy
    from repro.ssi.server import SupportingServerInfrastructure

    obs_spans.set_process_label("ssi")
    if args.json_logs:
        configure_json_logging()
    admission = AdmissionPolicy(
        max_active_queries=args.max_active_queries,
        max_pending_bytes=args.max_pending_bytes,
        retry_after=args.admission_retry_after,
    )

    async def _serve() -> None:
        store = None
        if args.data_dir is not None:
            from repro.store import DurableStore

            store = DurableStore.open(
                args.data_dir, fsync_policy=args.fsync_policy
            )
            recovered = store.recovered
            dispatcher = SSIDispatcher.with_store(
                store,
                partition_timeout=args.partition_timeout,
                admission=admission,
            )
            print(
                f"durable state: {args.data_dir} "
                f"({'clean start' if recovered.clean else 'recovered'}: "
                f"{len(dispatcher.ssi.envelope_map())} query(ies), "
                f"{recovered.replayed_records} record(s) replayed, "
                f"commitment at {store.commitment().count}, "
                f"fsync={args.fsync_policy})",
                flush=True,
            )
        else:
            dispatcher = SSIDispatcher(
                SupportingServerInfrastructure(),
                partition_timeout=args.partition_timeout,
                admission=admission,
                drain_quantum=args.drain_quantum,
            )
        # Rolling-window SLO verdicts: answers MSG_GET_HEALTH, drives
        # the repro_health_status gauge and upgrades /healthz to a JSON
        # verdict with a 503 on degradation.
        monitor = HealthMonitor(
            window=args.health_window, interval=args.health_interval
        )
        dispatcher.health = monitor
        server = SSIServer(
            dispatcher,
            host=args.host,
            port=args.port,
            read_timeout=args.read_timeout,
        )
        await server.start()
        await monitor.start()
        metrics_server = None
        if args.metrics_port is not None:
            metrics_server = await start_metrics_server(
                host=args.host, port=args.metrics_port, health=monitor
            )
            metrics_port = metrics_server.sockets[0].getsockname()[1]
            print(
                f"metrics on http://{args.host}:{metrics_port}/metrics",
                flush=True,
            )
        print(f"SSI listening on {server.host}:{server.port}", flush=True)
        # Graceful shutdown (SIGTERM/SIGINT): stop accepting, drain
        # in-flight requests, flush the WAL and write a clean-shutdown
        # snapshot so the next start recovers without replay.
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-Unix
                pass
        serve_task = asyncio.ensure_future(server.serve_forever())
        stop_task = asyncio.ensure_future(stop.wait())
        try:
            await asyncio.wait(
                (serve_task, stop_task), return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            stop_task.cancel()
            serve_task.cancel()
            await asyncio.gather(serve_task, stop_task, return_exceptions=True)
            await monitor.stop()
            drained = await server.drain(timeout=args.drain_timeout)
            if metrics_server is not None:
                metrics_server.close()
                await metrics_server.wait_closed()
            await server.close()
            if store is not None:
                store.close(dispatcher.capture_state())
                print(
                    "SSI stopped "
                    f"({'drained' if drained else 'drain timed out'}; "
                    f"durable state flushed, commitment at "
                    f"{store.commitment().count})",
                    flush=True,
                )
            else:
                print("SSI stopped", flush=True)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("SSI stopped")
    return 0


def cmd_verify_log(args: argparse.Namespace) -> int:
    from repro.exceptions import CorruptLogError
    from repro.store import verify_data_dir

    try:
        report = verify_data_dir(args.data_dir)
    except CorruptLogError as exc:
        print(f"verify-log FAILED: {exc}", file=sys.stderr)
        return 1
    print(f"data dir  : {args.data_dir}")
    print(
        f"WAL       : {report['wal_records']} record(s) in "
        f"{report['wal_segments']} segment(s)"
    )
    print(
        f"snapshots : {report['snapshots']} retained "
        f"(latest at WAL seq {report['snapshot_seq']}, "
        f"clean={'yes' if report['clean'] else 'no'})"
    )
    print(
        f"commitment: {report['commitment_count']} record(s), "
        f"head {report['commitment_head']}"
    )
    print("verify-log OK")
    return 0


def fleet_shard_builder(
    tds: int, districts: int, seed: int, buckets: int
) -> tuple[list, object]:
    """Shard-worker builder (``"repro.cli:fleet_shard_builder"``):
    rebuild the deterministic fleet deployment and histogram inside a
    spawn worker so every shard agrees on keys and credentials."""
    from repro.protocols import build_histogram

    deployment = Deployment.build(
        tds,
        smart_meter_factory(num_districts=districts),
        tables=["Power", "Consumer"],
        seed=seed,
    )
    histogram = build_histogram(
        deployment, "Consumer", "district", num_buckets=buckets
    )
    return deployment.tds_list, histogram


def cmd_fleet(args: argparse.Namespace) -> int:
    from repro.crypto import cache as crypto_cache
    from repro.crypto.pool import CryptoPool
    from repro.net.fleet import FleetRunner, ShardedFleetRunner
    from repro.net.transport import TCPTransport
    from repro.obs import spans as obs_spans
    from repro.protocols import build_histogram

    obs_spans.set_process_label("fleet")
    if args.crypto_engine != "auto":
        # The env var (inherited by spawn workers) and the in-process
        # selection both follow the flag.
        os.environ[crypto_cache.ENGINE_ENV] = args.crypto_engine
    crypto_cache.use_engine(args.crypto_engine)

    def report(stats) -> None:
        print(
            f"fleet done: {stats.contributions} contributions, "
            f"{stats.tuples_submitted} tuples, "
            f"{stats.partitions_processed} partitions, "
            f"{len(stats.queries_completed)} query(ies) completed"
        )

    if args.shards > 1:

        async def _run_sharded() -> None:
            runner = ShardedFleetRunner(
                args.host,
                args.port,
                "repro.cli:fleet_shard_builder",
                (args.tds, args.districts, args.seed, args.buckets),
                shards=args.shards,
                seed=args.seed + 1,
                batch_size=args.batch,
                crypto_workers=args.crypto_workers,
                window=args.window,
                concurrency=args.concurrency,
                poll_interval=args.poll_interval,
                span_export=args.span_export,
            )
            print(
                f"sharded fleet: {args.tds} TDS across {args.shards} "
                f"workers -> {args.host}:{args.port}",
                flush=True,
            )
            report(await runner.run(until_queries_done=args.queries))

        try:
            asyncio.run(_run_sharded())
        except KeyboardInterrupt:
            print("fleet stopped")
        return 0

    deployment = _fleet_deployment(args)
    histogram = build_histogram(
        deployment, "Consumer", "district", num_buckets=args.buckets
    )

    pool = (
        CryptoPool(args.crypto_workers) if args.crypto_workers > 0 else None
    )

    async def _run() -> None:
        fleet = FleetRunner(
            deployment.tds_list,
            lambda: TCPTransport(args.host, args.port, window=args.window),
            histogram=histogram,
            concurrency=args.concurrency,
            poll_interval=args.poll_interval,
            batch_size=args.batch,
            crypto_pool=pool,
            health_check_interval=args.health_check_interval,
            rng=random.Random(args.seed + 1),
        )
        print(
            f"fleet of {len(deployment.tds_list)} TDS clients -> "
            f"{args.host}:{args.port}",
            flush=True,
        )
        report(await fleet.run(until_queries_done=args.queries))

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("fleet stopped")
    finally:
        if pool is not None:
            pool.close()
        if args.span_export:
            with open(f"{args.span_export}.jsonl", "w", encoding="utf-8") as fp:
                exported = obs_spans.RECORDER.export_jsonl(fp)
            print(f"spans    : {exported} -> {args.span_export}.jsonl")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    import uuid

    from repro.net.client import QuerierClient
    from repro.net.frames import QueryMeta
    from repro.net.transport import TCPTransport
    from repro.obs import spans as obs_spans
    from repro.protocols import ALPHA_OPTIMAL

    obs_spans.set_process_label("querier")
    deployment = _fleet_deployment(args)
    querier = deployment.make_querier()
    # fresh_query_id() is only process-unique; independent `query`
    # processes hitting one served SSI need globally unique ids.
    query_id = args.query_id or f"q-{uuid.uuid4().hex[:12]}"
    envelope = querier.make_envelope(args.query, query_id=query_id)
    meta = QueryMeta(
        args.protocol,
        {
            "alpha": ALPHA_OPTIMAL,
            "first_step_partition_size": 64.0,
            "filter_partition_size": 64.0,
            "partition_timeout": args.partition_timeout,
        },
    )
    trace_id = obs_spans.derive_trace_id(query_id)
    root = obs_spans.RECORDER.start(
        "query", trace_id=trace_id, query_id=query_id, protocol=args.protocol
    )

    async def _run() -> list[dict]:
        client = QuerierClient(TCPTransport(args.host, args.port))
        client.set_trace_context(
            obs_spans.TraceContext(trace_id, root.context.span_id)
        )
        try:
            await client.post_query(envelope, meta=meta)
            result = await client.wait_result(
                envelope.query_id, timeout=args.timeout
            )
        finally:
            await client.close()
        return querier.decrypt_result(result)

    try:
        rows = asyncio.run(_run())
    finally:
        root.finish()
        if args.span_export:
            with open(f"{args.span_export}.jsonl", "w", encoding="utf-8") as fp:
                obs_spans.RECORDER.export_jsonl(fp)
    print(f"protocol : {args.protocol} (fleet-mode over TCP)")
    print(f"query    : {args.query}")
    print(f"result   : {len(rows)} row(s)")
    for row in sorted(rows, key=str):
        print(f"  {row}")
    return 0


def cmd_multiquery(args: argparse.Namespace) -> int:
    import uuid

    from repro.net.client import QuerierClient
    from repro.net.multiquery import MultiQueryRunner, QuerySpec
    from repro.net.transport import TCPTransport
    from repro.obs import spans as obs_spans
    from repro.protocols import ALPHA_OPTIMAL

    obs_spans.set_process_label("querier")
    deployment = _fleet_deployment(args)
    querier = deployment.make_querier()
    sql = args.query
    if args.size_tuples > 0 and "SIZE" not in sql.upper():
        sql = f"{sql} SIZE {args.size_tuples} TUPLES"
    params = {
        "alpha": ALPHA_OPTIMAL,
        "first_step_partition_size": 64.0,
        "filter_partition_size": 64.0,
        "partition_timeout": args.partition_timeout,
    }
    specs = [
        QuerySpec(sql, protocol=args.protocol, params=params)
        for _ in range(args.count)
    ]

    async def _run():
        client = QuerierClient(
            TCPTransport(args.host, args.port, window=args.window)
        )
        runner = MultiQueryRunner(
            querier,
            client,
            concurrency=args.concurrency,
            result_timeout=args.timeout,
            id_factory=lambda: f"q-{uuid.uuid4().hex[:12]}",
        )
        try:
            return await runner.run(specs)
        finally:
            await client.close()

    stats = asyncio.run(_run())
    print(f"protocol : {args.protocol} (fleet-mode over TCP)")
    print(f"query    : {sql}")
    print(
        f"batch    : {len(stats.outcomes)} queries, "
        f"concurrency {args.concurrency}"
    )
    print(
        f"timing   : {stats.wall_seconds:.3f}s wall, "
        f"{stats.queries_per_s:.2f} queries/s, "
        f"p50 {stats.p50_s:.3f}s, p95 {stats.p95_s:.3f}s"
    )
    for outcome in stats.outcomes[: args.show_rows]:
        print(f"  {outcome.query_id}: {len(outcome.rows)} row(s)")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    from repro.net.client import AsyncSSIClient
    from repro.net.transport import TCPTransport
    from repro.obs.metrics import diff_snapshots, parse_prometheus_text

    async def _fetch() -> str:
        client = AsyncSSIClient(TCPTransport(args.host, args.port))
        try:
            return await client.get_stats()
        finally:
            await client.close()

    if not args.watch:
        sys.stdout.write(asyncio.run(_fetch()))
        return 0

    # --watch: periodic redraw of per-interval deltas.  Counters and
    # histograms become rates over the interval; gauges stay absolute
    # (their level is the signal, not their derivative).
    import time as _time

    from repro.bench import render_table

    previous = None
    iteration = 0
    while True:
        snapshot, kinds = parse_prometheus_text(asyncio.run(_fetch()))
        if previous is not None:
            gauges = tuple(n for n, kind in kinds.items() if kind == "gauge")
            delta = diff_snapshots(previous, snapshot, absolute=gauges)
            rows = []
            for name in sorted(delta):
                for key, sample in sorted(delta[name].items()):
                    labels = ",".join(f"{k}={v}" for k, v in key)
                    if isinstance(sample, dict):
                        count = sample["count"]
                        if not count:
                            continue
                        rows.append(
                            [
                                f"{name}{{{labels}}}" if labels else name,
                                f"{count / args.interval:,.1f}/s "
                                f"avg={sample['sum'] / count:.4f}s",
                            ]
                        )
                    elif kinds.get(name) == "gauge":
                        if sample:
                            rows.append(
                                [f"{name}{{{labels}}}" if labels else name,
                                 f"{sample:,.1f}"]
                            )
                    elif sample:
                        rows.append(
                            [
                                f"{name}{{{labels}}}" if labels else name,
                                f"{sample / args.interval:,.1f}/s",
                            ]
                        )
            print(
                render_table(
                    f"rates over the last {args.interval:g}s "
                    f"(gauges absolute)",
                    ["series", "value"],
                    rows or [["(no activity)", "-"]],
                ),
                flush=True,
            )
            print(flush=True)
        previous = snapshot
        iteration += 1
        if args.count and iteration > args.count:
            return 0
        _time.sleep(args.interval)


def cmd_obs_report(args: argparse.Namespace) -> int:
    from repro.obs import attribution

    records = []
    if args.spans:
        records.extend(attribution.load_records(args.spans))
    if args.url:
        records.extend(attribution.fetch_records(args.url))
    if not records:
        print("no spans: pass --spans FILE... and/or --url URL", file=sys.stderr)
        return 2
    report = attribution.build_report(records)
    if args.html:
        with open(args.html, "w") as fh:
            fh.write(attribution.render_html(report))
        print(f"wrote {args.html}")
    if args.json:
        print(attribution.report_json(report))
    else:
        print(attribution.render_console(report))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Privacy-preserving decentralized SQL (EDBT 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run one private query end-to-end")
    demo.add_argument("--protocol", choices=PROTOCOL_CHOICES, default="s_agg")
    demo.add_argument("--query", default=_DEFAULT_QUERY)
    demo.add_argument("--tds", type=int, default=30, help="population size")
    demo.add_argument("--districts", type=int, default=4)
    demo.add_argument("--availability", type=float, default=0.5)
    demo.add_argument("--nf", type=int, default=2, help="fakes per tuple (rnf_noise)")
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument(
        "--repeat", type=int, default=1,
        help="run the query this many times (discovery repeats too "
        "unless cached)",
    )
    demo.add_argument(
        "--discovery-cache", action="store_true",
        help="share one discovery run across repeats (§4.4: 'done only "
        "once and refreshed from time to time')",
    )
    demo.set_defaults(func=cmd_demo)

    figures = sub.add_parser("figures", help="print paper figure series")
    figures.add_argument("--only", help="one of: " + ", ".join(_FIGURES))
    figures.set_defaults(func=cmd_figures)

    costmodel = sub.add_parser("costmodel", help="evaluate the cost model")
    costmodel.add_argument("--nt", type=int, default=PAPER_DEFAULTS.nt)
    costmodel.add_argument("--g", type=int, default=PAPER_DEFAULTS.g)
    costmodel.add_argument(
        "--availability", type=float, default=PAPER_DEFAULTS.available_fraction
    )
    costmodel.set_defaults(func=cmd_costmodel)

    recommend = sub.add_parser(
        "recommend", help="pick a protocol for a deployment scenario (§6.4)"
    )
    recommend.add_argument(
        "--scenario", choices=sorted(_SCENARIOS), default="balanced"
    )
    recommend.add_argument("--g", type=int, default=PAPER_DEFAULTS.g)
    recommend.set_defaults(func=cmd_recommend)

    serve = sub.add_parser("serve", help="run the SSI as an asyncio TCP service")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7464)
    serve.add_argument(
        "--partition-timeout", type=float, default=5.0,
        help="seconds before an assigned partition is reassigned",
    )
    serve.add_argument(
        "--read-timeout", type=float, default=30.0,
        help="per-connection idle read timeout in seconds",
    )
    serve.add_argument(
        "--metrics-port", type=int, default=None,
        help="also expose GET /metrics on this HTTP port (0 = ephemeral)",
    )
    serve.add_argument(
        "--json-logs", action="store_true",
        help="emit structured JSON logs (redaction-filtered) on stderr",
    )
    serve.add_argument(
        "--data-dir", default=None,
        help="persist SSI state (WAL + snapshots) here and recover from "
        "it on start; default is in-memory only",
    )
    serve.add_argument(
        "--fsync-policy", choices=("group", "batch", "none"), default="group",
        help="WAL durability: group = ack after fsync (group commit), "
        "batch = background fsync interval, none = page cache only",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=10.0,
        help="seconds to wait for in-flight requests on SIGTERM/SIGINT",
    )
    serve.add_argument(
        "--max-active-queries", type=int, default=0,
        help="per-querier quota of unpublished queries (0 = unlimited); "
        "a post over quota answers ERR_ADMISSION with a retry-after hint",
    )
    serve.add_argument(
        "--max-pending-bytes", type=int, default=0,
        help="per-querier quota of queued submission bytes (0 = unlimited)",
    )
    serve.add_argument(
        "--admission-retry-after", type=float, default=0.05,
        help="backoff hint (seconds) carried on ERR_ADMISSION rejections",
    )
    serve.add_argument(
        "--drain-quantum", type=int, default=0,
        help="weighted round-robin drain: max queued submissions applied "
        "per querier per round (0 = flush fully; in-memory serving only)",
    )
    serve.add_argument(
        "--health-window", type=float, default=30.0,
        help="rolling window (seconds) the health monitor evaluates "
        "SLOs over",
    )
    serve.add_argument(
        "--health-interval", type=float, default=5.0,
        help="seconds between health monitor registry samples",
    )
    serve.set_defaults(func=cmd_serve)

    verify_log = sub.add_parser(
        "verify-log",
        help="verify a serve --data-dir offline (WAL CRCs, snapshot "
        "integrity, commitment-chain consistency); exits 1 on corruption",
    )
    verify_log.add_argument("--data-dir", required=True)
    verify_log.set_defaults(func=cmd_verify_log)

    fleet = sub.add_parser(
        "fleet", help="run a population of TDS clients against a served SSI"
    )
    fleet.add_argument("--host", default="127.0.0.1")
    fleet.add_argument("--port", type=int, default=7464)
    fleet.add_argument("--tds", type=int, default=16, help="population size")
    fleet.add_argument("--districts", type=int, default=4)
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--buckets", type=int, default=2, help="ed_hist buckets")
    fleet.add_argument("--concurrency", type=int, default=8)
    fleet.add_argument("--poll-interval", type=float, default=0.05)
    fleet.add_argument(
        "--shards",
        type=int,
        default=1,
        help="worker processes to partition the population across",
    )
    fleet.add_argument(
        "--batch",
        type=int,
        default=0,
        help="coalesce contributions into batch frames of this size (0=off)",
    )
    fleet.add_argument(
        "--window",
        type=int,
        default=32,
        help="max in-flight pipelined requests per connection",
    )
    fleet.add_argument(
        "--crypto-workers",
        type=int,
        default=0,
        help="crypto worker processes per fleet/shard (0=encrypt inline)",
    )
    fleet.add_argument(
        "--crypto-engine",
        choices=("auto", "cryptography", "ttable", "reference"),
        default="auto",
        help="AES engine (auto prefers the cryptography package)",
    )
    fleet.add_argument(
        "--queries", type=int, default=None,
        help="stop after this many completed queries (default: run forever)",
    )
    fleet.add_argument(
        "--span-export", default=None,
        help="write lifecycle spans to <prefix>[.shardN].jsonl on exit",
    )
    fleet.add_argument(
        "--health-check-interval", type=float, default=0.0,
        help="poll MSG_GET_HEALTH this often (seconds) and back off the "
        "poll loop while the SSI self-reports degraded (0=off)",
    )
    fleet.set_defaults(func=cmd_fleet)

    query = sub.add_parser(
        "query", help="post one query to a served SSI and await the result"
    )
    query.add_argument("--host", default="127.0.0.1")
    query.add_argument("--port", type=int, default=7464)
    query.add_argument("--protocol", choices=NET_PROTOCOLS, default="s_agg")
    query.add_argument("--query", default=_FLEET_QUERY)
    query.add_argument("--tds", type=int, default=16, help="population size")
    query.add_argument("--districts", type=int, default=4)
    query.add_argument("--seed", type=int, default=0)
    query.add_argument("--partition-timeout", type=float, default=5.0)
    query.add_argument("--timeout", type=float, default=60.0)
    query.add_argument(
        "--query-id", default=None,
        help="explicit query id (default: a fresh globally unique id)",
    )
    query.add_argument(
        "--span-export", default=None,
        help="write the querier-side lifecycle spans to <prefix>.jsonl",
    )
    query.set_defaults(func=cmd_query)

    multiquery = sub.add_parser(
        "multiquery",
        help="post N concurrent queries to a served SSI and report "
        "aggregate queries/s and latency percentiles",
    )
    multiquery.add_argument("--host", default="127.0.0.1")
    multiquery.add_argument("--port", type=int, default=7464)
    multiquery.add_argument("--protocol", choices=NET_PROTOCOLS, default="s_agg")
    multiquery.add_argument("--query", default=_FLEET_QUERY)
    multiquery.add_argument("--count", type=int, default=4, help="queries to run")
    multiquery.add_argument(
        "--concurrency", type=int, default=4,
        help="max queries in flight at once (1 = serial baseline)",
    )
    multiquery.add_argument("--tds", type=int, default=16, help="population size")
    multiquery.add_argument("--districts", type=int, default=4)
    multiquery.add_argument("--seed", type=int, default=0)
    multiquery.add_argument(
        "--size-tuples", type=int, default=0,
        help="append a SIZE clause so the SSI closes collection "
        "(0 = post the query text as-is)",
    )
    multiquery.add_argument("--partition-timeout", type=float, default=5.0)
    multiquery.add_argument("--timeout", type=float, default=60.0)
    multiquery.add_argument("--window", type=int, default=32)
    multiquery.add_argument(
        "--show-rows", type=int, default=0,
        help="print per-query row counts for the first N queries",
    )
    multiquery.set_defaults(func=cmd_multiquery)

    stats = sub.add_parser(
        "stats", help="fetch a served SSI's metrics (Prometheus text form)"
    )
    stats.add_argument("--host", default="127.0.0.1")
    stats.add_argument("--port", type=int, default=7464)
    stats.add_argument(
        "--watch", action="store_true",
        help="redraw per-interval rates instead of dumping totals once",
    )
    stats.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between --watch samples",
    )
    stats.add_argument(
        "--count", type=int, default=0,
        help="stop --watch after this many redraws (0 = until ^C)",
    )
    stats.set_defaults(func=cmd_stats)

    obs = sub.add_parser(
        "obs", help="interpret observability exports (spans, metrics)"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    report = obs_sub.add_parser(
        "report",
        help="latency attribution from span JSONL (file or /spans URL)",
    )
    report.add_argument(
        "--spans", nargs="+", default=[],
        help="span JSONL export path(s), e.g. "
        "benchmarks/results/spans_multiq.jsonl",
    )
    report.add_argument(
        "--url", default=None,
        help="fetch spans from a live endpoint, e.g. "
        "http://127.0.0.1:9464/spans",
    )
    report.add_argument(
        "--json", action="store_true", help="print the full report as JSON"
    )
    report.add_argument(
        "--html", default=None, metavar="FILE",
        help="also write a single-file HTML report here",
    )
    report.set_defaults(func=cmd_obs_report)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
