"""Command-line interface: ``python -m repro <command>``.

Four subcommands:

* ``demo``      — run one private query over a synthetic smart-meter
  population with any of the protocols and print the result + stats;
* ``figures``   — regenerate the paper's figure series without pytest;
* ``costmodel`` — evaluate the calibrated cost model at one parameter
  point (all four metrics, all five protocols);
* ``attack``    — replay the frequency-based attack against each
  protocol's observation log.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Sequence

from repro.bench import (
    loadq_vs_g,
    ptds_vs_g,
    render_series,
    render_table,
    tlocal_vs_g,
    tq_vs_g,
)
from repro.costmodel import PAPER_DEFAULTS, all_protocol_metrics
from repro.protocols import (
    CNoiseProtocol,
    Deployment,
    EDHistProtocol,
    PCEHR_TOKEN_PRIORITIES,
    Priorities,
    RnfNoiseProtocol,
    SAggProtocol,
    SMART_METER_PRIORITIES,
    SelectWhereProtocol,
    build_histogram,
    discover_domain,
    recommend_protocol,
)
from repro.workloads import smart_meter_factory

_DEFAULT_QUERY = (
    "SELECT district, AVG(cons) AS avg_cons, COUNT(*) AS meters "
    "FROM Power P, Consumer C WHERE C.cid = P.cid GROUP BY district"
)

PROTOCOL_CHOICES = ("s_agg", "rnf_noise", "c_noise", "ed_hist", "basic")


def _build_driver(name, deployment, workers, rng, nf):
    """Instantiate the requested protocol, running discovery when the
    protocol needs domain/distribution knowledge."""
    common = dict(
        collectors=deployment.tds_list, workers=workers, rng=rng
    )
    if name == "s_agg":
        return SAggProtocol(deployment.ssi, **common)
    if name == "basic":
        return SelectWhereProtocol(deployment.ssi, **common)
    if name == "rnf_noise":
        domain = [(d,) for d in discover_domain(deployment, "Consumer", "district")]
        return RnfNoiseProtocol(deployment.ssi, domain=domain, nf=nf, **common)
    if name == "c_noise":
        domain = [(d,) for d in discover_domain(deployment, "Consumer", "district")]
        return CNoiseProtocol(deployment.ssi, domain=domain, **common)
    if name == "ed_hist":
        histogram = build_histogram(deployment, "Consumer", "district", num_buckets=2)
        return EDHistProtocol(deployment.ssi, histogram=histogram, **common)
    raise SystemExit(f"unknown protocol {name!r}")


def cmd_demo(args: argparse.Namespace) -> int:
    deployment = Deployment.build(
        args.tds,
        smart_meter_factory(num_districts=args.districts),
        tables=["Power", "Consumer"],
        seed=args.seed,
    )
    querier = deployment.make_querier()
    envelope = querier.make_envelope(args.query)
    deployment.ssi.post_query(envelope)
    rng = random.Random(args.seed + 1)
    workers = deployment.connected_tds(args.availability)
    driver = _build_driver(args.protocol, deployment, workers, rng, args.nf)
    driver.execute(envelope)
    rows = querier.decrypt_result(deployment.ssi.fetch_result(envelope.query_id))

    print(f"protocol : {driver.name}")
    print(f"query    : {args.query}")
    print(f"result   : {len(rows)} row(s)")
    for row in sorted(rows, key=str):
        print(f"  {row}")
    stats = driver.stats
    print(
        f"stats    : covering result {stats.tuples_collected} tuples, "
        f"{len(stats.participants)} TDSs, "
        f"{stats.aggregation_rounds} aggregation round(s), "
        f"{stats.bytes_processed} bytes moved"
    )
    tags = deployment.ssi.observer.tag_frequencies(envelope.query_id)
    print(f"SSI view : {len(tags)} distinct grouping tag(s) observed")
    return 0


_FIGURES = {
    "fig10a": ("PTDS vs G", ptds_vs_g),
    "fig10c": ("LoadQ (MB) vs G", loadq_vs_g),
    "fig10e": ("TQ (s) vs G", tq_vs_g),
    "fig10g": ("Tlocal (s) vs G", tlocal_vs_g),
}


def cmd_figures(args: argparse.Namespace) -> int:
    names = [args.only] if args.only else list(_FIGURES)
    for name in names:
        if name not in _FIGURES:
            raise SystemExit(
                f"unknown figure {name!r}; choose from {', '.join(_FIGURES)} "
                f"(the full set lives in benchmarks/)"
            )
        title, generator = _FIGURES[name]
        print(render_series(f"{name} — {title}", "G", generator()))
        print()
    return 0


def cmd_costmodel(args: argparse.Namespace) -> int:
    params = PAPER_DEFAULTS.with_(
        nt=args.nt, g=args.g, available_fraction=args.availability
    )
    metrics = all_protocol_metrics(params)
    rows = [
        [name, m.p_tds, m.load_q_mb, m.t_q_seconds, m.t_local_seconds]
        for name, m in metrics.items()
    ]
    print(
        render_table(
            f"Cost model @ Nt={params.nt:,}, G={params.g:,}, "
            f"availability={params.available_fraction:.0%}",
            ["protocol", "PTDS", "LoadQ (MB)", "TQ (s)", "Tlocal (s)"],
            rows,
        )
    )
    return 0


_SCENARIOS = {
    "pcehr-token": PCEHR_TOKEN_PRIORITIES,
    "smart-meter": SMART_METER_PRIORITIES,
    "balanced": Priorities(),
}


def cmd_recommend(args: argparse.Namespace) -> int:
    priorities = _SCENARIOS[args.scenario]
    params = PAPER_DEFAULTS.with_(g=args.g)
    recommendation = recommend_protocol(priorities, params)
    print(f"scenario      : {args.scenario}")
    print(f"recommendation: {recommendation.protocol}")
    print("scores        :")
    for name, score in sorted(recommendation.scores.items(), key=lambda kv: -kv[1]):
        print(f"  {name:>12}: {score:.2f}")
    print("axes (worst < ... < best):")
    for axis, ordering in recommendation.rationale.items():
        print(f"  {axis}: {ordering}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Privacy-preserving decentralized SQL (EDBT 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run one private query end-to-end")
    demo.add_argument("--protocol", choices=PROTOCOL_CHOICES, default="s_agg")
    demo.add_argument("--query", default=_DEFAULT_QUERY)
    demo.add_argument("--tds", type=int, default=30, help="population size")
    demo.add_argument("--districts", type=int, default=4)
    demo.add_argument("--availability", type=float, default=0.5)
    demo.add_argument("--nf", type=int, default=2, help="fakes per tuple (rnf_noise)")
    demo.add_argument("--seed", type=int, default=0)
    demo.set_defaults(func=cmd_demo)

    figures = sub.add_parser("figures", help="print paper figure series")
    figures.add_argument("--only", help="one of: " + ", ".join(_FIGURES))
    figures.set_defaults(func=cmd_figures)

    costmodel = sub.add_parser("costmodel", help="evaluate the cost model")
    costmodel.add_argument("--nt", type=int, default=PAPER_DEFAULTS.nt)
    costmodel.add_argument("--g", type=int, default=PAPER_DEFAULTS.g)
    costmodel.add_argument(
        "--availability", type=float, default=PAPER_DEFAULTS.available_fraction
    )
    costmodel.set_defaults(func=cmd_costmodel)

    recommend = sub.add_parser(
        "recommend", help="pick a protocol for a deployment scenario (§6.4)"
    )
    recommend.add_argument(
        "--scenario", choices=sorted(_SCENARIOS), default="balanced"
    )
    recommend.add_argument("--g", type=int, default=PAPER_DEFAULTS.g)
    recommend.set_defaults(func=cmd_recommend)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
