"""Expression evaluation with SQL three-valued logic.

Rows are dictionaries mapping binding names to values; a qualified column
``C.district`` is looked up as ``C.district`` first and ``district`` as a
fallback, so the same evaluator serves single-table rows and joined rows.

NULL handling follows SQL semantics: comparisons and arithmetic involving
NULL yield NULL; ``AND``/``OR`` use Kleene logic; WHERE/HAVING keep a row
only when the predicate is exactly TRUE.
"""

from __future__ import annotations

import re
from typing import Any, Mapping

from repro.exceptions import EvaluationError
from repro.sql.ast import (
    AggregateCall,
    Between,
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
)
from repro.sql.functions import call_scalar

Row = Mapping[str, Any]


def resolve_column(row: Row, ref: ColumnRef) -> Any:
    """Look up *ref* in *row*, trying qualified then bare names."""
    if ref.table is not None:
        qualified = f"{ref.table}.{ref.name}"
        if qualified in row:
            return row[qualified]
    if ref.name in row:
        return row[ref.name]
    # A bare reference may still match exactly one qualified binding.
    if ref.table is None:
        suffix = f".{ref.name}"
        matches = [key for key in row if key.endswith(suffix)]
        if len(matches) == 1:
            return row[matches[0]]
        if len(matches) > 1:
            raise EvaluationError(f"ambiguous column reference {ref.name!r}")
    raise EvaluationError(f"unknown column {ref}")


def _like_to_regex(pattern: str) -> re.Pattern[str]:
    """Translate a SQL LIKE pattern into an anchored regular expression."""
    out = ["^"]
    for char in pattern:
        if char == "%":
            out.append(".*")
        elif char == "_":
            out.append(".")
        else:
            out.append(re.escape(char))
    out.append("$")
    return re.compile("".join(out), re.DOTALL)


def _compare(op: str, left: Any, right: Any) -> bool | None:
    if left is None or right is None:
        return None
    try:
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError as exc:
        raise EvaluationError(f"cannot compare {left!r} and {right!r}") from exc
    raise EvaluationError(f"unknown comparison operator {op!r}")


def _arith(op: str, left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise EvaluationError("division by zero")
            result = left / right
            return result
        if op == "%":
            if right == 0:
                raise EvaluationError("modulo by zero")
            return left % right
    except TypeError as exc:
        raise EvaluationError(f"bad operand types for {op!r}: {left!r}, {right!r}") from exc
    raise EvaluationError(f"unknown arithmetic operator {op!r}")


def evaluate(expression: Expression, row: Row) -> Any:
    """Evaluate *expression* against *row* (which may be a grouped row with
    pre-computed aggregate values keyed by ``str(aggregate_call)``)."""
    if isinstance(expression, Literal):
        return expression.value
    if isinstance(expression, ColumnRef):
        return resolve_column(row, expression)
    if isinstance(expression, AggregateCall):
        key = str(expression)
        if key in row:
            return row[key]
        raise EvaluationError(
            f"aggregate {key} evaluated outside a grouped context"
        )
    if isinstance(expression, UnaryOp):
        value = evaluate(expression.operand, row)
        if expression.op == "NOT":
            if value is None:
                return None
            return not _as_bool(value)
        if value is None:
            return None
        if expression.op == "-":
            return -value
        if expression.op == "+":
            return +value
        raise EvaluationError(f"unknown unary operator {expression.op!r}")
    if isinstance(expression, BinaryOp):
        return _evaluate_binary(expression, row)
    if isinstance(expression, InList):
        return _evaluate_in(expression, row)
    if isinstance(expression, Between):
        operand = evaluate(expression.operand, row)
        low = evaluate(expression.low, row)
        high = evaluate(expression.high, row)
        lower = _compare(">=", operand, low)
        upper = _compare("<=", operand, high)
        result = _kleene_and(lower, upper)
        if result is None:
            return None
        return result != expression.negated
    if isinstance(expression, Like):
        operand = evaluate(expression.operand, row)
        if operand is None:
            return None
        if not isinstance(operand, str):
            raise EvaluationError(f"LIKE requires a string operand, got {operand!r}")
        matched = bool(_like_to_regex(expression.pattern).match(operand))
        return matched != expression.negated
    if isinstance(expression, IsNull):
        operand = evaluate(expression.operand, row)
        return (operand is None) != expression.negated
    if isinstance(expression, FunctionCall):
        args = [evaluate(arg, row) for arg in expression.args]
        return call_scalar(expression.name, args)
    raise EvaluationError(f"cannot evaluate node {type(expression).__name__}")


def _as_bool(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    raise EvaluationError(f"expected a boolean, got {value!r}")


def _kleene_and(left: bool | None, right: bool | None) -> bool | None:
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def _kleene_or(left: bool | None, right: bool | None) -> bool | None:
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def _evaluate_binary(expression: BinaryOp, row: Row) -> Any:
    op = expression.op
    if op == "AND":
        left = _to_tristate(evaluate(expression.left, row))
        if left is False:
            return False
        right = _to_tristate(evaluate(expression.right, row))
        return _kleene_and(left, right)
    if op == "OR":
        left = _to_tristate(evaluate(expression.left, row))
        if left is True:
            return True
        right = _to_tristate(evaluate(expression.right, row))
        return _kleene_or(left, right)
    left = evaluate(expression.left, row)
    right = evaluate(expression.right, row)
    if op in ("=", "<>", "<", "<=", ">", ">="):
        return _compare(op, left, right)
    return _arith(op, left, right)


def _to_tristate(value: Any) -> bool | None:
    if value is None:
        return None
    return _as_bool(value)


def _evaluate_in(expression: InList, row: Row) -> bool | None:
    operand = evaluate(expression.operand, row)
    if operand is None:
        return None
    saw_null = False
    for item in expression.items:
        value = evaluate(item, row)
        if value is None:
            saw_null = True
        elif value == operand:
            return not expression.negated
    if saw_null:
        return None
    return expression.negated


def is_true(value: Any) -> bool:
    """WHERE/HAVING predicate check: only an exact TRUE keeps the row."""
    return value is True
