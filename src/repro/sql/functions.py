"""Scalar SQL functions.

These evaluate row-by-row inside the TDS (they never cross the trust
boundary half-computed), so adding one is purely local: register it in
:data:`SCALAR_FUNCTIONS` and both the WHERE clause and the SELECT
projection can use it.

NULL handling is SQL-standard: any NULL argument yields NULL, except
``COALESCE`` (first non-NULL) and ``IFNULL``.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Sequence

from repro.exceptions import EvaluationError


def _sql_abs(args: Sequence[Any]) -> Any:
    return abs(args[0])


def _sql_round(args: Sequence[Any]) -> Any:
    if len(args) == 1:
        return round(args[0])
    return round(args[0], int(args[1]))


def _sql_floor(args: Sequence[Any]) -> Any:
    return math.floor(args[0])


def _sql_ceil(args: Sequence[Any]) -> Any:
    return math.ceil(args[0])


def _sql_length(args: Sequence[Any]) -> Any:
    value = args[0]
    if not isinstance(value, str):
        raise EvaluationError(f"LENGTH expects a string, got {value!r}")
    return len(value)


def _sql_upper(args: Sequence[Any]) -> Any:
    value = args[0]
    if not isinstance(value, str):
        raise EvaluationError(f"UPPER expects a string, got {value!r}")
    return value.upper()


def _sql_lower(args: Sequence[Any]) -> Any:
    value = args[0]
    if not isinstance(value, str):
        raise EvaluationError(f"LOWER expects a string, got {value!r}")
    return value.lower()


def _sql_substr(args: Sequence[Any]) -> Any:
    value = args[0]
    if not isinstance(value, str):
        raise EvaluationError(f"SUBSTR expects a string, got {value!r}")
    start = int(args[1])
    # SQL SUBSTR is 1-based; negative start counts from the end
    index = start - 1 if start > 0 else len(value) + start
    if len(args) == 2:
        return value[max(index, 0):]
    length = int(args[2])
    return value[max(index, 0) : max(index, 0) + max(length, 0)]


class _FunctionSpec:
    """Arity-checked scalar function."""

    def __init__(
        self,
        name: str,
        impl: Callable[[Sequence[Any]], Any],
        min_args: int,
        max_args: int,
        null_propagates: bool = True,
    ) -> None:
        self.name = name
        self.impl = impl
        self.min_args = min_args
        self.max_args = max_args
        self.null_propagates = null_propagates

    def check_arity(self, count: int) -> None:
        if not self.min_args <= count <= self.max_args:
            expected = (
                str(self.min_args)
                if self.min_args == self.max_args
                else f"{self.min_args}-{self.max_args}"
            )
            raise EvaluationError(
                f"{self.name} expects {expected} argument(s), got {count}"
            )

    def evaluate(self, args: Sequence[Any]) -> Any:
        self.check_arity(len(args))
        if self.null_propagates and any(a is None for a in args):
            return None
        return self.impl(args)


def _sql_coalesce(args: Sequence[Any]) -> Any:
    for value in args:
        if value is not None:
            return value
    return None


SCALAR_FUNCTIONS: dict[str, _FunctionSpec] = {
    spec.name: spec
    for spec in (
        _FunctionSpec("ABS", _sql_abs, 1, 1),
        _FunctionSpec("ROUND", _sql_round, 1, 2),
        _FunctionSpec("FLOOR", _sql_floor, 1, 1),
        _FunctionSpec("CEIL", _sql_ceil, 1, 1),
        _FunctionSpec("LENGTH", _sql_length, 1, 1),
        _FunctionSpec("UPPER", _sql_upper, 1, 1),
        _FunctionSpec("LOWER", _sql_lower, 1, 1),
        _FunctionSpec("SUBSTR", _sql_substr, 2, 3),
        _FunctionSpec("COALESCE", _sql_coalesce, 1, 64, null_propagates=False),
        _FunctionSpec("IFNULL", _sql_coalesce, 2, 2, null_propagates=False),
    )
}


def call_scalar(name: str, args: Sequence[Any]) -> Any:
    """Evaluate scalar function *name* on already-evaluated *args*."""
    spec = SCALAR_FUNCTIONS.get(name)
    if spec is None:
        raise EvaluationError(f"unknown scalar function {name!r}")
    return spec.evaluate(args)


def is_scalar_function(name: str) -> bool:
    return name.upper() in SCALAR_FUNCTIONS
