"""Partial aggregations: the unit of work of the aggregation phase.

A :class:`PartialAggregation` is the paper's Ω (Fig. 3/4): a mapping from
group key to aggregate states.  TDSs build them from raw tuples, merge them
pairwise (``Ω = Ω ⊕ Ω'``), serialize them for encrypted transport through
the SSI, and finalize the last one into the query answer.

The RAM bound of §4.2 ("the partial aggregate structure must fit in RAM")
is enforced through :meth:`PartialAggregation.memory_slots`, checked by the
TDS against its :class:`~repro.tds.device.DeviceProfile`.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.sql.aggregates import AggregateState, state_from_portable
from repro.sql.ast import SelectStatement
from repro.sql.executor import group_key, new_states, update_states
from repro.sql.schema import Row

GroupKey = tuple[Any, ...]


class PartialAggregation:
    """Aggregate states for a set of groups, mergeable and serializable."""

    def __init__(self, statement: SelectStatement) -> None:
        self._statement = statement
        self._groups: dict[GroupKey, list[AggregateState]] = {}

    # ------------------------------------------------------------------ #
    # building
    # ------------------------------------------------------------------ #
    def add_row(self, row: Row) -> None:
        """Fold one raw source row (post-WHERE) into the aggregation."""
        key = group_key(self._statement, row)
        states = self._groups.get(key)
        if states is None:
            states = new_states(self._statement)
            self._groups[key] = states
        update_states(self._statement, states, row)

    def add_rows(self, rows: Iterable[Row]) -> None:
        for row in rows:
            self.add_row(row)

    def merge(self, other: "PartialAggregation") -> None:
        """Ω = Ω ⊕ Ω' — associative and commutative."""
        for key, other_states in other._groups.items():
            mine = self._groups.get(key)
            if mine is None:
                self._groups[key] = other_states
                continue
            for state, other_state in zip(mine, other_states):
                state.merge(other_state)

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def statement(self) -> SelectStatement:
        return self._statement

    def group_count(self) -> int:
        return len(self._groups)

    def groups(self) -> dict[GroupKey, list[AggregateState]]:
        """The underlying mapping (shared, not copied — callers are
        responsible users)."""
        return self._groups

    def memory_slots(self) -> int:
        """Scalar slots held — the quantity bounded by TDS RAM (§4.2)."""
        total = 0
        for states in self._groups.values():
            total += 1  # the group key slot
            for state in states:
                total += state.state_size()
        return total

    def is_empty(self) -> bool:
        return not self._groups

    # ------------------------------------------------------------------ #
    # portable encoding (encrypted transport through the SSI)
    # ------------------------------------------------------------------ #
    def to_portable(self) -> list[list[Any]]:
        """Codec-friendly structure: a list of [group_key_values, states]."""
        return [
            [list(key), [state.to_portable() for state in states]]
            for key, states in self._groups.items()
        ]

    @classmethod
    def from_portable(
        cls, statement: SelectStatement, portable: list[list[Any]]
    ) -> "PartialAggregation":
        aggregation = cls(statement)
        for key_values, state_dicts in portable:
            key = tuple(key_values)
            aggregation._groups[key] = [
                state_from_portable(d) for d in state_dicts
            ]
        return aggregation

    def split(self, parts: int) -> list["PartialAggregation"]:
        """Split by group into at most *parts* aggregations of similar size
        (used by the SSI-side partitioners when groups are visible)."""
        parts = max(1, min(parts, max(1, len(self._groups))))
        buckets: list[PartialAggregation] = [
            PartialAggregation(self._statement) for __ in range(parts)
        ]
        for index, (key, states) in enumerate(self._groups.items()):
            buckets[index % parts]._groups[key] = states
        return [b for b in buckets if not b.is_empty()]
