"""Aggregate functions with mergeable partial states.

The heart of the paper's aggregation phase (§4.1) is that TDSs compute
*partial aggregations* which other TDSs later merge: ``Ω = Ω ⊕ tup`` and
``Ω = Ω ⊕ Ω'`` in Fig. 4.  Every aggregate here therefore exposes three
operations:

* :meth:`AggregateState.update` — fold in one raw value (collection side);
* :meth:`AggregateState.merge`  — fold in another partial state (⊕);
* :meth:`AggregateState.result` — finalize into the SQL answer.

Classification per Locher [27], which the paper references:

* **distributive** — COUNT, SUM, MIN, MAX (constant-size state);
* **algebraic**    — AVG (pair of distributives);
* **holistic**     — MEDIAN and any DISTINCT variant (state grows with the
  number of distinct values; this is what makes the RAM bound of §4.2 bite).

States serialize to plain codec-friendly structures via
:meth:`to_portable` / :func:`state_from_portable`, so a partial aggregation
can be encrypted, shipped through the SSI and resumed by another TDS.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import EvaluationError
from repro.sql.ast import AggregateCall


class AggregateState:
    """Base class for one aggregate's running state."""

    #: short tag used in portable encodings
    kind: str = ""
    #: True when the state size grows with the input (holistic behaviour)
    holistic: bool = False

    def update(self, value: Any) -> None:
        raise NotImplementedError

    def merge(self, other: "AggregateState") -> None:
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError

    def to_portable(self) -> dict[str, Any]:
        raise NotImplementedError

    def state_size(self) -> int:
        """Approximate number of scalar slots held (for the RAM model)."""
        return 1

    def _check_mergeable(self, other: "AggregateState") -> None:
        if type(other) is not type(self):
            raise EvaluationError(
                f"cannot merge {type(other).__name__} into {type(self).__name__}"
            )


class CountState(AggregateState):
    """COUNT(*) and COUNT(expr): number of (non-NULL) contributions."""

    kind = "count"

    def __init__(self, count: int = 0) -> None:
        self.count = count

    def update(self, value: Any) -> None:
        # NULL filtering happens in the caller for COUNT(expr); COUNT(*)
        # passes a sentinel non-NULL value.
        self.count += 1

    def merge(self, other: AggregateState) -> None:
        self._check_mergeable(other)
        self.count += other.count  # type: ignore[attr-defined]

    def result(self) -> int:
        return self.count

    def to_portable(self) -> dict[str, Any]:
        return {"kind": self.kind, "count": self.count}


class SumState(AggregateState):
    """SUM(expr); empty input yields NULL as in SQL."""

    kind = "sum"

    def __init__(self, total: float | int = 0, seen: bool = False) -> None:
        self.total = total
        self.seen = seen

    def update(self, value: Any) -> None:
        self.total += value
        self.seen = True

    def merge(self, other: AggregateState) -> None:
        self._check_mergeable(other)
        self.total += other.total  # type: ignore[attr-defined]
        self.seen = self.seen or other.seen  # type: ignore[attr-defined]

    def result(self) -> float | int | None:
        return self.total if self.seen else None

    def to_portable(self) -> dict[str, Any]:
        return {"kind": self.kind, "total": self.total, "seen": self.seen}


class AvgState(AggregateState):
    """AVG(expr) — algebraic: carried as (sum, count)."""

    kind = "avg"

    def __init__(self, total: float | int = 0, count: int = 0) -> None:
        self.total = total
        self.count = count

    def update(self, value: Any) -> None:
        self.total += value
        self.count += 1

    def merge(self, other: AggregateState) -> None:
        self._check_mergeable(other)
        self.total += other.total  # type: ignore[attr-defined]
        self.count += other.count  # type: ignore[attr-defined]

    def result(self) -> float | None:
        if self.count == 0:
            return None
        return self.total / self.count

    def to_portable(self) -> dict[str, Any]:
        return {"kind": self.kind, "total": self.total, "count": self.count}

    def state_size(self) -> int:
        return 2


class MinState(AggregateState):
    """MIN(expr)."""

    kind = "min"

    def __init__(self, best: Any = None) -> None:
        self.best = best

    def update(self, value: Any) -> None:
        if self.best is None or value < self.best:
            self.best = value

    def merge(self, other: AggregateState) -> None:
        self._check_mergeable(other)
        if other.best is not None:  # type: ignore[attr-defined]
            self.update(other.best)  # type: ignore[attr-defined]

    def result(self) -> Any:
        return self.best

    def to_portable(self) -> dict[str, Any]:
        return {"kind": self.kind, "best": self.best}


class MaxState(AggregateState):
    """MAX(expr)."""

    kind = "max"

    def __init__(self, best: Any = None) -> None:
        self.best = best

    def update(self, value: Any) -> None:
        if self.best is None or value > self.best:
            self.best = value

    def merge(self, other: AggregateState) -> None:
        self._check_mergeable(other)
        if other.best is not None:  # type: ignore[attr-defined]
            self.update(other.best)  # type: ignore[attr-defined]

    def result(self) -> Any:
        return self.best

    def to_portable(self) -> dict[str, Any]:
        return {"kind": self.kind, "best": self.best}


class VarianceState(AggregateState):
    """VARIANCE(expr) / STDDEV(expr) — algebraic: (count, sum, sum of
    squares) merge exactly like AVG's (sum, count) pair.

    Sample variance (n − 1 denominator, the common SQL default); NULL for
    fewer than two values."""

    kind = "variance"

    def __init__(
        self,
        function: str = "VARIANCE",
        count: int = 0,
        total: float = 0.0,
        total_squares: float = 0.0,
    ) -> None:
        self.function = function
        self.count = count
        self.total = total
        self.total_squares = total_squares

    def update(self, value: Any) -> None:
        self.count += 1
        self.total += value
        self.total_squares += value * value

    def merge(self, other: AggregateState) -> None:
        self._check_mergeable(other)
        if other.function != self.function:  # type: ignore[attr-defined]
            raise EvaluationError("cannot merge VARIANCE and STDDEV states")
        self.count += other.count  # type: ignore[attr-defined]
        self.total += other.total  # type: ignore[attr-defined]
        self.total_squares += other.total_squares  # type: ignore[attr-defined]

    def result(self) -> float | None:
        if self.count < 2:
            return None
        mean = self.total / self.count
        variance = (self.total_squares - self.count * mean * mean) / (self.count - 1)
        variance = max(variance, 0.0)  # guard FP cancellation
        if self.function == "STDDEV":
            return variance ** 0.5
        return variance

    def to_portable(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "function": self.function,
            "count": self.count,
            "total": self.total,
            "total_squares": self.total_squares,
        }

    def state_size(self) -> int:
        return 3


class DistinctState(AggregateState):
    """Wrapper carrying the distinct value set — holistic by nature.

    Used for COUNT(DISTINCT x), SUM(DISTINCT x) and AVG(DISTINCT x): the
    full set of distinct values must travel with the partial aggregation,
    which is precisely why holistic aggregates stress TDS RAM (§4.2).
    """

    kind = "distinct"
    holistic = True

    def __init__(self, function: str, values: set[Any] | None = None) -> None:
        self.function = function
        self.values: set[Any] = set(values or ())

    def update(self, value: Any) -> None:
        self.values.add(value)

    def merge(self, other: AggregateState) -> None:
        self._check_mergeable(other)
        if other.function != self.function:  # type: ignore[attr-defined]
            raise EvaluationError("cannot merge DISTINCT states of different functions")
        self.values |= other.values  # type: ignore[attr-defined]

    def result(self) -> Any:
        if self.function == "COUNT":
            return len(self.values)
        if not self.values:
            return None
        if self.function == "SUM":
            return sum(self.values)
        if self.function == "AVG":
            return sum(self.values) / len(self.values)
        raise EvaluationError(f"DISTINCT unsupported for {self.function}")

    def to_portable(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "function": self.function,
            "values": sorted(self.values, key=lambda v: (str(type(v)), str(v))),
        }

    def state_size(self) -> int:
        return max(1, len(self.values))


class MedianState(AggregateState):
    """MEDIAN(expr) — the holistic representative: keeps every value."""

    kind = "median"
    holistic = True

    def __init__(self, values: list[Any] | None = None) -> None:
        self.values: list[Any] = list(values or ())

    def update(self, value: Any) -> None:
        self.values.append(value)

    def merge(self, other: AggregateState) -> None:
        self._check_mergeable(other)
        self.values.extend(other.values)  # type: ignore[attr-defined]

    def result(self) -> Any:
        if not self.values:
            return None
        ordered = sorted(self.values)
        middle = len(ordered) // 2
        if len(ordered) % 2 == 1:
            return ordered[middle]
        return (ordered[middle - 1] + ordered[middle]) / 2

    def to_portable(self) -> dict[str, Any]:
        return {"kind": self.kind, "values": list(self.values)}

    def state_size(self) -> int:
        return max(1, len(self.values))


def make_state(call: AggregateCall) -> AggregateState:
    """Create the empty running state for *call*."""
    if call.distinct:
        if call.function not in ("COUNT", "SUM", "AVG"):
            raise EvaluationError(f"DISTINCT unsupported for {call.function}")
        return DistinctState(call.function)
    if call.function == "COUNT":
        return CountState()
    if call.function == "SUM":
        return SumState()
    if call.function == "AVG":
        return AvgState()
    if call.function == "MIN":
        return MinState()
    if call.function == "MAX":
        return MaxState()
    if call.function == "MEDIAN":
        return MedianState()
    if call.function in ("VARIANCE", "STDDEV"):
        return VarianceState(call.function)
    raise EvaluationError(f"unknown aggregate function {call.function!r}")


def state_from_portable(portable: dict[str, Any]) -> AggregateState:
    """Reconstruct a state from its :meth:`~AggregateState.to_portable`
    encoding (after decryption on the receiving TDS)."""
    kind = portable.get("kind")
    if kind == "count":
        return CountState(portable["count"])
    if kind == "sum":
        return SumState(portable["total"], portable["seen"])
    if kind == "avg":
        return AvgState(portable["total"], portable["count"])
    if kind == "min":
        return MinState(portable["best"])
    if kind == "max":
        return MaxState(portable["best"])
    if kind == "distinct":
        return DistinctState(portable["function"], set(portable["values"]))
    if kind == "median":
        return MedianState(list(portable["values"]))
    if kind == "variance":
        return VarianceState(
            portable["function"],
            portable["count"],
            portable["total"],
            portable["total_squares"],
        )
    raise EvaluationError(f"unknown portable aggregate kind {kind!r}")
