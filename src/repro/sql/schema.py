"""Relational schema objects: columns, tables, rows and local databases.

Every TDS hosts a small local database conforming to a *common schema*
defined by the application provider (§2.1 — e.g. the national energy
distributor defines the Power/Consumer schema for every smart meter).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

from repro.exceptions import SchemaError

Row = dict[str, Any]


class ColumnType(enum.Enum):
    """SQL column types supported by the engine."""

    INTEGER = "INTEGER"
    REAL = "REAL"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"

    def validate(self, value: Any) -> bool:
        """True when *value* (or NULL) is acceptable for this type."""
        if value is None:
            return True
        if self is ColumnType.INTEGER:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is ColumnType.REAL:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is ColumnType.TEXT:
            return isinstance(value, str)
        return isinstance(value, bool)


@dataclass(frozen=True)
class Column:
    """One column of a table schema."""

    name: str
    type: ColumnType
    nullable: bool = True

    def validate(self, value: Any) -> None:
        if value is None and not self.nullable:
            raise SchemaError(f"column {self.name!r} is NOT NULL")
        if not self.type.validate(value):
            raise SchemaError(
                f"column {self.name!r} expects {self.type.value}, got {value!r}"
            )


@dataclass(frozen=True)
class TableSchema:
    """Ordered set of columns describing one table."""

    name: str
    columns: tuple[Column, ...]

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in table {self.name!r}")

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

    def validate_row(self, row: Mapping[str, Any]) -> Row:
        """Validate and normalize *row* into a plain dict in column order."""
        unknown = set(row) - set(self.column_names)
        if unknown:
            raise SchemaError(
                f"row has columns {sorted(unknown)} unknown to table {self.name!r}"
            )
        normalized: Row = {}
        for col in self.columns:
            value = row.get(col.name)
            col.validate(value)
            normalized[col.name] = value
        return normalized


def schema(name: str, /, **columns: str) -> TableSchema:
    """Terse schema constructor.

    The table name is positional-only so that a column may itself be
    called ``name``.

    >>> power = schema("Power", cid="INTEGER", cons="REAL")
    >>> power.column_names
    ('cid', 'cons')
    """
    cols = tuple(Column(col, ColumnType(type_name.upper())) for col, type_name in columns.items())
    return TableSchema(name, cols)


class Table:
    """An in-memory table: a schema plus a list of rows."""

    def __init__(self, table_schema: TableSchema, rows: Iterable[Mapping[str, Any]] = ()) -> None:
        self.schema = table_schema
        self._rows: list[Row] = []
        for row in rows:
            self.insert(row)

    @property
    def name(self) -> str:
        return self.schema.name

    def insert(self, row: Mapping[str, Any]) -> None:
        """Validate and append one row."""
        self._rows.append(self.schema.validate_row(row))

    def rows(self) -> Iterator[Row]:
        """Iterate over copies of the rows (callers cannot corrupt the table)."""
        for row in self._rows:
            yield dict(row)

    def __len__(self) -> int:
        return len(self._rows)


@dataclass
class Database:
    """A named collection of tables — one per TDS.

    >>> db = Database()
    >>> table = db.create_table(schema("T", x="INTEGER"))
    >>> table.insert({"x": 1})
    >>> len(db.table("T"))
    1
    """

    _tables: dict[str, Table] = field(default_factory=dict)

    def create_table(self, table_schema: TableSchema) -> Table:
        if table_schema.name in self._tables:
            raise SchemaError(f"table {table_schema.name!r} already exists")
        table = Table(table_schema)
        self._tables[table_schema.name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"no such table: {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)
