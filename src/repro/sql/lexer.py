"""Tokenizer for the paper's SQL dialect.

The dialect is standard ``SELECT`` syntax plus the StreamSQL-inspired
``SIZE`` clause (§2.3).  The lexer is a hand-rolled scanner producing a
flat list of :class:`Token` objects consumed by the recursive-descent
parser in :mod:`repro.sql.parser`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import SQLSyntaxError


class TokenType(enum.Enum):
    KEYWORD = "KEYWORD"
    IDENTIFIER = "IDENTIFIER"
    INTEGER = "INTEGER"
    FLOAT = "FLOAT"
    STRING = "STRING"
    OPERATOR = "OPERATOR"
    PUNCTUATION = "PUNCTUATION"
    EOF = "EOF"


KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "SIZE",
        "AND", "OR", "NOT", "IN", "BETWEEN", "LIKE", "IS", "NULL",
        "AS", "DISTINCT", "TRUE", "FALSE", "TUPLES", "SECONDS",
        "COUNT", "SUM", "AVG", "MIN", "MAX", "MEDIAN", "STDDEV", "VARIANCE",
    }
)

_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "%")
_PUNCTUATION = ("(", ")", ",", ".")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    type: TokenType
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r}@{self.position})"


def tokenize(text: str) -> list[Token]:
    """Tokenize *text*; raises :class:`SQLSyntaxError` on illegal input.

    >>> [t.value for t in tokenize("SELECT 1")][:2]
    ['SELECT', '1']
    """
    tokens: list[Token] = []
    pos = 0
    length = len(text)
    while pos < length:
        char = text[pos]
        if char.isspace():
            pos += 1
            continue
        if char == "-" and text.startswith("--", pos):
            newline = text.find("\n", pos)
            pos = length if newline < 0 else newline + 1
            continue
        if char.isalpha() or char == "_":
            start = pos
            while pos < length and (text[pos].isalnum() or text[pos] == "_"):
                pos += 1
            word = text[start:pos]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, start))
            continue
        if char.isdigit() or (char == "." and pos + 1 < length and text[pos + 1].isdigit()):
            start = pos
            seen_dot = False
            seen_exp = False
            while pos < length:
                c = text[pos]
                if c.isdigit():
                    pos += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    pos += 1
                elif c in "eE" and not seen_exp and pos + 1 < length and (
                    text[pos + 1].isdigit() or text[pos + 1] in "+-"
                ):
                    seen_exp = True
                    pos += 2 if text[pos + 1] in "+-" else 1
                else:
                    break
            literal = text[start:pos]
            token_type = TokenType.FLOAT if (seen_dot or seen_exp) else TokenType.INTEGER
            tokens.append(Token(token_type, literal, start))
            continue
        if char == "'":
            start = pos
            pos += 1
            chunks: list[str] = []
            while True:
                if pos >= length:
                    raise SQLSyntaxError("unterminated string literal", start)
                if text[pos] == "'":
                    if pos + 1 < length and text[pos + 1] == "'":
                        chunks.append("'")
                        pos += 2
                        continue
                    pos += 1
                    break
                chunks.append(text[pos])
                pos += 1
            tokens.append(Token(TokenType.STRING, "".join(chunks), start))
            continue
        matched_operator = next((op for op in _OPERATORS if text.startswith(op, pos)), None)
        if matched_operator is not None:
            tokens.append(Token(TokenType.OPERATOR, matched_operator, pos))
            pos += len(matched_operator)
            continue
        if char in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, char, pos))
            pos += 1
            continue
        raise SQLSyntaxError(f"illegal character {char!r}", pos)
    tokens.append(Token(TokenType.EOF, "", length))
    return tokens
