"""Recursive-descent parser for the paper's SQL dialect.

Grammar (informal)::

    statement   := SELECT select_list FROM table_list [WHERE expr]
                   [GROUP BY expr_list] [HAVING expr] [SIZE size_spec] EOF
    select_list := '*' | select_item (',' select_item)*
    select_item := expr [[AS] identifier]
    table_list  := table_ref (',' table_ref)*
    table_ref   := identifier [identifier]          -- optional alias
    size_spec   := INTEGER [TUPLES|SECONDS] (',' INTEGER [TUPLES|SECONDS])*

    expr        := or_expr
    or_expr     := and_expr (OR and_expr)*
    and_expr    := not_expr (AND not_expr)*
    not_expr    := NOT not_expr | predicate
    predicate   := additive [comparison | IN | BETWEEN | LIKE | IS NULL]
    additive    := multiplicative (('+'|'-') multiplicative)*
    multiplicative := unary (('*'|'/'|'%') unary)*
    unary       := ('-'|'+') unary | primary
    primary     := literal | aggregate | column | '(' expr ')'
"""

from __future__ import annotations

from repro.exceptions import SQLSyntaxError
from repro.sql.ast import (
    AGGREGATE_FUNCTIONS,
    AggregateCall,
    Between,
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    SelectItem,
    SelectStatement,
    SizeClause,
    TableRef,
    UnaryOp,
)
from repro.sql.functions import is_scalar_function
from repro.sql.lexer import Token, TokenType, tokenize

_COMPARISON_OPS = {"=", "<>", "!=", "<", "<=", ">", ">="}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # ------------------------------------------------------------------ #
    # token helpers
    # ------------------------------------------------------------------ #
    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def _error(self, message: str) -> SQLSyntaxError:
        token = self._current
        shown = token.value or "<end of query>"
        return SQLSyntaxError(f"{message} (found {shown!r})", token.position)

    def _expect_keyword(self, name: str) -> Token:
        if not self._current.is_keyword(name):
            raise self._error(f"expected {name}")
        return self._advance()

    def _expect_punct(self, char: str) -> Token:
        token = self._current
        if token.type is not TokenType.PUNCTUATION or token.value != char:
            raise self._error(f"expected {char!r}")
        return self._advance()

    def _match_keyword(self, *names: str) -> Token | None:
        if self._current.is_keyword(*names):
            return self._advance()
        return None

    def _match_punct(self, char: str) -> Token | None:
        token = self._current
        if token.type is TokenType.PUNCTUATION and token.value == char:
            return self._advance()
        return None

    def _match_operator(self, *ops: str) -> Token | None:
        token = self._current
        if token.type is TokenType.OPERATOR and token.value in ops:
            return self._advance()
        return None

    # ------------------------------------------------------------------ #
    # statement
    # ------------------------------------------------------------------ #
    def parse_statement(self) -> SelectStatement:
        self._expect_keyword("SELECT")
        select_star = False
        items: list[SelectItem] = []
        if self._match_operator("*"):
            select_star = True
        else:
            items.append(self._parse_select_item())
            while self._match_punct(","):
                items.append(self._parse_select_item())

        self._expect_keyword("FROM")
        tables = [self._parse_table_ref()]
        while self._match_punct(","):
            tables.append(self._parse_table_ref())

        where = None
        if self._match_keyword("WHERE"):
            where = self.parse_expression()

        group_by: list[Expression] = []
        if self._match_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self.parse_expression())
            while self._match_punct(","):
                group_by.append(self.parse_expression())

        having = None
        if self._match_keyword("HAVING"):
            having = self.parse_expression()

        size = None
        if self._match_keyword("SIZE"):
            size = self._parse_size_clause()

        if self._current.type is not TokenType.EOF:
            raise self._error("unexpected trailing input")
        return SelectStatement(
            select_items=tuple(items),
            from_tables=tuple(tables),
            where=where,
            group_by=tuple(group_by),
            having=having,
            size=size,
            select_star=select_star,
        )

    def _parse_select_item(self) -> SelectItem:
        expression = self.parse_expression()
        alias = None
        if self._match_keyword("AS"):
            token = self._current
            if token.type is not TokenType.IDENTIFIER:
                raise self._error("expected alias after AS")
            alias = self._advance().value
        elif self._current.type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return SelectItem(expression, alias)

    def _parse_table_ref(self) -> TableRef:
        token = self._current
        if token.type is not TokenType.IDENTIFIER:
            raise self._error("expected table name")
        name = self._advance().value
        alias = None
        if self._current.type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return TableRef(name, alias)

    def _parse_size_clause(self) -> SizeClause:
        max_tuples: int | None = None
        max_seconds: float | None = None
        while True:
            token = self._current
            if token.type not in (TokenType.INTEGER, TokenType.FLOAT):
                raise self._error("expected a number in SIZE clause")
            self._advance()
            if self._match_keyword("SECONDS"):
                if max_seconds is not None:
                    raise self._error("duplicate SECONDS bound in SIZE clause")
                max_seconds = float(token.value)
            else:
                self._match_keyword("TUPLES")
                if max_tuples is not None:
                    raise self._error("duplicate TUPLES bound in SIZE clause")
                if token.type is TokenType.FLOAT:
                    raise self._error("tuple bound must be an integer")
                max_tuples = int(token.value)
            if not self._match_punct(","):
                break
        return SizeClause(max_tuples=max_tuples, max_seconds=max_seconds)

    # ------------------------------------------------------------------ #
    # expressions
    # ------------------------------------------------------------------ #
    def parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self._match_keyword("OR"):
            left = BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self._match_keyword("AND"):
            left = BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> Expression:
        if self._match_keyword("NOT"):
            return UnaryOp("NOT", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expression:
        left = self._parse_additive()
        op_token = self._match_operator(*_COMPARISON_OPS)
        if op_token is not None:
            op = "<>" if op_token.value == "!=" else op_token.value
            return BinaryOp(op, left, self._parse_additive())

        negated = bool(self._match_keyword("NOT"))
        if self._match_keyword("IN"):
            self._expect_punct("(")
            items = [self.parse_expression()]
            while self._match_punct(","):
                items.append(self.parse_expression())
            self._expect_punct(")")
            return InList(left, tuple(items), negated=negated)
        if self._match_keyword("BETWEEN"):
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return Between(left, low, high, negated=negated)
        if self._match_keyword("LIKE"):
            token = self._current
            if token.type is not TokenType.STRING:
                raise self._error("expected string pattern after LIKE")
            self._advance()
            return Like(left, token.value, negated=negated)
        if negated:
            raise self._error("expected IN, BETWEEN or LIKE after NOT")
        if self._match_keyword("IS"):
            is_negated = bool(self._match_keyword("NOT"))
            self._expect_keyword("NULL")
            return IsNull(left, negated=is_negated)
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            op_token = self._match_operator("+", "-")
            if op_token is None:
                return left
            left = BinaryOp(op_token.value, left, self._parse_multiplicative())

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            op_token = self._match_operator("*", "/", "%")
            if op_token is None:
                return left
            left = BinaryOp(op_token.value, left, self._parse_unary())

    def _parse_unary(self) -> Expression:
        op_token = self._match_operator("-", "+")
        if op_token is not None:
            operand = self._parse_unary()
            # fold the sign into numeric literals so "-1" is Literal(-1),
            # keeping text rendering and parsing symmetric
            if (
                op_token.value == "-"
                and isinstance(operand, Literal)
                and isinstance(operand.value, (int, float))
                and not isinstance(operand.value, bool)
            ):
                return Literal(-operand.value)
            return UnaryOp(op_token.value, operand)
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self._current
        if token.type is TokenType.INTEGER:
            self._advance()
            return Literal(int(token.value))
        if token.type is TokenType.FLOAT:
            self._advance()
            return Literal(float(token.value))
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value)
        if token.is_keyword("NULL"):
            self._advance()
            return Literal(None)
        if token.is_keyword("TRUE"):
            self._advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return Literal(False)
        if token.is_keyword(*AGGREGATE_FUNCTIONS):
            return self._parse_aggregate()
        if self._match_punct("("):
            inner = self.parse_expression()
            self._expect_punct(")")
            return inner
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            if self._match_punct("("):
                return self._parse_scalar_function(token.value)
            if self._match_punct("."):
                column = self._current
                if column.type is not TokenType.IDENTIFIER:
                    raise self._error("expected column name after '.'")
                self._advance()
                return ColumnRef(column.value, table=token.value)
            return ColumnRef(token.value)
        raise self._error("expected an expression")

    def _parse_scalar_function(self, name: str) -> Expression:
        upper = name.upper()
        if not is_scalar_function(upper):
            raise SQLSyntaxError(f"unknown function {name!r}")
        args: list[Expression] = []
        if not self._match_punct(")"):
            args.append(self.parse_expression())
            while self._match_punct(","):
                args.append(self.parse_expression())
            self._expect_punct(")")
        return FunctionCall(upper, tuple(args))

    def _parse_aggregate(self) -> Expression:
        function = self._advance().value
        self._expect_punct("(")
        if self._match_operator("*"):
            if function != "COUNT":
                raise self._error(f"{function}(*) is not valid")
            self._expect_punct(")")
            return AggregateCall("COUNT", None)
        distinct = bool(self._match_keyword("DISTINCT"))
        argument = self.parse_expression()
        self._expect_punct(")")
        return AggregateCall(function, argument, distinct=distinct)


def parse(text: str) -> SelectStatement:
    """Parse *text* into a :class:`SelectStatement`.

    >>> stmt = parse("SELECT AVG(Cons) FROM Power GROUP BY district SIZE 100")
    >>> stmt.is_aggregate_query()
    True
    """
    return _Parser(tokenize(text)).parse_statement()


def parse_expression(text: str) -> Expression:
    """Parse a standalone expression (used by tests and tools)."""
    parser = _Parser(tokenize(text))
    expression = parser.parse_expression()
    if parser._current.type is not TokenType.EOF:
        raise SQLSyntaxError("unexpected trailing input", parser._current.position)
    return expression
