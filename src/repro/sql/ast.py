"""Abstract syntax tree for the paper's SQL dialect.

The top-level statement shape (§2.3):

    SELECT <attribute(s) and/or aggregate function(s)>
    FROM <Table(s)>
    [WHERE <condition(s)>]
    [GROUP BY <grouping attribute(s)>]
    [HAVING <grouping condition(s)>]
    [SIZE <size condition(s)>]

Expression nodes are plain frozen dataclasses; evaluation lives in
:mod:`repro.sql.expressions` and aggregation in :mod:`repro.sql.aggregates`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


class Expression:
    """Base class for expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expression):
    """A constant: number, string, boolean or NULL."""

    value: Any

    def __str__(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A (possibly qualified) column reference, e.g. ``C.district``."""

    name: str
    table: str | None = None

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class UnaryOp(Expression):
    """Unary ``-`` / ``+`` / ``NOT``."""

    op: str
    operand: Expression

    def __str__(self) -> str:
        if self.op == "NOT":
            return f"NOT ({self.operand})"
        return f"{self.op}({self.operand})"


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Arithmetic, comparison, or logical binary operator."""

    op: str
    left: Expression
    right: Expression

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class InList(Expression):
    """``expr [NOT] IN (v1, v2, ...)``."""

    operand: Expression
    items: tuple[Expression, ...]
    negated: bool = False

    def __str__(self) -> str:
        inner = ", ".join(str(i) for i in self.items)
        negation = "NOT " if self.negated else ""
        return f"({self.operand} {negation}IN ({inner}))"


@dataclass(frozen=True)
class Between(Expression):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def __str__(self) -> str:
        negation = "NOT " if self.negated else ""
        return f"({self.operand} {negation}BETWEEN {self.low} AND {self.high})"


@dataclass(frozen=True)
class Like(Expression):
    """``expr [NOT] LIKE pattern`` with ``%`` and ``_`` wildcards."""

    operand: Expression
    pattern: str
    negated: bool = False

    def __str__(self) -> str:
        negation = "NOT " if self.negated else ""
        escaped = self.pattern.replace("'", "''")
        return f"({self.operand} {negation}LIKE '{escaped}')"


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False

    def __str__(self) -> str:
        negation = "NOT " if self.negated else ""
        return f"({self.operand} IS {negation}NULL)"


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A scalar function call, e.g. ``ROUND(cons, 1)`` — evaluated locally
    inside the TDS (see :mod:`repro.sql.functions`)."""

    name: str
    args: tuple[Expression, ...]

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.name}({inner})"


#: Aggregate function names supported by the engine.  MEDIAN is the holistic
#: representative (per [27] the paper handles distributive, algebraic and
#: holistic aggregates; COUNT/SUM/MIN/MAX are distributive, AVG algebraic,
#: MEDIAN and COUNT DISTINCT holistic).
AGGREGATE_FUNCTIONS = frozenset(
    {"COUNT", "SUM", "AVG", "MIN", "MAX", "MEDIAN", "STDDEV", "VARIANCE"}
)


@dataclass(frozen=True)
class AggregateCall(Expression):
    """``COUNT(*)``, ``SUM(x)``, ``COUNT(DISTINCT cid)``, ...

    ``argument is None`` encodes ``COUNT(*)``.
    """

    function: str
    argument: Expression | None
    distinct: bool = False

    def __post_init__(self) -> None:
        if self.function not in AGGREGATE_FUNCTIONS:
            raise ValueError(f"unknown aggregate function {self.function!r}")

    def __str__(self) -> str:
        if self.argument is None:
            return f"{self.function}(*)"
        qualifier = "DISTINCT " if self.distinct else ""
        return f"{self.function}({qualifier}{self.argument})"


@dataclass(frozen=True)
class SelectItem:
    """One item of the SELECT list: an expression plus optional alias."""

    expression: Expression
    alias: str | None = None

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        return str(self.expression)

    def __str__(self) -> str:
        if self.alias:
            return f"{self.expression} AS {self.alias}"
        return str(self.expression)


@dataclass(frozen=True)
class TableRef:
    """A FROM-clause table with optional alias (``Power P``)."""

    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        return self.alias or self.name

    def __str__(self) -> str:
        return f"{self.name} {self.alias}" if self.alias else self.name


@dataclass(frozen=True)
class SizeClause:
    """The StreamSQL SIZE clause: max tuple count and/or collection duration.

    ``SIZE 50000`` / ``SIZE 50000 TUPLES`` / ``SIZE 3600 SECONDS`` /
    ``SIZE 50000 TUPLES, 3600 SECONDS``.
    """

    max_tuples: int | None = None
    max_seconds: float | None = None

    def is_trivial(self) -> bool:
        return self.max_tuples is None and self.max_seconds is None

    def satisfied(self, tuple_count: int, elapsed_seconds: float) -> bool:
        """True when the collection phase may stop (§3.1: the SSI evaluates
        this in cleartext)."""
        if self.max_tuples is not None and tuple_count >= self.max_tuples:
            return True
        if self.max_seconds is not None and elapsed_seconds >= self.max_seconds:
            return True
        return False

    def __str__(self) -> str:
        parts = []
        if self.max_tuples is not None:
            parts.append(f"{self.max_tuples} TUPLES")
        if self.max_seconds is not None:
            seconds = self.max_seconds
            rendered = int(seconds) if float(seconds).is_integer() else seconds
            parts.append(f"{rendered} SECONDS")
        return "SIZE " + ", ".join(parts)


@dataclass(frozen=True)
class SelectStatement:
    """A full parsed query."""

    select_items: tuple[SelectItem, ...]
    from_tables: tuple[TableRef, ...]
    where: Expression | None = None
    group_by: tuple[Expression, ...] = field(default=())
    having: Expression | None = None
    size: SizeClause | None = None
    select_star: bool = False

    def aggregates(self) -> tuple[AggregateCall, ...]:
        """All aggregate calls appearing in SELECT or HAVING, in order of
        first appearance (deduplicated)."""
        found: list[AggregateCall] = []

        def walk(node: Expression | None) -> None:
            if node is None:
                return
            if isinstance(node, AggregateCall):
                if node not in found:
                    found.append(node)
                return
            if isinstance(node, UnaryOp):
                walk(node.operand)
            elif isinstance(node, BinaryOp):
                walk(node.left)
                walk(node.right)
            elif isinstance(node, InList):
                walk(node.operand)
                for item in node.items:
                    walk(item)
            elif isinstance(node, Between):
                walk(node.operand)
                walk(node.low)
                walk(node.high)
            elif isinstance(node, (Like, IsNull)):
                walk(node.operand)
            elif isinstance(node, FunctionCall):
                for arg in node.args:
                    walk(arg)

        for item in self.select_items:
            walk(item.expression)
        walk(self.having)
        return tuple(found)

    def is_aggregate_query(self) -> bool:
        """True when the query needs the Group-By protocols (§4) rather
        than the basic Select-From-Where protocol (§3.2)."""
        return bool(self.group_by) or bool(self.aggregates())

    def __str__(self) -> str:
        select_list = "*" if self.select_star else ", ".join(str(i) for i in self.select_items)
        parts = [f"SELECT {select_list}"]
        parts.append("FROM " + ", ".join(str(t) for t in self.from_tables))
        if self.where is not None:
            parts.append(f"WHERE {self.where}")
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(str(g) for g in self.group_by))
        if self.having is not None:
            parts.append(f"HAVING {self.having}")
        if self.size is not None and not self.size.is_trivial():
            parts.append(str(self.size))
        return " ".join(parts)
