"""Local query executor — what runs *inside* one TDS.

The paper allows "internal joins which can be executed locally by each TDS"
(§2.3, footnote 5): a TDS evaluates FROM (with cartesian products restricted
by WHERE), WHERE, and either projects result tuples (basic protocol, §3.2)
or computes aggregate contributions (Group-By protocols, §4).

This module also provides the *reference executor*: running the full query
on the union of all local databases, which the tests use as ground truth
for protocol correctness.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.exceptions import PlanningError
from repro.sql.aggregates import AggregateState, make_state
from repro.sql.ast import (
    AggregateCall,
    Between,
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    SelectStatement,
    UnaryOp,
)
from repro.sql.expressions import evaluate, is_true
from repro.sql.schema import Database, Row


def bind_rows(database: Database, statement: SelectStatement) -> Iterator[Row]:
    """Produce the FROM-clause rows: the cartesian product of the referenced
    tables, with every column bound under its qualified name
    (``binding.column``)."""
    bindings: list[tuple[str, list[Row]]] = []
    for table_ref in statement.from_tables:
        if not database.has_table(table_ref.name):
            raise PlanningError(f"unknown table {table_ref.name!r}")
        table = database.table(table_ref.name)
        bindings.append((table_ref.binding, list(table.rows())))
    seen_bindings = [b for b, __ in bindings]
    if len(set(seen_bindings)) != len(seen_bindings):
        raise PlanningError("duplicate table binding in FROM clause")

    def product(index: int, partial: Row) -> Iterator[Row]:
        if index == len(bindings):
            yield dict(partial)
            return
        binding, rows = bindings[index]
        for row in rows:
            extended = dict(partial)
            for column, value in row.items():
                extended[f"{binding}.{column}"] = value
            yield from product(index + 1, extended)

    yield from product(0, {})


def filter_where(rows: Iterable[Row], statement: SelectStatement) -> Iterator[Row]:
    """Keep rows whose WHERE predicate is exactly TRUE."""
    if statement.where is None:
        yield from rows
        return
    for row in rows:
        if is_true(evaluate(statement.where, row)):
            yield row


def local_matching_rows(database: Database, statement: SelectStatement) -> list[Row]:
    """FROM + WHERE on one local database — the collection-phase work of a
    single TDS (step 3 of Fig. 2)."""
    return list(filter_where(bind_rows(database, statement), statement))


def group_key(statement: SelectStatement, row: Row) -> tuple[Any, ...]:
    """Evaluate the GROUP BY expressions on *row*.

    For a query without GROUP BY but with aggregates, every row maps to the
    single empty key (one global group)."""
    return tuple(evaluate(expr, row) for expr in statement.group_by)


def _strip_binding(key: str) -> str:
    return key.split(".", 1)[1] if "." in key else key


def project_row(statement: SelectStatement, row: Row) -> Row:
    """SELECT projection for non-aggregate queries."""
    if statement.select_star:
        if len(statement.from_tables) == 1:
            return {_strip_binding(k): v for k, v in row.items()}
        return dict(row)
    return {
        item.output_name: evaluate(item.expression, row)
        for item in statement.select_items
    }


def grouped_row(
    statement: SelectStatement,
    key: tuple[Any, ...],
    states: list[AggregateState],
) -> Row:
    """Build the evaluation context of one finished group: group-by values
    (bound under their expression text, and for plain column references also
    under the column name) plus finalized aggregate values."""
    context: dict[str, Any] = {}
    for expr, value in zip(statement.group_by, key):
        context[str(expr)] = value
        if isinstance(expr, ColumnRef):
            context.setdefault(expr.name, value)
    for call, state in zip(statement.aggregates(), states):
        context[str(call)] = state.result()
    return context


def rewrite_grouped(expression: Expression, statement: SelectStatement) -> Expression:
    """Rewrite *expression* for evaluation against a grouped row: any
    subtree equal to a GROUP BY expression becomes a reference to its
    pre-computed value (keyed by the expression text in the group context).

    This is what lets ``SELECT x % 2 ... GROUP BY x % 2`` evaluate after
    aggregation, when the raw ``x`` values are gone."""
    group_map = {expr: str(expr) for expr in statement.group_by}

    def rewrite(node: Expression) -> Expression:
        if node in group_map:
            return ColumnRef(group_map[node])
        if isinstance(node, UnaryOp):
            return UnaryOp(node.op, rewrite(node.operand))
        if isinstance(node, BinaryOp):
            return BinaryOp(node.op, rewrite(node.left), rewrite(node.right))
        if isinstance(node, InList):
            return InList(
                rewrite(node.operand),
                tuple(rewrite(i) for i in node.items),
                node.negated,
            )
        if isinstance(node, Between):
            return Between(
                rewrite(node.operand), rewrite(node.low), rewrite(node.high), node.negated
            )
        if isinstance(node, Like):
            return Like(rewrite(node.operand), node.pattern, node.negated)
        if isinstance(node, IsNull):
            return IsNull(rewrite(node.operand), node.negated)
        if isinstance(node, FunctionCall):
            return FunctionCall(node.name, tuple(rewrite(a) for a in node.args))
        return node

    return rewrite(expression)


def update_states(
    statement: SelectStatement, states: list[AggregateState], row: Row
) -> None:
    """Fold one source row into a group's aggregate states."""
    for call, state in zip(statement.aggregates(), states):
        if call.argument is None:
            state.update(1)  # COUNT(*)
            continue
        value = evaluate(call.argument, row)
        if value is None:
            continue  # SQL aggregates ignore NULLs
        state.update(value)


def new_states(statement: SelectStatement) -> list[AggregateState]:
    """Fresh (empty) aggregate states for one group."""
    return [make_state(call) for call in statement.aggregates()]


def finalize_groups(
    statement: SelectStatement,
    groups: dict[tuple[Any, ...], list[AggregateState]],
) -> list[Row]:
    """Apply HAVING and the SELECT projection to finished groups."""
    having = (
        rewrite_grouped(statement.having, statement)
        if statement.having is not None
        else None
    )
    projections = [
        (item.output_name, rewrite_grouped(item.expression, statement))
        for item in statement.select_items
    ]
    output: list[Row] = []
    for key, states in groups.items():
        context = grouped_row(statement, key, states)
        if having is not None and not is_true(evaluate(having, context)):
            continue
        output.append({name: evaluate(expr, context) for name, expr in projections})
    return output


def execute(database: Database, statement: SelectStatement) -> list[Row]:
    """Run the full query against one database (the reference executor).

    >>> from repro.sql.schema import Database, schema
    >>> from repro.sql.parser import parse
    >>> db = Database()
    >>> t = db.create_table(schema("T", g="TEXT", x="INTEGER"))
    >>> for g, x in [("a", 1), ("a", 3), ("b", 5)]:
    ...     t.insert({"g": g, "x": x})
    >>> execute(db, parse("SELECT g, SUM(x) AS s FROM T GROUP BY g"))
    [{'g': 'a', 's': 4}, {'g': 'b', 's': 5}]
    """
    validate_statement(statement, database)
    rows = filter_where(bind_rows(database, statement), statement)
    if not statement.is_aggregate_query():
        return [project_row(statement, row) for row in rows]
    groups: dict[tuple[Any, ...], list[AggregateState]] = {}
    for row in rows:
        key = group_key(statement, row)
        states = groups.get(key)
        if states is None:
            states = new_states(statement)
            groups[key] = states
        update_states(statement, states, row)
    return finalize_groups(statement, groups)


# ---------------------------------------------------------------------- #
# validation
# ---------------------------------------------------------------------- #
def _column_refs(expression: Expression | None) -> Iterator[ColumnRef]:
    if expression is None:
        return
    if isinstance(expression, ColumnRef):
        yield expression
    elif isinstance(expression, UnaryOp):
        yield from _column_refs(expression.operand)
    elif isinstance(expression, BinaryOp):
        yield from _column_refs(expression.left)
        yield from _column_refs(expression.right)
    elif isinstance(expression, InList):
        yield from _column_refs(expression.operand)
        for item in expression.items:
            yield from _column_refs(item)
    elif isinstance(expression, Between):
        yield from _column_refs(expression.operand)
        yield from _column_refs(expression.low)
        yield from _column_refs(expression.high)
    elif isinstance(expression, (Like, IsNull)):
        yield from _column_refs(expression.operand)
    elif isinstance(expression, AggregateCall):
        yield from _column_refs(expression.argument)
    elif isinstance(expression, FunctionCall):
        for arg in expression.args:
            yield from _column_refs(arg)
    elif isinstance(expression, Literal):
        return


#: Public alias: other subsystems (access control, discovery protocols)
#: legitimately need to enumerate the column references of an expression.
def column_refs(expression: Expression | None) -> Iterator[ColumnRef]:
    """Yield every column reference appearing in *expression*."""
    yield from _column_refs(expression)


def _non_aggregate_refs(expression: Expression | None) -> Iterator[ColumnRef]:
    """Column references *outside* any aggregate call."""
    if expression is None:
        return
    if isinstance(expression, AggregateCall):
        return
    if isinstance(expression, ColumnRef):
        yield expression
    elif isinstance(expression, UnaryOp):
        yield from _non_aggregate_refs(expression.operand)
    elif isinstance(expression, BinaryOp):
        yield from _non_aggregate_refs(expression.left)
        yield from _non_aggregate_refs(expression.right)
    elif isinstance(expression, InList):
        yield from _non_aggregate_refs(expression.operand)
        for item in expression.items:
            yield from _non_aggregate_refs(item)
    elif isinstance(expression, Between):
        yield from _non_aggregate_refs(expression.operand)
        yield from _non_aggregate_refs(expression.low)
        yield from _non_aggregate_refs(expression.high)
    elif isinstance(expression, (Like, IsNull)):
        yield from _non_aggregate_refs(expression.operand)
    elif isinstance(expression, FunctionCall):
        for arg in expression.args:
            yield from _non_aggregate_refs(arg)


def validate_statement(statement: SelectStatement, database: Database | None = None) -> None:
    """Static checks: tables exist, columns resolve, grouped SELECT lists
    only reference grouping expressions or aggregates.

    *database* may be None for purely syntactic validation (e.g. on the
    querier side, which has no data)."""
    if database is not None:
        binding_to_table = {}
        for table_ref in statement.from_tables:
            if not database.has_table(table_ref.name):
                raise PlanningError(f"unknown table {table_ref.name!r}")
            binding_to_table[table_ref.binding] = database.table(table_ref.name)
        all_exprs: list[Expression | None] = [
            item.expression for item in statement.select_items
        ]
        all_exprs += [statement.where, statement.having, *statement.group_by]
        for expression in all_exprs:
            for ref in _column_refs(expression):
                _check_ref(ref, binding_to_table)

    if statement.is_aggregate_query():
        if statement.select_star:
            raise PlanningError("SELECT * cannot be combined with aggregation")
        group_names = {
            expr.name for expr in statement.group_by if isinstance(expr, ColumnRef)
        }
        for item in statement.select_items:
            rewritten = rewrite_grouped(item.expression, statement)
            for ref in _non_aggregate_refs(rewritten):
                if ref.table is None and (ref.name in group_names or _is_group_key(ref, statement)):
                    continue
                raise PlanningError(
                    f"column {ref} must appear in GROUP BY or inside an aggregate"
                )
        if statement.having is not None:
            rewritten = rewrite_grouped(statement.having, statement)
            for ref in _non_aggregate_refs(rewritten):
                if ref.table is None and (ref.name in group_names or _is_group_key(ref, statement)):
                    continue
                raise PlanningError(
                    f"HAVING column {ref} must appear in GROUP BY or inside an aggregate"
                )
    elif statement.having is not None:
        raise PlanningError("HAVING requires GROUP BY or aggregates")


def _is_group_key(ref: ColumnRef, statement: SelectStatement) -> bool:
    """True when *ref* is a synthesized reference to a GROUP BY expression
    (produced by :func:`rewrite_grouped`)."""
    return any(ref.name == str(expr) for expr in statement.group_by)


def _check_ref(ref: ColumnRef, binding_to_table: dict[str, Any]) -> None:
    if ref.table is not None:
        table = binding_to_table.get(ref.table)
        if table is None:
            raise PlanningError(f"unknown table binding {ref.table!r} in {ref}")
        if not table.schema.has_column(ref.name):
            raise PlanningError(f"no column {ref.name!r} in table {table.name!r}")
        return
    matches = [
        binding
        for binding, table in binding_to_table.items()
        if table.schema.has_column(ref.name)
    ]
    if not matches:
        raise PlanningError(f"unknown column {ref.name!r}")
    if len(matches) > 1:
        raise PlanningError(f"ambiguous column {ref.name!r} (in {sorted(matches)})")
