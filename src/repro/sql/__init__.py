"""SQL engine substrate: lexer, parser, AST, evaluator, aggregates, executor.

Supports the paper's dialect (§2.3): SELECT / FROM (with locally-executed
internal joins) / WHERE / GROUP BY / HAVING / SIZE, with distributive,
algebraic and holistic aggregate functions.
"""

from repro.sql.aggregates import AggregateState, make_state, state_from_portable
from repro.sql.ast import (
    AggregateCall,
    ColumnRef,
    Expression,
    Literal,
    SelectItem,
    SelectStatement,
    SizeClause,
    TableRef,
)
from repro.sql.executor import execute, local_matching_rows, validate_statement
from repro.sql.expressions import evaluate, is_true
from repro.sql.lexer import Token, TokenType, tokenize
from repro.sql.parser import parse, parse_expression
from repro.sql.partial import PartialAggregation
from repro.sql.schema import Column, ColumnType, Database, Table, TableSchema, schema

__all__ = [
    "AggregateCall",
    "AggregateState",
    "Column",
    "ColumnRef",
    "ColumnType",
    "Database",
    "Expression",
    "Literal",
    "PartialAggregation",
    "SelectItem",
    "SelectStatement",
    "SizeClause",
    "Table",
    "TableRef",
    "TableSchema",
    "Token",
    "TokenType",
    "evaluate",
    "execute",
    "is_true",
    "local_matching_rows",
    "make_state",
    "parse",
    "parse_expression",
    "schema",
    "state_from_portable",
    "tokenize",
    "validate_statement",
]
