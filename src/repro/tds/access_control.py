"""Access control: credentials, authorities and TDS-side policies.

§2.1: "each TDS is responsible for participating in a distributed query
protocol while enforcing the access control rules protecting the local
data it hosts"; the policy may come from the producer organism, the
legislator or a consumer association, installed at burn time or downloaded
(§3.1).

The trust chain is simulated faithfully:

* an :class:`Authority` signs querier credentials (HMAC under the
  authority key — the simulation stand-in for a PKI signature);
* every TDS knows the authority's verification material and the policy;
* the SSI can *read* credentials (they are cleartext) but cannot forge
  them.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.messages import Credential
from repro.exceptions import AccessDeniedError
from repro.sql.ast import ColumnRef, SelectStatement
from repro.sql.executor import column_refs


class Authority:
    """Issues and verifies querier credentials."""

    def __init__(self, key: bytes, name: str = "authority") -> None:
        self._key = key
        self.name = name

    def issue(self, subject: str, roles: Iterable[str]) -> Credential:
        """Sign a credential binding *subject* to *roles*."""
        credential = Credential(subject, frozenset(roles), b"")
        signature = self._sign(credential.signing_payload())
        return Credential(subject, frozenset(roles), signature)

    def verify(self, credential: Credential) -> bool:
        """Constant-time signature check."""
        expected = self._sign(credential.signing_payload())
        return hmac.compare_digest(expected, credential.signature)

    def _sign(self, payload: bytes) -> bytes:
        return hmac.new(self._key, payload, hashlib.sha256).digest()


@dataclass(frozen=True)
class AccessRule:
    """Grants one role access to one table.

    * ``columns`` — ``None`` grants every column, otherwise the listed set;
    * ``aggregate_only`` — when True the role may only run aggregate
      queries over the table (the smart-metering situation: the energy
      provider may compute district averages but never see raw readings,
      §2.3 footnote 6).
    """

    role: str
    table: str
    columns: frozenset[str] | None = None
    aggregate_only: bool = False

    def covers_column(self, column: str) -> bool:
        return self.columns is None or column in self.columns


@dataclass
class AccessPolicy:
    """The rule set a TDS enforces before answering any query."""

    rules: list[AccessRule] = field(default_factory=list)

    def grant(
        self,
        role: str,
        table: str,
        columns: Iterable[str] | None = None,
        aggregate_only: bool = False,
    ) -> "AccessPolicy":
        """Add a rule (chainable)."""
        frozen = frozenset(columns) if columns is not None else None
        self.rules.append(AccessRule(role, table, frozen, aggregate_only))
        return self

    # ------------------------------------------------------------------ #
    # enforcement
    # ------------------------------------------------------------------ #
    def authorize(self, credential: Credential, statement: SelectStatement) -> None:
        """Raise :class:`AccessDeniedError` unless *credential* may run
        *statement*.  Checks, per referenced table:

        1. some role of the querier has a rule for the table;
        2. every referenced column of that table is covered;
        3. ``aggregate_only`` rules reject non-aggregate queries.
        """
        binding_to_table = {ref.binding: ref.name for ref in statement.from_tables}
        for table_name in binding_to_table.values():
            applicable = [
                rule
                for rule in self.rules
                if rule.table == table_name and rule.role in credential.roles
            ]
            if not applicable:
                raise AccessDeniedError(
                    f"querier {credential.subject!r} has no grant on table "
                    f"{table_name!r}"
                )
            if all(rule.aggregate_only for rule in applicable):
                if not statement.is_aggregate_query():
                    raise AccessDeniedError(
                        f"table {table_name!r} is aggregate-only for querier "
                        f"{credential.subject!r}"
                    )
                if statement.select_star:
                    raise AccessDeniedError(
                        f"SELECT * not allowed on aggregate-only table {table_name!r}"
                    )
            referenced = self._columns_for_table(statement, table_name, binding_to_table)
            for column in referenced:
                if not any(rule.covers_column(column) for rule in applicable):
                    raise AccessDeniedError(
                        f"column {column!r} of table {table_name!r} not granted "
                        f"to querier {credential.subject!r}"
                    )

    @staticmethod
    def _columns_for_table(
        statement: SelectStatement,
        table_name: str,
        binding_to_table: dict[str, str],
    ) -> set[str]:
        """Columns of *table_name* referenced anywhere in the statement."""
        bindings = {
            binding for binding, table in binding_to_table.items() if table == table_name
        }
        only_table = len(set(binding_to_table.values())) == 1
        referenced: set[str] = set()
        expressions = [item.expression for item in statement.select_items]
        expressions += [statement.where, statement.having, *statement.group_by]
        for expression in expressions:
            for ref in column_refs(expression):
                assert isinstance(ref, ColumnRef)
                if ref.table is not None and ref.table in bindings:
                    referenced.add(ref.name)
                elif ref.table is None and only_table:
                    referenced.add(ref.name)
        return referenced


def permissive_policy(tables: Iterable[str], role: str = "public") -> AccessPolicy:
    """A policy granting *role* unrestricted access to *tables* (useful for
    tests and examples where access control is not the point)."""
    policy = AccessPolicy()
    for table in tables:
        policy.grant(role, table)
    return policy
