"""Fake-tuple generation for the noise-based protocols (§4.3).

Two strategies:

* :class:`RandomNoise` (``Rnf_Noise``) — per true tuple, ``nf`` fake tuples
  whose grouping value is drawn at random from the domain.  "Because the
  fake tuples are randomly generated, the distribution of mixed values may
  not be different enough from that of true values ... a large quantity of
  fake tuples (nf ≫ 1) must be injected to make the fake distribution
  dominate the true one."
* :class:`ComplementaryNoise` (``C_Noise``) — per true tuple, one fake
  tuple for *every other* domain value (nd−1 fakes), so the mixed
  distribution is flat by construction.

Fake tuples carry "identified characteristics" letting a decrypting TDS
filter them out: here, the ``kind`` field of
:class:`~repro.core.messages.TupleContent` — invisible to the SSI because
it only ever appears inside nDet_Enc payloads.
"""

from __future__ import annotations

import random
from typing import Any, Sequence

from repro.core.messages import TupleContent
from repro.exceptions import ConfigurationError


class NoiseStrategy:
    """Interface: produce fake tuple contents for one true grouping value."""

    def fake_tuples(self, true_value: Any) -> list[tuple[Any, TupleContent]]:
        """Return ``(grouping_value, content)`` pairs for the fakes to emit
        alongside one true tuple with grouping value *true_value*."""
        raise NotImplementedError

    def expansion_factor(self) -> int:
        """Total tuples emitted per true tuple (1 + number of fakes)."""
        raise NotImplementedError


class RandomNoise(NoiseStrategy):
    """``Rnf_Noise``: nf random fakes per true tuple."""

    def __init__(self, domain: Sequence[Any], nf: int, rng: random.Random) -> None:
        if nf < 0:
            raise ConfigurationError("nf must be >= 0")
        if not domain:
            raise ConfigurationError("noise domain must not be empty")
        self.domain = list(domain)
        self.nf = nf
        self._rng = rng

    def fake_tuples(self, true_value: Any) -> list[tuple[Any, TupleContent]]:
        fakes = []
        for __ in range(self.nf):
            value = self._rng.choice(self.domain)
            fakes.append((value, TupleContent(TupleContent.KIND_FAKE)))
        return fakes

    def expansion_factor(self) -> int:
        return self.nf + 1


class ComplementaryNoise(NoiseStrategy):
    """``C_Noise``: one fake per *other* domain value (nd−1 fakes).

    Requires prior knowledge of the domain cardinality; "if the domain
    cardinality is not readily available, a cardinality discovering
    algorithm must be launched beforehand" (§4.3) — see
    :func:`repro.protocols.discovery.discover_domain`.
    """

    def __init__(self, domain: Sequence[Any]) -> None:
        if not domain:
            raise ConfigurationError("noise domain must not be empty")
        self.domain = list(domain)

    def fake_tuples(self, true_value: Any) -> list[tuple[Any, TupleContent]]:
        return [
            (value, TupleContent(TupleContent.KIND_FAKE))
            for value in self.domain
            if value != true_value
        ]

    def expansion_factor(self) -> int:
        return len(self.domain)
