"""Encrypted-at-rest local storage — Fig. 1's mass storage area.

A secure device is "a Trusted Execution Environment and a (potentially
untrusted but cryptographically protected) mass storage area": the NAND
flash sits *outside* the tamper-resistant boundary, so everything written
to it is authenticated-encrypted under a device-local storage key that
never leaves the microcontroller.

:class:`EncryptedStore` serializes a whole :class:`~repro.sql.schema.Database`
(schemas + rows) through the canonical codec, seals it with nDet_Enc and
restores it on boot.  Tampering with the flash image is detected, not
silently read.
"""

from __future__ import annotations

import random

from repro.core.codec import decode, encode
from repro.crypto.keys import derive_subkey
from repro.crypto.ndet import NonDeterministicCipher
from repro.exceptions import SchemaError
from repro.sql.schema import Column, ColumnType, Database, TableSchema

_FORMAT_VERSION = 1


class EncryptedStore:
    """Seals and restores a local database under a device storage key."""

    def __init__(self, device_key: bytes, rng: random.Random | None = None) -> None:
        storage_key = derive_subkey(device_key, b"mass-storage")
        self._cipher = NonDeterministicCipher(storage_key, rng)

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    @staticmethod
    def _database_to_portable(database: Database) -> dict:
        tables = {}
        for name in database.table_names():
            table = database.table(name)
            tables[name] = {
                "columns": [
                    [c.name, c.type.value, c.nullable] for c in table.schema.columns
                ],
                "rows": [list(row.values()) for row in table.rows()],
            }
        return {"version": _FORMAT_VERSION, "tables": tables}

    @staticmethod
    def _database_from_portable(portable: dict) -> Database:
        if portable.get("version") != _FORMAT_VERSION:
            raise SchemaError(
                f"unsupported storage format version {portable.get('version')!r}"
            )
        database = Database()
        for name, spec in portable["tables"].items():
            columns = tuple(
                Column(col_name, ColumnType(type_name), nullable)
                for col_name, type_name, nullable in spec["columns"]
            )
            table = database.create_table(TableSchema(name, columns))
            column_names = [c.name for c in columns]
            for values in spec["rows"]:
                table.insert(dict(zip(column_names, values)))
        return database

    # ------------------------------------------------------------------ #
    # seal / open
    # ------------------------------------------------------------------ #
    def seal(self, database: Database) -> bytes:
        """Encrypt the whole database for the untrusted flash."""
        return self._cipher.encrypt(encode(self._database_to_portable(database)))

    def open(self, image: bytes) -> Database:
        """Decrypt, authenticate and rebuild the database.

        Raises :class:`~repro.exceptions.DecryptionError` on a tampered or
        foreign image."""
        return self._database_from_portable(decode(self._cipher.decrypt(image)))

    # ------------------------------------------------------------------ #
    # file helpers
    # ------------------------------------------------------------------ #
    def save_to(self, database: Database, path: str) -> None:
        with open(path, "wb") as handle:
            handle.write(self.seal(database))

    def load_from(self, path: str) -> Database:
        with open(path, "rb") as handle:
            return self.open(handle.read())
