"""Trusted Data Server subsystem: device model, access control, histograms,
noise generation and the TDS node itself."""

from repro.tds.access_control import (
    AccessPolicy,
    AccessRule,
    Authority,
    permissive_policy,
)
from repro.tds.device import SECURE_TOKEN, SMART_METER, SMARTPHONE, DeviceProfile
from repro.tds.histogram import Bucket, EquiDepthHistogram, frequencies_from_values
from repro.tds.node import TrustedDataServer, reduced_row
from repro.tds.storage import EncryptedStore
from repro.tds.noise import ComplementaryNoise, NoiseStrategy, RandomNoise

__all__ = [
    "AccessPolicy",
    "AccessRule",
    "Authority",
    "Bucket",
    "ComplementaryNoise",
    "DeviceProfile",
    "EncryptedStore",
    "EquiDepthHistogram",
    "NoiseStrategy",
    "RandomNoise",
    "SECURE_TOKEN",
    "SMARTPHONE",
    "SMART_METER",
    "TrustedDataServer",
    "frequencies_from_values",
    "permissive_policy",
    "reduced_row",
]
