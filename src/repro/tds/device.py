"""Hardware model of a secure device hosting a TDS.

The paper calibrates its cost model on a development board "representative
of secure tokens-like TDSs" (§6.2):

* 32-bit RISC CPU clocked at 120 MHz;
* AES/SHA crypto-coprocessor: one 128-bit block costs 167 cycles;
* 64 KB static RAM, 1 MB NOR flash, 1 GB external NAND flash;
* USB full-speed link: 12 Mbps nominal, **7.9 Mbps measured**.

:class:`DeviceProfile` turns those numbers into per-operation timings used
both by the analytic cost model (:mod:`repro.costmodel`) and by the
discrete-event simulator (:mod:`repro.simulation`).  The paper's
observation hierarchy — transfer ≫ CPU > decryption ≫ encryption for a
4 KB partition (Fig. 9b) — emerges from these constants and is asserted in
the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError

AES_BLOCK_BYTES = 16


@dataclass(frozen=True)
class DeviceProfile:
    """Timing/resource model of one secure device.

    All times returned are in **seconds**.
    """

    name: str
    cpu_hz: float
    #: cycles for the crypto-coprocessor to process one 16-byte AES block
    crypto_cycles_per_block: int
    #: cycles of general CPU work per payload byte (deserialization, number
    #: conversion, aggregate arithmetic — the "CPU cost" of Fig. 9b)
    cpu_cycles_per_byte: float
    #: effective link throughput in bits per second (measured, not nominal)
    link_bps: float
    #: static RAM available for the partial-aggregate structure, in bytes
    ram_bytes: int

    def __post_init__(self) -> None:
        if self.cpu_hz <= 0 or self.link_bps <= 0:
            raise ConfigurationError("cpu_hz and link_bps must be positive")
        if self.ram_bytes <= 0:
            raise ConfigurationError("ram_bytes must be positive")

    # ------------------------------------------------------------------ #
    # elementary costs
    # ------------------------------------------------------------------ #
    def crypto_time(self, num_bytes: int) -> float:
        """Time for the coprocessor to encrypt *or* decrypt *num_bytes*."""
        blocks = (num_bytes + AES_BLOCK_BYTES - 1) // AES_BLOCK_BYTES
        return blocks * self.crypto_cycles_per_block / self.cpu_hz

    def crypto_throughput_bytes_per_second(self) -> float:
        """Sustained coprocessor throughput in bytes/second — the model
        figure benchmarks (e.g. ``bench_crypto_throughput``) compare the
        software AES fast path against."""
        return AES_BLOCK_BYTES * self.cpu_hz / self.crypto_cycles_per_block

    def cpu_time(self, num_bytes: int) -> float:
        """General CPU time to process *num_bytes* of decrypted payload."""
        return num_bytes * self.cpu_cycles_per_byte / self.cpu_hz

    def transfer_time(self, num_bytes: int) -> float:
        """Time to move *num_bytes* over the device link (either way)."""
        return num_bytes * 8 / self.link_bps

    # ------------------------------------------------------------------ #
    # composite costs
    # ------------------------------------------------------------------ #
    def partition_processing_time(
        self, download_bytes: int, upload_bytes: int
    ) -> float:
        """End-to-end time to handle one partition: download, decrypt,
        process, encrypt the (smaller) result, upload.

        Matches the unit-test decomposition of Fig. 9b; download is managed
        in streaming so the total is a plain sum of the four components
        (the paper notes decrypt+filter < download, which makes the
        streaming overlap negligible — we keep the conservative sum)."""
        return (
            self.transfer_time(download_bytes)
            + self.crypto_time(download_bytes)
            + self.cpu_time(download_bytes)
            + self.crypto_time(upload_bytes)
            + self.transfer_time(upload_bytes)
        )

    def tuple_time(self, tuple_bytes: int) -> float:
        """The cost model's Tt: time for one TDS to fully process one
        encrypted tuple of *tuple_bytes* (transfer + crypto + CPU)."""
        return (
            self.transfer_time(tuple_bytes)
            + self.crypto_time(tuple_bytes)
            + self.cpu_time(tuple_bytes)
        )

    def ram_slots(self, slot_bytes: int = 16) -> int:
        """How many *slot_bytes*-wide scalar slots fit in RAM — the bound
        on the partial-aggregate structure of §4.2."""
        return self.ram_bytes // slot_bytes


#: The paper's development board (§6.2) — a Gemalto-class secure token.
SECURE_TOKEN = DeviceProfile(
    name="secure-token",
    cpu_hz=120e6,
    crypto_cycles_per_block=167,
    cpu_cycles_per_byte=30.0,
    link_bps=7.9e6,
    ram_bytes=64 * 1024,
)

#: A smart-meter class TDS: same security hardware, always-on Ethernet-ish
#: link and a little more RAM (the paper notes power meters are "connected
#: all the time and mostly idle", §6.4).
SMART_METER = DeviceProfile(
    name="smart-meter",
    cpu_hz=120e6,
    crypto_cycles_per_block=167,
    cpu_cycles_per_byte=30.0,
    link_bps=10e6,
    ram_bytes=128 * 1024,
)

#: A TrustZone smartphone-class TDS (§1: "a full TEE will soon be present
#: in any client device").
SMARTPHONE = DeviceProfile(
    name="smartphone",
    cpu_hz=1.2e9,
    crypto_cycles_per_block=167,
    cpu_cycles_per_byte=20.0,
    link_bps=50e6,
    ram_bytes=4 * 1024 * 1024,
)
