"""The Trusted Data Server: the paper's unique element of trust.

A :class:`TrustedDataServer` wraps one individual's local database inside
tamper-resistant hardware.  Everything that leaves this class is encrypted
(or an opaque keyed hash); everything that enters is decrypted and
verified inside.  The honest-but-curious SSI only ever interacts with the
``collect_*`` / ``*_partition`` outputs, never with the plaintext.

The class exposes the *primitives* of Fig. 2; protocol drivers in
:mod:`repro.protocols` compose them into the collection / aggregation /
filtering phases.
"""

from __future__ import annotations

import random
from typing import Any

from repro.core.codec import encode
from repro.core.messages import (
    EncryptedPartial,
    EncryptedTuple,
    EncryptedTupleBlock,
    Partition,
    QueryEnvelope,
    TupleContent,
)
from repro.core.wire import decode_frame, encode_partial_frame, encode_tuple_frame
from repro.crypto.det import DeterministicCipher
from repro.crypto.hashing import BucketHasher
from repro.crypto.keys import KeyBundle
from repro.crypto.ndet import NonDeterministicCipher
from repro.crypto.pool import CryptoPool, TupleFrameBlock
from repro.exceptions import (
    AccessDeniedError,
    ProtocolError,
    ResourceExhaustedError,
)
from repro.sql.ast import SelectStatement
from repro.sql.executor import (
    column_refs,
    finalize_groups,
    group_key,
    local_matching_rows,
    project_row,
)
from repro.sql.parser import parse
from repro.sql.partial import PartialAggregation
from repro.sql.schema import Database, Row
from repro.tds.access_control import AccessPolicy, Authority
from repro.tds.device import SECURE_TOKEN, DeviceProfile
from repro.tds.histogram import EquiDepthHistogram
from repro.tds.noise import NoiseStrategy

#: bytes per scalar slot assumed by the RAM bound check (§4.2)
SLOT_BYTES = 16


class TrustedDataServer:
    """One secure personal data server.

    Parameters
    ----------
    tds_id:
        Stable identifier (used by the simulator and for failure injection;
        never revealed in payloads).
    database:
        The local relational data (conforming to the application schema).
    keys:
        Key bundle holding k1 and k2 (burn-time provisioning).
    policy / authority:
        Access-control rule set and the credential-verification authority.
    device:
        Hardware profile; bounds the partial-aggregate structure RAM.
    rng:
        Seedable randomness for reproducible simulations (nonces, noise).
    """

    def __init__(
        self,
        tds_id: str,
        database: Database,
        keys: KeyBundle,
        policy: AccessPolicy,
        authority: Authority,
        device: DeviceProfile = SECURE_TOKEN,
        rng: random.Random | None = None,
    ) -> None:
        if not keys.holds_k1() or not keys.holds_k2():
            raise ProtocolError("a TDS must hold both k1 and k2")
        self.tds_id = tds_id
        self.database = database
        self.device = device
        self._keys = keys
        self._policy = policy
        self._authority = authority
        self._rng = rng if rng is not None else random.Random()

    # ------------------------------------------------------------------ #
    # cipher access (rebuilt on use so key rotation is picked up; the
    # process-wide cipher cache makes each rebuild a dictionary lookup
    # rather than a subkey derivation + key-schedule expansion)
    # ------------------------------------------------------------------ #
    def _k1_cipher(self) -> NonDeterministicCipher:
        return NonDeterministicCipher(self._keys.k1.current.material, self._rng)

    def _k2_cipher(self) -> NonDeterministicCipher:
        return NonDeterministicCipher(self._keys.k2.current.material, self._rng)

    def _k2_det_cipher(self) -> DeterministicCipher:
        return DeterministicCipher(self._keys.k2.current.material)

    def _bucket_hasher(self) -> BucketHasher:
        return BucketHasher(self._keys.k2.current.material)

    # ------------------------------------------------------------------ #
    # query opening (steps 2-3 of Fig. 2)
    # ------------------------------------------------------------------ #
    def open_query(self, envelope: QueryEnvelope) -> SelectStatement:
        """Decrypt, parse and authorize the query.

        Raises :class:`AccessDeniedError` when the credential fails
        verification or the policy denies the statement."""
        plaintext = self._k1_cipher().decrypt(envelope.encrypted_query)
        statement = parse(plaintext.decode("utf-8"))
        if not self._authority.verify(envelope.credential):
            raise AccessDeniedError(
                f"credential of {envelope.credential.subject!r} failed verification"
            )
        self._policy.authorize(envelope.credential, statement)
        return statement

    # ------------------------------------------------------------------ #
    # collection phase (step 4 / 4')
    # ------------------------------------------------------------------ #
    def collect_basic(self, envelope: QueryEnvelope) -> list[EncryptedTuple]:
        """Basic protocol: project matching rows, or emit one dummy tuple
        when nothing matches or access is denied (so the SSI never learns
        query selectivity, §3.2)."""
        return list(self.collect_block(envelope, "basic").tuples())

    def collect_for_sagg(self, envelope: QueryEnvelope) -> list[EncryptedTuple]:
        """S_Agg collection: fully nDet-encrypted tuples, no group tag."""
        return list(self.collect_block(envelope, "s_agg").tuples())

    def collect_with_noise(
        self, envelope: QueryEnvelope, noise: NoiseStrategy
    ) -> list[EncryptedTuple]:
        """Noise-based collection: Det_Enc tag on the grouping value so the
        SSI can group tuples, plus *noise* fake tuples hiding the real
        distribution (§4.3).  Denied/empty TDSs still contribute their fake
        tuples only."""
        return list(self.collect_block(envelope, "noise", noise=noise).tuples())

    def collect_for_histogram(
        self, envelope: QueryEnvelope, histogram: EquiDepthHistogram
    ) -> list[EncryptedTuple]:
        """ED_Hist collection: tuples tagged with the keyed hash of their
        equi-depth bucket (§4.4)."""
        return list(
            self.collect_block(envelope, "ed_hist", histogram=histogram).tuples()
        )

    def collect_frames(
        self,
        envelope: QueryEnvelope,
        protocol: str = "basic",
        *,
        noise: NoiseStrategy | None = None,
        histogram: EquiDepthHistogram | None = None,
    ) -> TupleFrameBlock:
        """Build the *plaintext* tuple frames (plus routing tags) for one
        contribution, without encrypting yet — the TDS-side input of the
        block crypto plane.  The returned block must never leave the TDS:
        hand it to :meth:`seal_frames` (or a :class:`CryptoPool`) to get
        the SSI-bound :class:`EncryptedTupleBlock`.

        Tags are already in their final over-the-wire form (``None``,
        ``Det_Enc(group)`` or ``h(bucket)``) because the nDet pass does
        not touch them."""
        if protocol == "basic" or protocol == "s_agg":
            project = project_row if protocol == "basic" else reduced_row
            try:
                statement = self.open_query(envelope)
                rows = local_matching_rows(self.database, statement)
            except AccessDeniedError:
                rows = []
            if not rows:
                return TupleFrameBlock.from_frames([self._dummy_frame()])
            frames = [
                encode_tuple_frame(
                    TupleContent(TupleContent.KIND_DATA, project(statement, row))
                )
                for row in rows
            ]
            return TupleFrameBlock.from_frames(frames)
        if protocol == "noise":
            if noise is None:
                raise ProtocolError("noise-based collection needs a NoiseStrategy")
            try:
                statement = self.open_query(envelope)
                rows = local_matching_rows(self.database, statement)
            except AccessDeniedError:
                statement, rows = None, []
            frames = []
            tag_plaintexts: list[bytes] = []
            for row in rows:
                assert statement is not None
                key = group_key(statement, row)
                content = TupleContent(
                    TupleContent.KIND_DATA, reduced_row(statement, row)
                )
                frames.append(encode_tuple_frame(content))
                tag_plaintexts.append(encode(list(key)))
                for fake_value, fake_content in noise.fake_tuples(key):
                    fake_key = (
                        fake_value if isinstance(fake_value, tuple) else (fake_value,)
                    )
                    frames.append(encode_tuple_frame(fake_content))
                    tag_plaintexts.append(encode(list(fake_key)))
            tags = self._k2_det_cipher().encrypt_many(tag_plaintexts)
            return TupleFrameBlock.from_frames(frames, tags)
        if protocol == "ed_hist":
            if histogram is None:
                raise ProtocolError("ED_Hist collection needs an EquiDepthHistogram")
            try:
                statement = self.open_query(envelope)
                rows = local_matching_rows(self.database, statement)
            except AccessDeniedError:
                return TupleFrameBlock.from_frames([])
            hasher = self._bucket_hasher()
            frames = []
            hash_tags: list[bytes | None] = []
            for row in rows:
                key = group_key(statement, row)
                bucket_id = histogram.bucket_of(key if len(key) > 1 else key[0])
                content = TupleContent(
                    TupleContent.KIND_DATA, reduced_row(statement, row)
                )
                frames.append(encode_tuple_frame(content))
                hash_tags.append(hasher.hash_bucket(bucket_id))
            return TupleFrameBlock.from_frames(frames, hash_tags)
        raise ProtocolError(f"unknown collection protocol {protocol!r}")

    def seal_frames(self, frames: TupleFrameBlock) -> EncryptedTupleBlock:
        """nDet-encrypt a frame block under k2 in one packed pass — the
        moment the data crosses the trust boundary."""
        cipher = self._k2_cipher()
        nonces = cipher.fresh_nonces(len(frames))
        payloads, offsets = cipher.encrypt_block(
            frames.frames, frames.offsets, nonces=nonces
        )
        return EncryptedTupleBlock(
            payloads=payloads, offsets=offsets, tags=frames.tags
        )

    async def seal_frames_async(
        self, frames: TupleFrameBlock, pool: CryptoPool
    ) -> EncryptedTupleBlock:
        """:meth:`seal_frames` on a :class:`CryptoPool`: the packed AES
        work runs in a worker process while the caller's event loop keeps
        servicing sockets.  Nonces are still drawn here (in the TDS, from
        its rng/entropy source) so reproducibility and the key's entropy
        discipline survive the process hop."""
        nonces = self._k2_cipher().fresh_nonces(len(frames))
        return await pool.encrypt_tuple_block_async(
            self._keys.k2.current.material, frames, nonces=nonces
        )

    def collect_block(
        self,
        envelope: QueryEnvelope,
        protocol: str = "basic",
        *,
        noise: NoiseStrategy | None = None,
        histogram: EquiDepthHistogram | None = None,
    ) -> EncryptedTupleBlock:
        """One contribution as a single columnar block: build the frames,
        then encrypt them in one packed pass.  Per-tuple ciphertext bytes
        are identical to the ``collect_*`` methods (same nonce draw order,
        same construction), so the two shapes interoperate freely."""
        return self.seal_frames(
            self.collect_frames(
                envelope, protocol, noise=noise, histogram=histogram
            )
        )

    def _dummy_frame(self) -> bytes:
        return encode_tuple_frame(TupleContent(TupleContent.KIND_DUMMY))

    def _dummy_tuple(self) -> EncryptedTuple:
        return EncryptedTuple(self._k2_cipher().encrypt(self._dummy_frame()))

    # ------------------------------------------------------------------ #
    # aggregation phase (steps 6-8)
    # ------------------------------------------------------------------ #
    def _decrypt_partition(self, partition: Partition) -> list[bytes]:
        """Authenticate-then-decrypt a partition's payloads in one packed
        pass (one keystream buffer, one MAC batch) instead of per item."""
        items = partition.items
        if not items:
            return []
        offsets = [0]
        total = 0
        for item in items:
            total += len(item.payload)
            offsets.append(total)
        packed = b"".join(item.payload for item in items)
        plain, plain_offsets = self._k2_cipher().decrypt_block(packed, offsets)
        view = memoryview(plain)
        return [
            bytes(view[plain_offsets[i] : plain_offsets[i + 1]])
            for i in range(len(items))
        ]

    def aggregate_partition(
        self, statement: SelectStatement, partition: Partition
    ) -> EncryptedPartial:
        """S_Agg step: fold a partition (raw tuples and/or partials) into a
        single partial aggregation, returned fully nDet-encrypted."""
        partial = self._fold_partition(statement, partition)
        payload = self._k2_cipher().encrypt(
            encode_partial_frame(partial.to_portable())
        )
        return EncryptedPartial(payload)

    def aggregate_partition_per_group(
        self, statement: SelectStatement, partition: Partition
    ) -> list[EncryptedPartial]:
        """Noise-based / ED_Hist step: fold a partition and emit one
        encrypted partial *per group*, tagged ``Det_Enc(group)`` so the SSI
        can route same-group partials together for the next step."""
        partial = self._fold_partition(statement, partition)
        frames: list[bytes] = []
        tag_plaintexts: list[bytes] = []
        for key in partial.groups():
            single = PartialAggregation(statement)
            single.groups()[key] = partial.groups()[key]
            frames.append(encode_partial_frame(single.to_portable()))
            tag_plaintexts.append(encode(list(key)))
        payloads = self._k2_cipher().encrypt_many(frames)
        tags = self._k2_det_cipher().encrypt_many(tag_plaintexts)
        return [
            EncryptedPartial(payload=payload, group_tag=tag)
            for payload, tag in zip(payloads, tags)
        ]

    def _fold_partition(
        self, statement: SelectStatement, partition: Partition
    ) -> PartialAggregation:
        """Decrypt every item, drop dummies/fakes, build the Ω structure.

        Enforces the §4.2 RAM bound: the partial aggregate must fit in the
        device's RAM, otherwise :class:`ResourceExhaustedError`."""
        partial = PartialAggregation(statement)
        max_slots = self.device.ram_bytes // SLOT_BYTES
        plaintexts = self._decrypt_partition(partition)
        for plaintext in plaintexts:
            kind, body = decode_frame(plaintext)
            if kind == "tuple":
                if body.is_real():
                    partial.add_row(body.row)
            else:
                partial.merge(PartialAggregation.from_portable(statement, body))
            if partial.memory_slots() > max_slots:
                raise ResourceExhaustedError(
                    f"partial aggregate needs more than {self.device.ram_bytes} "
                    f"bytes of RAM on device {self.device.name!r} "
                    f"({partial.group_count()} groups)"
                )
        return partial

    # ------------------------------------------------------------------ #
    # filtering phase (steps 9-12)
    # ------------------------------------------------------------------ #
    def filter_partition(self, partition: Partition) -> list[bytes]:
        """Basic protocol filtering: drop dummies, re-encrypt true rows
        under k1 for the querier."""
        plaintexts = self._decrypt_partition(partition)
        rows: list[bytes] = []
        for plaintext in plaintexts:
            kind, body = decode_frame(plaintext)
            if kind != "tuple":
                raise ProtocolError("filtering phase expects tuple frames")
            if body.is_real():
                rows.append(encode(body.row))
        return self._k1_cipher().encrypt_many(rows)

    def finalize_partition(
        self, statement: SelectStatement, partition: Partition
    ) -> list[bytes]:
        """Aggregation filtering: merge final partials, evaluate HAVING and
        the SELECT projection, re-encrypt result rows under k1."""
        plaintexts = self._decrypt_partition(partition)
        partial = PartialAggregation(statement)
        for plaintext in plaintexts:
            kind, body = decode_frame(plaintext)
            if kind != "partial":
                raise ProtocolError("finalization expects partial frames")
            partial.merge(PartialAggregation.from_portable(statement, body))
        rows = finalize_groups(statement, partial.groups())
        return self._k1_cipher().encrypt_many([encode(row) for row in rows])


def reduced_row(statement: SelectStatement, row: Row) -> Row:
    """Project a bound row down to the columns the aggregation actually
    needs (grouping attributes + aggregate arguments + HAVING inputs),
    cutting tuple size st — the quantity the cost model charges for."""
    needed: set[str] = set()
    expressions: list[Any] = list(statement.group_by)
    for call in statement.aggregates():
        if call.argument is not None:
            expressions.append(call.argument)
    for expression in expressions:
        for ref in column_refs(expression):
            needed.add(f"{ref.table}.{ref.name}" if ref.table else ref.name)
    reduced = {}
    for key, value in row.items():
        bare = key.split(".", 1)[1] if "." in key else key
        if key in needed or bare in needed:
            reduced[key] = value
    return reduced
