"""Nearly equi-depth histograms over the grouping-attribute domain.

ED_Hist (§4.4) requires every TDS to share "a decomposition of the AG
domain into buckets holding nearly the same number of true tuples".  The
distribution is discovered once (a COUNT ... GROUP BY AG run with one of
the other protocols — see :mod:`repro.protocols.discovery`) and refreshed
from time to time.

:class:`EquiDepthHistogram` implements the decomposition and the
``value → bucket`` mapping; bucket identities travel as keyed hashes
(:class:`repro.crypto.hashing.BucketHasher`) so the SSI sees only a nearly
uniform distribution of opaque tags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class Bucket:
    """One histogram bucket: an explicit set of domain values.

    Buckets are *value-enumerated* rather than range-based because the
    grouping attribute may be categorical (districts, diagnosis codes...);
    equi-depth is achieved on frequencies, not on domain order.
    """

    bucket_id: int
    values: frozenset
    weight: int  # total true-tuple frequency covered by this bucket

    def __contains__(self, value: Any) -> bool:
        return value in self.values


class EquiDepthHistogram:
    """Greedy nearly-equi-depth decomposition of a frequency table.

    >>> hist = EquiDepthHistogram.from_distribution(
    ...     {"a": 50, "b": 30, "c": 10, "d": 10}, num_buckets=2)
    >>> hist.bucket_count()
    2
    >>> hist.bucket_of("a") != hist.bucket_of("c")
    True
    """

    def __init__(self, buckets: list[Bucket]) -> None:
        if not buckets:
            raise ConfigurationError("a histogram needs at least one bucket")
        self._buckets = list(buckets)
        self._value_to_bucket: dict[Any, int] = {}
        for bucket in buckets:
            for value in bucket.values:
                if value in self._value_to_bucket:
                    raise ConfigurationError(
                        f"value {value!r} appears in two buckets"
                    )
                self._value_to_bucket[value] = bucket.bucket_id

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_distribution(
        cls, frequencies: Mapping[Any, int], num_buckets: int
    ) -> "EquiDepthHistogram":
        """Build from a ``value → count`` table using the classic greedy
        first-fit-decreasing heuristic: place each value (heaviest first)
        into the currently lightest bucket.

        The number of buckets is capped by the number of distinct values
        (a bucket cannot be empty)."""
        if num_buckets < 1:
            raise ConfigurationError("num_buckets must be >= 1")
        if not frequencies:
            raise ConfigurationError("cannot build a histogram from no data")
        num_buckets = min(num_buckets, len(frequencies))
        loads = [0] * num_buckets
        members: list[list[Any]] = [[] for __ in range(num_buckets)]
        ordered = sorted(
            frequencies.items(), key=lambda kv: (-kv[1], str(kv[0]))
        )
        for value, count in ordered:
            lightest = min(range(num_buckets), key=lambda i: loads[i])
            loads[lightest] += count
            members[lightest].append(value)
        buckets = [
            Bucket(bucket_id=i, values=frozenset(vals), weight=loads[i])
            for i, vals in enumerate(members)
        ]
        return cls(buckets)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def bucket_of(self, value: Any) -> int:
        """The bucket id of *value*; unseen values go to the bucket whose id
        is a stable hash of the value (they were absent from the discovered
        distribution, so any deterministic assignment preserves
        correctness)."""
        bucket_id = self._value_to_bucket.get(value)
        if bucket_id is not None:
            return bucket_id
        return hash(repr(value)) % len(self._buckets)

    def bucket(self, bucket_id: int) -> Bucket:
        return self._buckets[bucket_id]

    def bucket_count(self) -> int:
        return len(self._buckets)

    def buckets(self) -> list[Bucket]:
        return list(self._buckets)

    def collision_factor(self) -> float:
        """The paper's ``h``: average number of distinct grouping values per
        bucket (G/M).  h=1 degenerates to Det_Enc; h=G is a single bucket."""
        total_values = len(self._value_to_bucket)
        return total_values / len(self._buckets)

    def skew(self) -> float:
        """max/mean bucket weight — 1.0 is perfectly equi-depth."""
        weights = [b.weight for b in self._buckets]
        mean = sum(weights) / len(weights)
        if mean == 0:
            return 1.0
        return max(weights) / mean


def frequencies_from_values(values: Iterable[Any]) -> dict[Any, int]:
    """Frequency table helper for building histograms from raw samples."""
    table: dict[Any, int] = {}
    for value in values:
        table[value] = table.get(value, 0) + 1
    return table
