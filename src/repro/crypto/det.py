"""Deterministic encryption — ``Det_Enc`` in the paper.

The same (key, plaintext) pair always produces the same ciphertext.  The
noise-based protocols (§4.3) rely on this so that the SSI can group tuples
of the same GROUP BY value *without decrypting them* — at the price of
revealing the ciphertext frequency distribution, which is exactly what the
injected noise then hides.

The construction is SIV-style: a CBC-MAC of the plaintext is used both as
the CTR nonce and as the authentication tag.

    ciphertext = SIV(16) || CTR(k_enc, SIV[:8], plaintext)

Subkey derivation and key-schedule expansion go through the process-wide
cipher cache (:mod:`repro.crypto.cache`); the batched ``*_many`` methods
run whole covering results through the vectorized AES engine in one pass.
"""

from __future__ import annotations

from repro.crypto import cache
from repro.crypto.modes import (
    cbc_mac,
    cbc_mac_many,
    ctr_transform,
    ctr_transform_many,
)
from repro.exceptions import DecryptionError

_SIV_SIZE = 16


class DeterministicCipher:
    """``Det_Enc``: deterministic authenticated encryption.

    >>> cipher = DeterministicCipher(bytes(16))
    >>> cipher.encrypt(b"Paris") == cipher.encrypt(b"Paris")
    True
    >>> cipher.decrypt(cipher.encrypt(b"Paris"))
    b'Paris'
    """

    deterministic = True

    def __init__(self, key: bytes) -> None:
        self._enc = cache.aes_for_subkey(key, b"Det/enc")
        self._mac = cache.aes_for_subkey(key, b"Det/mac")

    def encrypt(self, plaintext: bytes) -> bytes:
        """Encrypt *plaintext*; equal plaintexts yield equal ciphertexts."""
        siv = cbc_mac(self._mac, plaintext)
        body = ctr_transform(self._enc, siv[:8], plaintext)
        return siv + body

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Decrypt and verify the synthetic IV."""
        if len(ciphertext) < _SIV_SIZE:
            raise DecryptionError("ciphertext too short for Det_Enc framing")
        siv = ciphertext[:_SIV_SIZE]
        body = ciphertext[_SIV_SIZE:]
        plaintext = ctr_transform(self._enc, siv[:8], body)
        if cbc_mac(self._mac, plaintext) != siv:
            raise DecryptionError("Det_Enc synthetic IV mismatch")
        return plaintext

    # ------------------------------------------------------------------ #
    # batched interface (protocol hot path)
    # ------------------------------------------------------------------ #
    def encrypt_many(self, plaintexts: list[bytes]) -> list[bytes]:
        """Encrypt a batch in two vectorized passes (SIV MACs, then CTR)."""
        if not plaintexts:
            return []
        sivs = cbc_mac_many(self._mac, plaintexts)
        bodies = ctr_transform_many(
            self._enc, [siv[:8] for siv in sivs], plaintexts
        )
        return [siv + body for siv, body in zip(sivs, bodies)]

    def decrypt_many(self, ciphertexts: list[bytes]) -> list[bytes]:
        """Decrypt then verify a batch in two vectorized passes.

        Raises :class:`DecryptionError` if *any* synthetic IV mismatches —
        a batch is one trust decision."""
        if not ciphertexts:
            return []
        sivs, bodies = [], []
        for ciphertext in ciphertexts:
            if len(ciphertext) < _SIV_SIZE:
                raise DecryptionError("ciphertext too short for Det_Enc framing")
            sivs.append(ciphertext[:_SIV_SIZE])
            bodies.append(ciphertext[_SIV_SIZE:])
        plaintexts = ctr_transform_many(
            self._enc, [siv[:8] for siv in sivs], bodies
        )
        expected = cbc_mac_many(self._mac, plaintexts)
        for siv, want in zip(sivs, expected):
            if siv != want:
                raise DecryptionError("Det_Enc synthetic IV mismatch")
        return plaintexts

    def ciphertext_overhead(self) -> int:
        """Bytes added on top of the plaintext length."""
        return _SIV_SIZE
