"""Deterministic encryption — ``Det_Enc`` in the paper.

The same (key, plaintext) pair always produces the same ciphertext.  The
noise-based protocols (§4.3) rely on this so that the SSI can group tuples
of the same GROUP BY value *without decrypting them* — at the price of
revealing the ciphertext frequency distribution, which is exactly what the
injected noise then hides.

The construction is SIV-style: a CBC-MAC of the plaintext is used both as
the CTR nonce and as the authentication tag.

    ciphertext = SIV(16) || CTR(k_enc, SIV[:8], plaintext)

Subkey derivation and key-schedule expansion go through the process-wide
cipher cache (:mod:`repro.crypto.cache`); the batched ``*_many`` methods
run whole covering results through the vectorized AES engine in one pass.
"""

from __future__ import annotations

import hmac
from typing import Sequence

from repro.crypto import cache
from repro.crypto.modes import (
    cbc_mac,
    cbc_mac_many,
    ctr_transform,
    ctr_transform_many,
    ctr_transform_packed,
)
from repro.exceptions import DecryptionError

_SIV_SIZE = 16


class DeterministicCipher:
    """``Det_Enc``: deterministic authenticated encryption.

    >>> cipher = DeterministicCipher(bytes(16))
    >>> cipher.encrypt(b"Paris") == cipher.encrypt(b"Paris")
    True
    >>> cipher.decrypt(cipher.encrypt(b"Paris"))
    b'Paris'
    """

    deterministic = True

    def __init__(self, key: bytes) -> None:
        self._enc = cache.aes_for_subkey(key, b"Det/enc")
        self._mac = cache.aes_for_subkey(key, b"Det/mac")

    def encrypt(self, plaintext: bytes) -> bytes:
        """Encrypt *plaintext*; equal plaintexts yield equal ciphertexts."""
        siv = cbc_mac(self._mac, plaintext)
        body = ctr_transform(self._enc, siv[:8], plaintext)
        return siv + body

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Decrypt and verify the synthetic IV."""
        if len(ciphertext) < _SIV_SIZE:
            raise DecryptionError("ciphertext too short for Det_Enc framing")
        siv = ciphertext[:_SIV_SIZE]
        body = ciphertext[_SIV_SIZE:]
        plaintext = ctr_transform(self._enc, siv[:8], body)
        if not hmac.compare_digest(cbc_mac(self._mac, plaintext), siv):
            raise DecryptionError("Det_Enc synthetic IV mismatch")
        return plaintext

    # ------------------------------------------------------------------ #
    # batched interface (protocol hot path)
    # ------------------------------------------------------------------ #
    def encrypt_many(self, plaintexts: list[bytes]) -> list[bytes]:
        """Encrypt a batch in two vectorized passes (SIV MACs, then CTR)."""
        if not plaintexts:
            return []
        sivs = cbc_mac_many(self._mac, plaintexts)
        bodies = ctr_transform_many(
            self._enc, [siv[:8] for siv in sivs], plaintexts
        )
        return [siv + body for siv, body in zip(sivs, bodies)]

    def decrypt_many(self, ciphertexts: list[bytes]) -> list[bytes]:
        """Decrypt then verify a batch in two vectorized passes.

        Raises :class:`DecryptionError` if *any* synthetic IV mismatches —
        a batch is one trust decision."""
        if not ciphertexts:
            return []
        sivs, bodies = [], []
        for ciphertext in ciphertexts:
            if len(ciphertext) < _SIV_SIZE:
                raise DecryptionError("ciphertext too short for Det_Enc framing")
            sivs.append(ciphertext[:_SIV_SIZE])
            bodies.append(ciphertext[_SIV_SIZE:])
        plaintexts = ctr_transform_many(
            self._enc, [siv[:8] for siv in sivs], bodies
        )
        expected = cbc_mac_many(self._mac, plaintexts)
        valid = True
        for siv, want in zip(sivs, expected):
            # constant-time per IV, and no early exit across the batch
            valid = hmac.compare_digest(siv, want) and valid
        if not valid:
            raise DecryptionError("Det_Enc synthetic IV mismatch")
        return plaintexts

    # ------------------------------------------------------------------ #
    # packed-block interface (the block crypto plane)
    # ------------------------------------------------------------------ #
    def encrypt_block(
        self, payloads: bytes | memoryview, offsets: Sequence[int]
    ) -> tuple[bytes, tuple[int, ...]]:
        """Encrypt a packed buffer of messages in one pass (SIV MACs,
        then one packed CTR pass).  Returns the packed ciphertext buffer
        and its offsets; each message grows by :meth:`ciphertext_overhead`
        bytes.  Determinism is preserved message-wise: each output segment
        equals :meth:`encrypt` of the corresponding input segment."""
        count = len(offsets) - 1
        view = memoryview(payloads)
        sivs = cbc_mac_many(
            self._mac,
            [bytes(view[offsets[i] : offsets[i + 1]]) for i in range(count)],
        )
        bodies = ctr_transform_packed(
            self._enc, [siv[:8] for siv in sivs], payloads, offsets
        )
        body_view = memoryview(bodies)
        pieces: list[bytes | memoryview] = []
        out_offsets = [0] * (count + 1)
        cursor = 0
        for i in range(count):
            segment = body_view[offsets[i] : offsets[i + 1]]
            pieces.append(sivs[i])
            pieces.append(segment)
            cursor += _SIV_SIZE + len(segment)
            out_offsets[i + 1] = cursor
        return b"".join(pieces), tuple(out_offsets)

    def decrypt_block(
        self, payloads: bytes | memoryview, offsets: Sequence[int]
    ) -> tuple[bytes, tuple[int, ...]]:
        """Decrypt then verify a packed buffer of ciphertexts.

        Raises :class:`DecryptionError` if *any* synthetic IV mismatches —
        the block is one trust decision, and every IV is compared
        (constant-time) before any verdict is returned."""
        count = len(offsets) - 1
        view = memoryview(payloads)
        sivs: list[bytes] = []
        body_offsets = [0] * (count + 1)
        cursor = 0
        for i in range(count):
            start, end = offsets[i], offsets[i + 1]
            if end - start < _SIV_SIZE:
                raise DecryptionError("ciphertext too short for Det_Enc framing")
            sivs.append(bytes(view[start : start + _SIV_SIZE]))
            cursor += (end - start) - _SIV_SIZE
            body_offsets[i + 1] = cursor
        packed_bodies = b"".join(
            bytes(view[offsets[i] + _SIV_SIZE : offsets[i + 1]])
            for i in range(count)
        )
        plain = ctr_transform_packed(
            self._enc, [siv[:8] for siv in sivs], packed_bodies, body_offsets
        )
        plain_view = memoryview(plain)
        expected = cbc_mac_many(
            self._mac,
            [
                bytes(plain_view[body_offsets[i] : body_offsets[i + 1]])
                for i in range(count)
            ],
        )
        valid = True
        for siv, want in zip(sivs, expected):
            valid = hmac.compare_digest(siv, want) and valid
        if not valid:
            raise DecryptionError("Det_Enc synthetic IV mismatch")
        return plain, tuple(body_offsets)

    def ciphertext_overhead(self) -> int:
        """Bytes added on top of the plaintext length."""
        return _SIV_SIZE
