"""Non-deterministic (probabilistic) encryption — ``nDet_Enc`` in the paper.

Several encryptions of the same message yield different ciphertexts, so an
honest-but-curious SSI observing the traffic cannot run frequency-based
attacks (§3.1, "Dataflow obfuscation").  The construction is
encrypt-then-MAC:

    ciphertext = nonce(8) || CTR(k_enc, nonce, plaintext) || CBC-MAC(k_mac, nonce || body)

Sub-keys ``k_enc`` and ``k_mac`` are derived from the shared key so a single
16-byte key (k1 or k2 of the paper) is all that TDSs need to exchange.

A seedable :class:`random.Random` may be injected for reproducible
simulations; by default nonces come from :mod:`secrets`.
"""

from __future__ import annotations

import random
import secrets

from repro.crypto.aes import AES128
from repro.crypto.keys import derive_subkey
from repro.crypto.modes import cbc_mac, ctr_transform
from repro.exceptions import DecryptionError

_NONCE_SIZE = 8
_TAG_SIZE = 16


class NonDeterministicCipher:
    """``nDet_Enc``: probabilistic authenticated encryption.

    >>> cipher = NonDeterministicCipher(bytes(16), rng=random.Random(0))
    >>> a = cipher.encrypt(b"alice")
    >>> b = cipher.encrypt(b"alice")
    >>> a != b and cipher.decrypt(a) == cipher.decrypt(b) == b"alice"
    True
    """

    #: True for deterministic schemes; used by protocol code to assert the
    #: correct scheme is applied to each dataflow.
    deterministic = False

    def __init__(self, key: bytes, rng: random.Random | None = None) -> None:
        self._enc = AES128(derive_subkey(key, b"nDet/enc"))
        self._mac = AES128(derive_subkey(key, b"nDet/mac"))
        self._rng = rng

    def _fresh_nonce(self) -> bytes:
        if self._rng is not None:
            return self._rng.getrandbits(64).to_bytes(8, "big")
        return secrets.token_bytes(_NONCE_SIZE)

    def encrypt(self, plaintext: bytes) -> bytes:
        """Encrypt *plaintext* under a fresh nonce."""
        nonce = self._fresh_nonce()
        body = ctr_transform(self._enc, nonce, plaintext)
        tag = cbc_mac(self._mac, nonce + body)
        return nonce + body + tag

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Decrypt and authenticate; raises :class:`DecryptionError` on
        truncated or tampered input."""
        if len(ciphertext) < _NONCE_SIZE + _TAG_SIZE:
            raise DecryptionError("ciphertext too short for nDet_Enc framing")
        nonce = ciphertext[:_NONCE_SIZE]
        body = ciphertext[_NONCE_SIZE:-_TAG_SIZE]
        tag = ciphertext[-_TAG_SIZE:]
        if cbc_mac(self._mac, nonce + body) != tag:
            raise DecryptionError("nDet_Enc authentication tag mismatch")
        return ctr_transform(self._enc, nonce, body)

    def ciphertext_overhead(self) -> int:
        """Bytes added on top of the plaintext length."""
        return _NONCE_SIZE + _TAG_SIZE
