"""Non-deterministic (probabilistic) encryption — ``nDet_Enc`` in the paper.

Several encryptions of the same message yield different ciphertexts, so an
honest-but-curious SSI observing the traffic cannot run frequency-based
attacks (§3.1, "Dataflow obfuscation").  The construction is
encrypt-then-MAC:

    ciphertext = nonce(8) || CTR(k_enc, nonce, plaintext) || CBC-MAC(k_mac, nonce || body)

Sub-keys ``k_enc`` and ``k_mac`` are derived from the shared key so a single
16-byte key (k1 or k2 of the paper) is all that TDSs need to exchange.
Derivation and key-schedule expansion go through the process-wide cipher
cache (:mod:`repro.crypto.cache`), so constructing one of these objects is
cheap enough to do per call — key rotation is picked up for free.

The batched :meth:`NonDeterministicCipher.encrypt_many` /
:meth:`~NonDeterministicCipher.decrypt_many` hand a whole covering result
to the vectorized AES engine in one pass; protocol hot paths should prefer
them over per-tuple calls.

A seedable :class:`random.Random` may be injected for reproducible
simulations; by default nonces come from :mod:`secrets`.
"""

from __future__ import annotations

import hmac
import random
import secrets
from typing import Sequence

from repro.crypto import cache
from repro.crypto.modes import (
    cbc_mac,
    cbc_mac_many,
    ctr_transform,
    ctr_transform_many,
    ctr_transform_packed,
    keystream_packed,
)
from repro.exceptions import DecryptionError

_NONCE_SIZE = 8
_TAG_SIZE = 16


class NonDeterministicCipher:
    """``nDet_Enc``: probabilistic authenticated encryption.

    >>> cipher = NonDeterministicCipher(bytes(16), rng=random.Random(0))
    >>> a = cipher.encrypt(b"alice")
    >>> b = cipher.encrypt(b"alice")
    >>> a != b and cipher.decrypt(a) == cipher.decrypt(b) == b"alice"
    True
    """

    #: True for deterministic schemes; used by protocol code to assert the
    #: correct scheme is applied to each dataflow.
    deterministic = False

    def __init__(self, key: bytes, rng: random.Random | None = None) -> None:
        self._enc = cache.aes_for_subkey(key, b"nDet/enc")
        self._mac = cache.aes_for_subkey(key, b"nDet/mac")
        self._rng = rng

    def _fresh_nonce(self) -> bytes:
        if self._rng is not None:
            return self._rng.getrandbits(64).to_bytes(8, "big")
        return secrets.token_bytes(_NONCE_SIZE)

    def fresh_nonces(self, count: int) -> list[bytes]:
        """*count* fresh CTR nonces (one :mod:`secrets` call, not *count*)."""
        if self._rng is not None:
            return [self._fresh_nonce() for __ in range(count)]
        pool = secrets.token_bytes(_NONCE_SIZE * count)
        return [
            pool[i * _NONCE_SIZE : (i + 1) * _NONCE_SIZE] for i in range(count)
        ]

    def encrypt(self, plaintext: bytes) -> bytes:
        """Encrypt *plaintext* under a fresh nonce."""
        nonce = self._fresh_nonce()
        body = ctr_transform(self._enc, nonce, plaintext)
        tag = cbc_mac(self._mac, nonce + body)
        return nonce + body + tag

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Decrypt and authenticate; raises :class:`DecryptionError` on
        truncated or tampered input."""
        if len(ciphertext) < _NONCE_SIZE + _TAG_SIZE:
            raise DecryptionError("ciphertext too short for nDet_Enc framing")
        nonce = ciphertext[:_NONCE_SIZE]
        body = ciphertext[_NONCE_SIZE:-_TAG_SIZE]
        tag = ciphertext[-_TAG_SIZE:]
        if not hmac.compare_digest(cbc_mac(self._mac, nonce + body), tag):
            raise DecryptionError("nDet_Enc authentication tag mismatch")
        return ctr_transform(self._enc, nonce, body)

    # ------------------------------------------------------------------ #
    # batched interface (protocol hot path)
    # ------------------------------------------------------------------ #
    def encrypt_many(self, plaintexts: list[bytes]) -> list[bytes]:
        """Encrypt a batch in two vectorized passes (CTR, then MAC)."""
        if not plaintexts:
            return []
        nonces = [self._fresh_nonce() for __ in plaintexts]
        bodies = ctr_transform_many(self._enc, nonces, plaintexts)
        tags = cbc_mac_many(
            self._mac,
            [nonce + body for nonce, body in zip(nonces, bodies)],
        )
        return [
            nonce + body + tag
            for nonce, body, tag in zip(nonces, bodies, tags)
        ]

    def decrypt_many(self, ciphertexts: list[bytes]) -> list[bytes]:
        """Authenticate then decrypt a batch in two vectorized passes.

        Raises :class:`DecryptionError` if *any* element is truncated or
        tampered — a batch is one trust decision."""
        if not ciphertexts:
            return []
        nonces, bodies, tags = [], [], []
        for ciphertext in ciphertexts:
            if len(ciphertext) < _NONCE_SIZE + _TAG_SIZE:
                raise DecryptionError("ciphertext too short for nDet_Enc framing")
            nonces.append(ciphertext[:_NONCE_SIZE])
            bodies.append(ciphertext[_NONCE_SIZE:-_TAG_SIZE])
            tags.append(ciphertext[-_TAG_SIZE:])
        expected = cbc_mac_many(
            self._mac,
            [nonce + body for nonce, body in zip(nonces, bodies)],
        )
        valid = True
        for tag, want in zip(tags, expected):
            # constant-time per tag, and no early exit: the comparison
            # work is independent of *where* a forgery sits in the batch
            valid = hmac.compare_digest(tag, want) and valid
        if not valid:
            raise DecryptionError("nDet_Enc authentication tag mismatch")
        return ctr_transform_many(self._enc, nonces, bodies)

    # ------------------------------------------------------------------ #
    # packed-block interface (the block crypto plane)
    # ------------------------------------------------------------------ #
    def keystream_block(
        self, nonces: Sequence[bytes], sizes: Sequence[int]
    ) -> bytes:
        """Precompute the packed CTR keystream for a future
        :meth:`encrypt_block` call with the same *nonces* over messages of
        the given *sizes* — the half of the work that can overlap with
        socket I/O."""
        return keystream_packed(self._enc, nonces, sizes)

    def encrypt_block(
        self,
        payloads: bytes | memoryview,
        offsets: Sequence[int],
        *,
        nonces: Sequence[bytes] | None = None,
        keystream: bytes | None = None,
    ) -> tuple[bytes, tuple[int, ...]]:
        """Encrypt a packed buffer of messages in one pass.

        *payloads* + *offsets* follow the
        :func:`repro.core.codec.encode_packed` convention (``count + 1``
        offsets spanning the buffer).  Returns the packed ciphertext
        buffer and its offsets; each message grows by
        :meth:`ciphertext_overhead` bytes.  Explicit *nonces* (with an
        optional matching precomputed *keystream*) make the output
        reproducible and let worker processes share one entropy draw."""
        count = len(offsets) - 1
        if nonces is None:
            nonces = self.fresh_nonces(count)
        elif len(nonces) != count:
            raise ValueError("one nonce per packed message required")
        bodies = ctr_transform_packed(
            self._enc, nonces, payloads, offsets, keystream=keystream
        )
        view = memoryview(bodies)
        tags = cbc_mac_many(
            self._mac,
            [
                nonces[i] + bytes(view[offsets[i] : offsets[i + 1]])
                for i in range(count)
            ],
        )
        pieces: list[bytes | memoryview] = []
        out_offsets = [0] * (count + 1)
        cursor = 0
        for i in range(count):
            segment = view[offsets[i] : offsets[i + 1]]
            pieces.append(nonces[i])
            pieces.append(segment)
            pieces.append(tags[i])
            cursor += _NONCE_SIZE + len(segment) + _TAG_SIZE
            out_offsets[i + 1] = cursor
        return b"".join(pieces), tuple(out_offsets)

    def decrypt_block(
        self, payloads: bytes | memoryview, offsets: Sequence[int]
    ) -> tuple[bytes, tuple[int, ...]]:
        """Authenticate then decrypt a packed buffer of ciphertexts.

        Returns the packed plaintext buffer and its offsets.  Raises
        :class:`DecryptionError` if *any* message is truncated or
        tampered — the block is one trust decision, and every tag is
        compared (constant-time) before any verdict is returned."""
        count = len(offsets) - 1
        view = memoryview(payloads)
        nonces: list[bytes] = []
        bodies: list[memoryview] = []
        tags: list[bytes] = []
        body_offsets = [0] * (count + 1)
        cursor = 0
        for i in range(count):
            start, end = offsets[i], offsets[i + 1]
            if end - start < _NONCE_SIZE + _TAG_SIZE:
                raise DecryptionError("ciphertext too short for nDet_Enc framing")
            nonces.append(bytes(view[start : start + _NONCE_SIZE]))
            bodies.append(view[start + _NONCE_SIZE : end - _TAG_SIZE])
            tags.append(bytes(view[end - _TAG_SIZE : end]))
            cursor += (end - start) - _NONCE_SIZE - _TAG_SIZE
            body_offsets[i + 1] = cursor
        expected = cbc_mac_many(
            self._mac,
            [nonce + bytes(body) for nonce, body in zip(nonces, bodies)],
        )
        valid = True
        for tag, want in zip(tags, expected):
            valid = hmac.compare_digest(tag, want) and valid
        if not valid:
            raise DecryptionError("nDet_Enc authentication tag mismatch")
        packed_bodies = b"".join(bytes(body) for body in bodies)
        plain = ctr_transform_packed(
            self._enc, nonces, packed_bodies, body_offsets
        )
        return plain, tuple(body_offsets)

    def ciphertext_overhead(self) -> int:
        """Bytes added on top of the plaintext length."""
        return _NONCE_SIZE + _TAG_SIZE
