"""Pure-Python AES-128 block cipher — T-table fast path.

The paper's secure device embeds a crypto-coprocessor implementing AES in
hardware (one 128-bit block costs 167 cycles at 120 MHz, §6.2).  This module
is the software stand-in: a complete, dependency-free AES-128 used by the
deterministic and non-deterministic encryption schemes of
:mod:`repro.crypto.det` and :mod:`repro.crypto.ndet`.

Because every byte a TDS moves is AES ciphertext, this block transform is
the hottest loop of the whole reproduction.  It therefore uses the classic
32-bit **T-table** formulation: SubBytes, ShiftRows and MixColumns collapse
into four 256-entry word tables (plus four inverse tables for decryption),
so one round of one column is four table lookups and four XORs instead of
~40 byte operations.  Key schedules are expanded once and memoized per key
(:data:`_SCHEDULE_CACHE`), which matters because the protocol layer derives
the same subkeys for every tuple it touches.

The slow-but-obvious byte-loop implementation this replaced lives on in
:mod:`repro.crypto.reference`; a randomized property test pins the two to
identical outputs, and the FIPS-197 / NIST SP 800-38A vectors in the test
suite pin both to the standard.

Only the raw block transform lives here; chaining modes are built on top in
:mod:`repro.crypto.modes`.
"""

from __future__ import annotations

from struct import Struct
from typing import Any, Protocol

from repro.exceptions import InvalidKeyError


class CipherEngine(Protocol):
    """The engine surface the chaining modes require.

    Engines *may* additionally expose the bulk methods
    (``ctr_keystream`` / ``ctr_keystream_many`` / ``ctr_keystream_packed``
    / ``cbc_mac_words`` / ``cbc_mac_many``); :mod:`repro.crypto.modes`
    discovers those by duck typing and falls back to per-block loops."""

    def encrypt_block(self, block: bytes) -> bytes: ...

    def decrypt_block(self, block: bytes) -> bytes: ...

try:  # optional vectorized bulk engine; the scalar T-tables are the fallback
    import numpy as _np
except ImportError:  # pragma: no cover - environment without numpy
    _np = None

BLOCK_SIZE = 16
KEY_SIZE = 16
_NUM_ROUNDS = 10

# FIPS-197 substitution box and its inverse.
_SBOX = bytes.fromhex(
    "637c777bf26b6fc53001672bfed7ab76"
    "ca82c97dfa5947f0add4a2af9ca472c0"
    "b7fd9326363ff7cc34a5e5f171d83115"
    "04c723c31896059a071280e2eb27b275"
    "09832c1a1b6e5aa0523bd6b329e32f84"
    "53d100ed20fcb15b6acbbe394a4c58cf"
    "d0efaafb434d338545f9027f503c9fa8"
    "51a3408f929d38f5bcb6da2110fff3d2"
    "cd0c13ec5f974417c4a77e3d645d1973"
    "60814fdc222a908846eeb814de5e0bdb"
    "e0323a0a4906245cc2d3ac629195e479"
    "e7c8376d8dd54ea96c56f4ea657aae08"
    "ba78252e1ca6b4c6e8dd741f4bbd8b8a"
    "703eb5664803f60e613557b986c11d9e"
    "e1f8981169d98e949b1e87e9ce5528df"
    "8ca1890dbfe6426841992d0fb054bb16"
)
_INV_SBOX = bytearray(256)
for _i, _v in enumerate(_SBOX):
    _INV_SBOX[_v] = _i
_INV_SBOX = bytes(_INV_SBOX)

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)


def _xtime(a: int) -> int:
    """Multiply by x (i.e. 2) in GF(2^8) modulo the AES polynomial."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a


def _gmul(a: int, b: int) -> int:
    """Multiply two bytes in GF(2^8)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


# Byte-wise multiplication tables (shared with the reference implementation
# and used to build the T-tables below).
_MUL2 = bytes(_gmul(i, 2) for i in range(256))
_MUL3 = bytes(_gmul(i, 3) for i in range(256))
_MUL9 = bytes(_gmul(i, 9) for i in range(256))
_MUL11 = bytes(_gmul(i, 11) for i in range(256))
_MUL13 = bytes(_gmul(i, 13) for i in range(256))
_MUL14 = bytes(_gmul(i, 14) for i in range(256))

# ---------------------------------------------------------------------- #
# T-tables.  State is four big-endian 32-bit column words; byte (row r,
# column c) of FIPS-197 is bits [24-8r .. 31-8r] of word c.  _TE[k][x] is
# the MixColumns output column contributed by S-box output S[x] sitting in
# row k after ShiftRows; _TD[k][x] is the InvMixColumns column contributed
# by InvS-box output in row k.  One encryption round of one column is then
# four lookups and four XORs.
# ---------------------------------------------------------------------- #


def _build_encrypt_tables() -> tuple[tuple[int, ...], ...]:
    t0, t1, t2, t3 = [], [], [], []
    for x in range(256):
        s = _SBOX[x]
        s2, s3 = _MUL2[s], _MUL3[s]
        t0.append((s2 << 24) | (s << 16) | (s << 8) | s3)
        t1.append((s3 << 24) | (s2 << 16) | (s << 8) | s)
        t2.append((s << 24) | (s3 << 16) | (s2 << 8) | s)
        t3.append((s << 24) | (s << 16) | (s3 << 8) | s2)
    return tuple(t0), tuple(t1), tuple(t2), tuple(t3)


def _build_decrypt_tables() -> tuple[tuple[int, ...], ...]:
    t0, t1, t2, t3 = [], [], [], []
    for x in range(256):
        s = _INV_SBOX[x]
        s9, s11, s13, s14 = _MUL9[s], _MUL11[s], _MUL13[s], _MUL14[s]
        t0.append((s14 << 24) | (s9 << 16) | (s13 << 8) | s11)
        t1.append((s11 << 24) | (s14 << 16) | (s9 << 8) | s13)
        t2.append((s13 << 24) | (s11 << 16) | (s14 << 8) | s9)
        t3.append((s9 << 24) | (s13 << 16) | (s11 << 8) | s14)
    return tuple(t0), tuple(t1), tuple(t2), tuple(t3)


_TE0, _TE1, _TE2, _TE3 = _build_encrypt_tables()
_TD0, _TD1, _TD2, _TD3 = _build_decrypt_tables()

_FOUR_WORDS = Struct(">IIII")

# Vectorized copies of the tables for the optional numpy bulk engine: the
# same T-table lookups, gathered across every block of a message (and
# every message of a batch) at once instead of one block at a time.
#
# The bulk kernel goes one step further than the scalar path and pairs
# adjacent state bytes into 16-bit indices: _NP_TE01[a << 8 | b] is
# TE0[a] ^ TE1[b] (and _NP_TE23 likewise for TE2/TE3), so a round costs
# two 65536-entry gathers per output word instead of four 256-entry ones.
# The pair indices come for free from a uint16 view of the mixed words
# (t_hi & 0xFF00FF00) | (t_lo & 0x00FF00FF) — no shifts or masks per
# lookup.  The view trick depends on host byte order, hence _NP_HI/_NP_LO.
if _np is not None:
    _NP_TE = tuple(_np.array(t, dtype=_np.uint32) for t in (_TE0, _TE1, _TE2, _TE3))
    _NP_SBOX = _np.array(list(_SBOX), dtype=_np.uint32)
    _NP_TE01 = (_NP_TE[0][:, None] ^ _NP_TE[1][None, :]).ravel()
    _NP_TE23 = (_NP_TE[2][:, None] ^ _NP_TE[3][None, :]).ravel()
    _NP_PAIR_IDX = _np.arange(65536, dtype=_np.uint32)
    _NP_SBOX_PAIR = (
        (_NP_SBOX[_NP_PAIR_IDX >> 8] << 8) | _NP_SBOX[_NP_PAIR_IDX & 0xFF]
    )
    _NP_MASK_HI = _np.uint32(0xFF00FF00)
    _NP_MASK_LO = _np.uint32(0x00FF00FF)
    #: which uint16 half of a native uint32 holds its high 16 bits
    _NP_HI = 1 if _np.little_endian else 0
    _NP_LO = 1 - _NP_HI
    #: row permutations of the stacked (4, lanes) state: row j's pair word
    #: mixes state rows (j, j+1), and its TE23 index comes from pair row
    #: j+2 (the ShiftRows geometry expressed on whole rows)
    _NP_ROLL1 = _np.array([1, 2, 3, 0])
    _NP_ROLL2 = _np.array([2, 3, 0, 1])

#: below this many blocks the numpy dispatch overhead beats its gains and
#: the scalar T-table loop wins
_NP_MIN_BLOCKS = 16

#: below this many lanes per call the stacked (4, lanes) round body wins;
#: above it the word-wise body's contiguous ops beat the stacked form's
#: row-permutation copies
_NP_STACK_MAX_LANES = 8192


def expand_key(key: bytes) -> list[bytes]:
    """Expand a 16-byte key into the 11 round keys of AES-128.

    Returns a list of 11 16-byte round keys.  Raises
    :class:`~repro.exceptions.InvalidKeyError` on a wrong-sized key.
    """
    return list(_schedule(key).round_keys)


def _expand_words(key: bytes) -> list[int]:
    """The 44 32-bit words of the AES-128 key schedule."""
    if len(key) != KEY_SIZE:
        raise InvalidKeyError(f"AES-128 key must be {KEY_SIZE} bytes, got {len(key)}")
    words = list(_FOUR_WORDS.unpack(key))
    sbox = _SBOX
    for round_index in range(_NUM_ROUNDS):
        prev = words[-1]
        # RotWord + SubWord + Rcon folded into word arithmetic.
        temp = (
            (sbox[(prev >> 16) & 0xFF] << 24)
            | (sbox[(prev >> 8) & 0xFF] << 16)
            | (sbox[prev & 0xFF] << 8)
            | sbox[prev >> 24]
        ) ^ (_RCON[round_index] << 24)
        for __ in range(4):
            temp ^= words[-4]
            words.append(temp)
            temp = words[-1]
    return words


def _inv_mix_columns_word(word: int) -> int:
    """Apply InvMixColumns to one column word (for the equivalent inverse
    cipher's transformed round keys)."""
    sbox = _SBOX
    return (
        _TD0[sbox[word >> 24]]
        ^ _TD1[sbox[(word >> 16) & 0xFF]]
        ^ _TD2[sbox[(word >> 8) & 0xFF]]
        ^ _TD3[sbox[word & 0xFF]]
    )


class _Schedule:
    """Fully expanded per-key material: encryption words, equivalent
    inverse-cipher decryption words, and the FIPS round-key bytes."""

    __slots__ = ("enc", "dec", "round_keys")

    def __init__(self, key: bytes) -> None:
        words = _expand_words(key)
        self.enc = tuple(words)
        # Equivalent inverse cipher: round keys in reverse round order,
        # with InvMixColumns applied to all but the first and last.
        dec: list[int] = []
        for round_index in range(_NUM_ROUNDS, -1, -1):
            chunk = words[4 * round_index : 4 * round_index + 4]
            if 0 < round_index < _NUM_ROUNDS:
                chunk = [_inv_mix_columns_word(w) for w in chunk]
            dec.extend(chunk)
        self.dec = tuple(dec)
        self.round_keys = [
            _FOUR_WORDS.pack(*words[4 * r : 4 * r + 4])
            for r in range(_NUM_ROUNDS + 1)
        ]


#: Process-wide key-schedule memo: the protocol layer builds ciphers for
#: the same handful of (sub)keys over and over; expanding each schedule
#: once removes that cost from the per-tuple path.  Bounded so adversarial
#: or fuzzing workloads with millions of distinct keys cannot grow it
#: without limit.
_SCHEDULE_CACHE: dict[bytes, _Schedule] = {}
_SCHEDULE_CACHE_MAX = 1024


def _schedule(key: bytes) -> _Schedule:
    key = bytes(key)
    schedule = _SCHEDULE_CACHE.get(key)
    if schedule is None:
        schedule = _Schedule(key)
        if len(_SCHEDULE_CACHE) >= _SCHEDULE_CACHE_MAX:
            _SCHEDULE_CACHE.clear()
        _SCHEDULE_CACHE[key] = schedule
    return schedule


def clear_schedule_cache() -> None:
    """Drop all memoized key schedules (key-rotation hygiene hook)."""
    _SCHEDULE_CACHE.clear()


def evict_schedule(key: bytes) -> None:
    """Forget the schedule of one key (called on key rotation)."""
    _SCHEDULE_CACHE.pop(bytes(key), None)


class AES128:
    """AES-128 block cipher bound to a single key.

    >>> cipher = AES128(bytes(16))
    >>> block = cipher.encrypt_block(bytes(16))
    >>> cipher.decrypt_block(block) == bytes(16)
    True
    """

    __slots__ = ("_enc", "_dec", "_np_rk")

    def __init__(self, key: bytes) -> None:
        schedule = _schedule(key)
        self._enc = schedule.enc
        self._dec = schedule.dec
        self._np_rk = (
            _np.array(schedule.enc, dtype=_np.uint32) if _np is not None else None
        )

    # ------------------------------------------------------------------ #
    # core word-level transforms
    # ------------------------------------------------------------------ #
    def _encrypt_words(
        self, t0: int, t1: int, t2: int, t3: int
    ) -> tuple[int, int, int, int]:
        rk = self._enc
        te0, te1, te2, te3 = _TE0, _TE1, _TE2, _TE3
        t0 ^= rk[0]
        t1 ^= rk[1]
        t2 ^= rk[2]
        t3 ^= rk[3]
        i = 4
        for __ in range(_NUM_ROUNDS - 1):
            s0 = te0[t0 >> 24] ^ te1[(t1 >> 16) & 0xFF] ^ te2[(t2 >> 8) & 0xFF] ^ te3[t3 & 0xFF] ^ rk[i]
            s1 = te0[t1 >> 24] ^ te1[(t2 >> 16) & 0xFF] ^ te2[(t3 >> 8) & 0xFF] ^ te3[t0 & 0xFF] ^ rk[i + 1]
            s2 = te0[t2 >> 24] ^ te1[(t3 >> 16) & 0xFF] ^ te2[(t0 >> 8) & 0xFF] ^ te3[t1 & 0xFF] ^ rk[i + 2]
            s3 = te0[t3 >> 24] ^ te1[(t0 >> 16) & 0xFF] ^ te2[(t1 >> 8) & 0xFF] ^ te3[t2 & 0xFF] ^ rk[i + 3]
            t0, t1, t2, t3 = s0, s1, s2, s3
            i += 4
        sbox = _SBOX
        return (
            ((sbox[t0 >> 24] << 24) | (sbox[(t1 >> 16) & 0xFF] << 16)
             | (sbox[(t2 >> 8) & 0xFF] << 8) | sbox[t3 & 0xFF]) ^ rk[40],
            ((sbox[t1 >> 24] << 24) | (sbox[(t2 >> 16) & 0xFF] << 16)
             | (sbox[(t3 >> 8) & 0xFF] << 8) | sbox[t0 & 0xFF]) ^ rk[41],
            ((sbox[t2 >> 24] << 24) | (sbox[(t3 >> 16) & 0xFF] << 16)
             | (sbox[(t0 >> 8) & 0xFF] << 8) | sbox[t1 & 0xFF]) ^ rk[42],
            ((sbox[t3 >> 24] << 24) | (sbox[(t0 >> 16) & 0xFF] << 16)
             | (sbox[(t1 >> 8) & 0xFF] << 8) | sbox[t2 & 0xFF]) ^ rk[43],
        )

    def _decrypt_words(
        self, t0: int, t1: int, t2: int, t3: int
    ) -> tuple[int, int, int, int]:
        rk = self._dec
        td0, td1, td2, td3 = _TD0, _TD1, _TD2, _TD3
        t0 ^= rk[0]
        t1 ^= rk[1]
        t2 ^= rk[2]
        t3 ^= rk[3]
        i = 4
        for __ in range(_NUM_ROUNDS - 1):
            s0 = td0[t0 >> 24] ^ td1[(t3 >> 16) & 0xFF] ^ td2[(t2 >> 8) & 0xFF] ^ td3[t1 & 0xFF] ^ rk[i]
            s1 = td0[t1 >> 24] ^ td1[(t0 >> 16) & 0xFF] ^ td2[(t3 >> 8) & 0xFF] ^ td3[t2 & 0xFF] ^ rk[i + 1]
            s2 = td0[t2 >> 24] ^ td1[(t1 >> 16) & 0xFF] ^ td2[(t0 >> 8) & 0xFF] ^ td3[t3 & 0xFF] ^ rk[i + 2]
            s3 = td0[t3 >> 24] ^ td1[(t2 >> 16) & 0xFF] ^ td2[(t1 >> 8) & 0xFF] ^ td3[t0 & 0xFF] ^ rk[i + 3]
            t0, t1, t2, t3 = s0, s1, s2, s3
            i += 4
        inv = _INV_SBOX
        return (
            ((inv[t0 >> 24] << 24) | (inv[(t3 >> 16) & 0xFF] << 16)
             | (inv[(t2 >> 8) & 0xFF] << 8) | inv[t1 & 0xFF]) ^ rk[40],
            ((inv[t1 >> 24] << 24) | (inv[(t0 >> 16) & 0xFF] << 16)
             | (inv[(t3 >> 8) & 0xFF] << 8) | inv[t2 & 0xFF]) ^ rk[41],
            ((inv[t2 >> 24] << 24) | (inv[(t1 >> 16) & 0xFF] << 16)
             | (inv[(t0 >> 8) & 0xFF] << 8) | inv[t3 & 0xFF]) ^ rk[42],
            ((inv[t3 >> 24] << 24) | (inv[(t2 >> 16) & 0xFF] << 16)
             | (inv[(t1 >> 8) & 0xFF] << 8) | inv[t0 & 0xFF]) ^ rk[43],
        )

    # ------------------------------------------------------------------ #
    # public block interface
    # ------------------------------------------------------------------ #
    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt exactly one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        return _FOUR_WORDS.pack(*self._encrypt_words(*_FOUR_WORDS.unpack(block)))

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt exactly one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        return _FOUR_WORDS.pack(*self._decrypt_words(*_FOUR_WORDS.unpack(block)))

    # ------------------------------------------------------------------ #
    # bulk interface used by the chaining modes
    # ------------------------------------------------------------------ #
    def ctr_keystream(self, nonce: bytes, num_blocks: int) -> bytes:
        """The CTR keystream for counter blocks ``nonce || 0..num_blocks-1``.

        Generating the whole keystream in one call keeps the per-message
        Python overhead constant instead of per-block (*nonce* is 8 bytes;
        the block counter occupies the remaining 8)."""
        if len(nonce) != 8:
            raise ValueError(f"CTR nonce must be 8 bytes, got {len(nonce)}")
        if _np is not None and num_blocks >= _NP_MIN_BLOCKS:
            return self.ctr_keystream_many([nonce], [num_blocks])[0]
        n0, n1 = (
            int.from_bytes(nonce[:4], "big"),
            int.from_bytes(nonce[4:], "big"),
        )
        out = bytearray(num_blocks * BLOCK_SIZE)
        pack_into = _FOUR_WORDS.pack_into
        encrypt = self._encrypt_words
        for counter in range(num_blocks):
            pack_into(
                out,
                counter * BLOCK_SIZE,
                *encrypt(n0, n1, counter >> 32, counter & 0xFFFFFFFF),
            )
        return bytes(out)

    def ctr_keystream_packed(
        self, nonces: list[bytes], block_counts: list[int]
    ) -> bytes:
        """Concatenated CTR keystreams for a batch of messages.

        Like :meth:`ctr_keystream_many` but the per-message streams come
        back as one flat buffer (message *i* occupies
        ``block_counts[i] * 16`` bytes starting where message *i - 1*
        ended) — the shape the packed block APIs consume, with no
        per-message slicing."""
        if len(nonces) != len(block_counts):
            raise ValueError("one nonce per block count required")
        for nonce in nonces:
            if len(nonce) != 8:
                raise ValueError(f"CTR nonce must be 8 bytes, got {len(nonce)}")
        total_blocks = sum(block_counts)
        if _np is None or total_blocks < _NP_MIN_BLOCKS:
            return b"".join(
                self.ctr_keystream(nonce, count)
                for nonce, count in zip(nonces, block_counts)
            )
        counts = _np.array(block_counts, dtype=_np.int64)
        nonce_words = _np.frombuffer(b"".join(nonces), dtype=">u4").astype(
            _np.uint32
        )
        t0 = _np.repeat(nonce_words[0::2], counts)
        t1 = _np.repeat(nonce_words[1::2], counts)
        # per-message block counters 0..count-1, concatenated
        offsets = _np.repeat(
            _np.cumsum(counts) - counts, counts
        )
        t3 = (_np.arange(total_blocks, dtype=_np.int64) - offsets).astype(
            _np.uint32
        )
        t2 = _np.zeros(total_blocks, dtype=_np.uint32)
        s0, s1, s2, s3 = self._np_encrypt_words(t0, t1, t2, t3)
        out = _np.empty((total_blocks, 4), dtype=_np.uint32)
        out[:, 0] = s0
        out[:, 1] = s1
        out[:, 2] = s2
        out[:, 3] = s3
        if _np.little_endian:  # keystream bytes are big-endian words
            out.byteswap(inplace=True)
        return out.tobytes()

    def ctr_keystream_many(
        self, nonces: list[bytes], block_counts: list[int]
    ) -> list[bytes]:
        """CTR keystreams for a whole batch of messages in one pass.

        All messages share one vectorized AES evaluation over the union of
        their counter blocks — the engine behind ``encrypt_many`` /
        ``decrypt_many`` on the protocol ciphers."""
        flat = self.ctr_keystream_packed(nonces, block_counts)
        streams = []
        cursor = 0
        for count in block_counts:
            end = cursor + count * BLOCK_SIZE
            streams.append(flat[cursor:end])
            cursor = end
        return streams

    def cbc_mac_many(self, messages: list[bytes]) -> list[bytes]:
        """CBC-MAC cores of a batch of block-aligned messages, computed in
        lockstep: step *b* encrypts block *b* of every still-unfinished
        message in one vectorized AES evaluation.  Ragged batches are fine
        (each lane's MAC is captured at its own final block)."""
        for message in messages:
            if len(message) % BLOCK_SIZE:
                raise ValueError("CBC-MAC core needs block-aligned messages")
        counts = [len(message) // BLOCK_SIZE for message in messages]
        if _np is None or len(messages) < 2 or sum(counts) < _NP_MIN_BLOCKS:
            return [self.cbc_mac_words(message) for message in messages]
        lanes = len(messages)
        max_blocks = max(counts)
        uniform = min(counts) == max_blocks
        if uniform:
            # Equal-length batch (the packed block APIs): one frombuffer
            # over the joined messages, and no per-step done-lane scan.
            words = (
                _np.frombuffer(b"".join(messages), dtype=">u4")
                .astype(_np.uint32)
                .reshape(lanes, 4 * max_blocks)
            )
        else:
            words = _np.zeros((lanes, 4 * max_blocks), dtype=_np.uint32)
            for lane, message in enumerate(messages):
                w = _np.frombuffer(message, dtype=">u4").astype(_np.uint32)
                words[lane, : w.size] = w
        t0 = _np.zeros(lanes, dtype=_np.uint32)
        t1 = t0.copy()
        t2 = t0.copy()
        t3 = t0.copy()
        macs: list[bytes | None] = [None] * lanes
        for block_index in range(max_blocks):
            base = 4 * block_index
            t0, t1, t2, t3 = self._np_encrypt_words(
                t0 ^ words[:, base],
                t1 ^ words[:, base + 1],
                t2 ^ words[:, base + 2],
                t3 ^ words[:, base + 3],
            )
            if uniform:
                continue
            done = [
                lane for lane, count in enumerate(counts)
                if count == block_index + 1
            ]
            if done:
                packed = _np.stack(
                    (t0[done], t1[done], t2[done], t3[done]), axis=1
                ).astype(">u4").tobytes()
                for i, lane in enumerate(done):
                    macs[lane] = packed[16 * i : 16 * i + 16]
        if uniform:
            out = _np.empty((lanes, 4), dtype=_np.uint32)
            out[:, 0] = t0
            out[:, 1] = t1
            out[:, 2] = t2
            out[:, 3] = t3
            if _np.little_endian:
                out.byteswap(inplace=True)
            flat = out.tobytes()
            return [flat[16 * i : 16 * i + 16] for i in range(lanes)]
        # every non-empty lane captured exactly once; an empty message's
        # MAC core is the zero IV itself
        return [mac if mac is not None else bytes(BLOCK_SIZE) for mac in macs]

    def _np_encrypt_words(self, t0: Any, t1: Any, t2: Any, t3: Any) -> Any:
        """Vectorized :meth:`_encrypt_words` over arrays of column words.

        Two bodies, same math: below ``_NP_STACK_MAX_LANES`` the four
        state words are stacked into one (4, lanes) array so each round
        costs ~8 numpy dispatches instead of ~30 — this is the CBC-MAC
        lockstep regime, where 66 sequential steps over a few hundred
        lanes are dominated by per-op dispatch overhead, not gathers.
        Large batches (the one-shot CTR keystream of a whole block) stay
        on the word-wise body, which is faster once arrays are big enough
        that the fancy row indexing of the stacked form costs real
        memory traffic."""
        if t0.shape[0] < _NP_STACK_MAX_LANES:
            return self._np_encrypt_words_stacked(t0, t1, t2, t3)
        return self._np_encrypt_words_wide(t0, t1, t2, t3)

    def _np_encrypt_words_stacked(
        self, t0: Any, t1: Any, t2: Any, t3: Any
    ) -> Any:
        """The dispatch-lean body: one (4, lanes) state array per round."""
        rk = self._np_rk
        te01, te23 = _NP_TE01, _NP_TE23
        mask_hi, mask_lo = _NP_MASK_HI, _NP_MASK_LO
        hi, lo = _NP_HI, _NP_LO
        roll1, roll2 = _NP_ROLL1, _NP_ROLL2
        n = t0.shape[0]
        t = _np.empty((4, n), dtype=_np.uint32)
        t[0] = t0 ^ rk[0]
        t[1] = t1 ^ rk[1]
        t[2] = t2 ^ rk[2]
        t[3] = t3 ^ rk[3]
        i = 4
        for __ in range(_NUM_ROUNDS - 1):
            pairs = t & mask_hi
            pairs |= t[roll1] & mask_lo
            halves = pairs.view(_np.uint16).reshape(4, n, 2)
            t = te01[halves[:, :, hi]]
            t ^= te23[halves[roll2][:, :, lo]]
            t ^= rk[i : i + 4, None]
            i += 4
        sp = _NP_SBOX_PAIR
        pairs = t & mask_hi
        pairs |= t[roll1] & mask_lo
        halves = pairs.view(_np.uint16).reshape(4, n, 2)
        s = sp[halves[:, :, hi]] << 16
        s |= sp[halves[roll2][:, :, lo]]
        s ^= rk[40:44, None]
        return s[0], s[1], s[2], s[3]

    def _np_encrypt_words_wide(
        self, t0: Any, t1: Any, t2: Any, t3: Any
    ) -> Any:
        """The gather-lean body, word by word.

        Uses the paired 16-bit T-tables: each round mixes the state into
        four pair-index arrays whose uint16 halves address _NP_TE01 /
        _NP_TE23 directly.  The word ``(t_hi & 0xFF00FF00) |
        (t_lo & 0x00FF00FF)`` carries exactly the two byte pairs
        (t_hi.b3, t_lo.b2) and (t_hi.b1, t_lo.b0) that the round function
        consumes, one in each 16-bit half."""
        rk = self._np_rk
        te01, te23 = _NP_TE01, _NP_TE23
        mask_hi, mask_lo = _NP_MASK_HI, _NP_MASK_LO
        hi, lo = _NP_HI, _NP_LO
        u16 = _np.uint16
        t0 = (t0 ^ rk[0]).astype(_np.uint32, copy=False)
        t1 = (t1 ^ rk[1]).astype(_np.uint32, copy=False)
        t2 = (t2 ^ rk[2]).astype(_np.uint32, copy=False)
        t3 = (t3 ^ rk[3]).astype(_np.uint32, copy=False)
        i = 4
        for __ in range(_NUM_ROUNDS - 1):
            pa = ((t0 & mask_hi) | (t1 & mask_lo)).view(u16).reshape(-1, 2)
            pb = ((t1 & mask_hi) | (t2 & mask_lo)).view(u16).reshape(-1, 2)
            pc = ((t2 & mask_hi) | (t3 & mask_lo)).view(u16).reshape(-1, 2)
            pd = ((t3 & mask_hi) | (t0 & mask_lo)).view(u16).reshape(-1, 2)
            t0 = te01[pa[:, hi]]
            t0 ^= te23[pc[:, lo]]
            t0 ^= rk[i]
            t1 = te01[pb[:, hi]]
            t1 ^= te23[pd[:, lo]]
            t1 ^= rk[i + 1]
            t2 = te01[pc[:, hi]]
            t2 ^= te23[pa[:, lo]]
            t2 ^= rk[i + 2]
            t3 = te01[pd[:, hi]]
            t3 ^= te23[pb[:, lo]]
            t3 ^= rk[i + 3]
            i += 4
        sp = _NP_SBOX_PAIR
        pa = ((t0 & mask_hi) | (t1 & mask_lo)).view(u16).reshape(-1, 2)
        pb = ((t1 & mask_hi) | (t2 & mask_lo)).view(u16).reshape(-1, 2)
        pc = ((t2 & mask_hi) | (t3 & mask_lo)).view(u16).reshape(-1, 2)
        pd = ((t3 & mask_hi) | (t0 & mask_lo)).view(u16).reshape(-1, 2)
        s0 = sp[pa[:, hi]] << 16
        s0 |= sp[pc[:, lo]]
        s0 ^= rk[40]
        s1 = sp[pb[:, hi]] << 16
        s1 |= sp[pd[:, lo]]
        s1 ^= rk[41]
        s2 = sp[pc[:, hi]] << 16
        s2 |= sp[pa[:, lo]]
        s2 ^= rk[42]
        s3 = sp[pd[:, hi]] << 16
        s3 |= sp[pb[:, lo]]
        s3 ^= rk[43]
        return s0, s1, s2, s3

    def cbc_mac_words(self, message: bytes) -> bytes:
        """CBC-MAC core over a block-aligned *message* (zero IV)."""
        if len(message) % BLOCK_SIZE:
            raise ValueError("CBC-MAC core needs a block-aligned message")
        unpack_from = _FOUR_WORDS.unpack_from
        encrypt = self._encrypt_words
        m0 = m1 = m2 = m3 = 0
        for offset in range(0, len(message), BLOCK_SIZE):
            b0, b1, b2, b3 = unpack_from(message, offset)
            m0, m1, m2, m3 = encrypt(m0 ^ b0, m1 ^ b1, m2 ^ b2, m3 ^ b3)
        return _FOUR_WORDS.pack(m0, m1, m2, m3)
