"""Pure-Python AES-128 block cipher.

The paper's secure device embeds a crypto-coprocessor implementing AES in
hardware (one 128-bit block costs 167 cycles at 120 MHz, §6.2).  This module
is the software stand-in: a complete, dependency-free AES-128 used by the
deterministic and non-deterministic encryption schemes of
:mod:`repro.crypto.det` and :mod:`repro.crypto.ndet`.

Only the raw block transform lives here; chaining modes are built on top in
:mod:`repro.crypto.modes`.  The implementation follows FIPS-197 and is
validated against the official test vectors in the test suite.
"""

from __future__ import annotations

from repro.exceptions import InvalidKeyError

BLOCK_SIZE = 16
KEY_SIZE = 16
_NUM_ROUNDS = 10

# FIPS-197 substitution box and its inverse.
_SBOX = bytes.fromhex(
    "637c777bf26b6fc53001672bfed7ab76"
    "ca82c97dfa5947f0add4a2af9ca472c0"
    "b7fd9326363ff7cc34a5e5f171d83115"
    "04c723c31896059a071280e2eb27b275"
    "09832c1a1b6e5aa0523bd6b329e32f84"
    "53d100ed20fcb15b6acbbe394a4c58cf"
    "d0efaafb434d338545f9027f503c9fa8"
    "51a3408f929d38f5bcb6da2110fff3d2"
    "cd0c13ec5f974417c4a77e3d645d1973"
    "60814fdc222a908846eeb814de5e0bdb"
    "e0323a0a4906245cc2d3ac629195e479"
    "e7c8376d8dd54ea96c56f4ea657aae08"
    "ba78252e1ca6b4c6e8dd741f4bbd8b8a"
    "703eb5664803f60e613557b986c11d9e"
    "e1f8981169d98e949b1e87e9ce5528df"
    "8ca1890dbfe6426841992d0fb054bb16"
)
_INV_SBOX = bytes(256)
_INV_SBOX = bytearray(256)
for _i, _v in enumerate(_SBOX):
    _INV_SBOX[_v] = _i
_INV_SBOX = bytes(_INV_SBOX)

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)


def _xtime(a: int) -> int:
    """Multiply by x (i.e. 2) in GF(2^8) modulo the AES polynomial."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a


def _gmul(a: int, b: int) -> int:
    """Multiply two bytes in GF(2^8)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


# Precomputed multiplication tables for MixColumns / InvMixColumns.
_MUL2 = bytes(_gmul(i, 2) for i in range(256))
_MUL3 = bytes(_gmul(i, 3) for i in range(256))
_MUL9 = bytes(_gmul(i, 9) for i in range(256))
_MUL11 = bytes(_gmul(i, 11) for i in range(256))
_MUL13 = bytes(_gmul(i, 13) for i in range(256))
_MUL14 = bytes(_gmul(i, 14) for i in range(256))


def expand_key(key: bytes) -> list[bytes]:
    """Expand a 16-byte key into the 11 round keys of AES-128.

    Returns a list of 11 16-byte round keys.  Raises
    :class:`~repro.exceptions.InvalidKeyError` on a wrong-sized key.
    """
    if len(key) != KEY_SIZE:
        raise InvalidKeyError(f"AES-128 key must be {KEY_SIZE} bytes, got {len(key)}")
    words = [key[i : i + 4] for i in range(0, 16, 4)]
    for round_index in range(_NUM_ROUNDS):
        prev = words[-1]
        # RotWord + SubWord + Rcon for the first word of each round.
        rotated = prev[1:] + prev[:1]
        substituted = bytes(_SBOX[b] for b in rotated)
        head = bytes(
            (substituted[j] ^ words[-4][j] ^ (_RCON[round_index] if j == 0 else 0))
            for j in range(4)
        )
        words.append(head)
        for __ in range(3):
            prev = words[-1]
            words.append(bytes(prev[j] ^ words[-4][j] for j in range(4)))
    return [b"".join(words[4 * r : 4 * r + 4]) for r in range(_NUM_ROUNDS + 1)]


def _add_round_key(state: bytearray, round_key: bytes) -> None:
    for i in range(16):
        state[i] ^= round_key[i]


def _sub_bytes(state: bytearray) -> None:
    for i in range(16):
        state[i] = _SBOX[state[i]]


def _inv_sub_bytes(state: bytearray) -> None:
    for i in range(16):
        state[i] = _INV_SBOX[state[i]]


# State is stored column-major as in FIPS-197: byte (row r, column c) lives
# at index 4*c + r.
def _shift_rows(state: bytearray) -> None:
    s = state
    s[1], s[5], s[9], s[13] = s[5], s[9], s[13], s[1]
    s[2], s[6], s[10], s[14] = s[10], s[14], s[2], s[6]
    s[3], s[7], s[11], s[15] = s[15], s[3], s[7], s[11]


def _inv_shift_rows(state: bytearray) -> None:
    s = state
    s[5], s[9], s[13], s[1] = s[1], s[5], s[9], s[13]
    s[10], s[14], s[2], s[6] = s[2], s[6], s[10], s[14]
    s[15], s[3], s[7], s[11] = s[3], s[7], s[11], s[15]


def _mix_columns(state: bytearray) -> None:
    for c in range(0, 16, 4):
        a0, a1, a2, a3 = state[c], state[c + 1], state[c + 2], state[c + 3]
        state[c] = _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3
        state[c + 1] = a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3
        state[c + 2] = a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3]
        state[c + 3] = _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3]


def _inv_mix_columns(state: bytearray) -> None:
    for c in range(0, 16, 4):
        a0, a1, a2, a3 = state[c], state[c + 1], state[c + 2], state[c + 3]
        state[c] = _MUL14[a0] ^ _MUL11[a1] ^ _MUL13[a2] ^ _MUL9[a3]
        state[c + 1] = _MUL9[a0] ^ _MUL14[a1] ^ _MUL11[a2] ^ _MUL13[a3]
        state[c + 2] = _MUL13[a0] ^ _MUL9[a1] ^ _MUL14[a2] ^ _MUL11[a3]
        state[c + 3] = _MUL11[a0] ^ _MUL13[a1] ^ _MUL9[a2] ^ _MUL14[a3]


class AES128:
    """AES-128 block cipher bound to a single key.

    >>> cipher = AES128(bytes(16))
    >>> block = cipher.encrypt_block(bytes(16))
    >>> cipher.decrypt_block(block) == bytes(16)
    True
    """

    def __init__(self, key: bytes) -> None:
        self._round_keys = expand_key(key)

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt exactly one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = bytearray(block)
        _add_round_key(state, self._round_keys[0])
        for round_index in range(1, _NUM_ROUNDS):
            _sub_bytes(state)
            _shift_rows(state)
            _mix_columns(state)
            _add_round_key(state, self._round_keys[round_index])
        _sub_bytes(state)
        _shift_rows(state)
        _add_round_key(state, self._round_keys[_NUM_ROUNDS])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt exactly one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = bytearray(block)
        _add_round_key(state, self._round_keys[_NUM_ROUNDS])
        for round_index in range(_NUM_ROUNDS - 1, 0, -1):
            _inv_shift_rows(state)
            _inv_sub_bytes(state)
            _add_round_key(state, self._round_keys[round_index])
            _inv_mix_columns(state)
        _inv_shift_rows(state)
        _inv_sub_bytes(state)
        _add_round_key(state, self._round_keys[0])
        return bytes(state)
