"""Keyed hashing for histogram bucket identifiers.

ED_Hist (§4.4) identifies each equi-depth bucket by "a hash value giving no
information about the position of the bucket elements in the domain".  The
paper notes that ``h(bucketId)`` plays the same role as
``Det_Enc(bucketId)`` but is cheaper for the TDS to compute.

:class:`BucketHasher` is a keyed SHA-256 (HMAC-like) truncated to 16 bytes,
keyed by k2 so the SSI cannot brute-force the (small) bucket-id domain.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.crypto.keys import KEY_SIZE, derive_subkey
from repro.exceptions import InvalidKeyError

DIGEST_SIZE = 16


class BucketHasher:
    """Keyed hash mapping bucket identifiers to opaque 16-byte tags.

    >>> hasher = BucketHasher(bytes(16))
    >>> hasher.hash_bucket(3) == hasher.hash_bucket(3)
    True
    >>> hasher.hash_bucket(3) != hasher.hash_bucket(4)
    True
    """

    def __init__(self, key: bytes) -> None:
        if len(key) != KEY_SIZE:
            raise InvalidKeyError(f"hash key must be {KEY_SIZE} bytes, got {len(key)}")
        self._key = derive_subkey(key, b"bucket-hash")

    def hash_bucket(self, bucket_id: int) -> bytes:
        """Return the opaque tag of *bucket_id*."""
        payload = bucket_id.to_bytes(8, "big", signed=True)
        return hmac.new(self._key, payload, hashlib.sha256).digest()[:DIGEST_SIZE]

    def hash_bytes(self, payload: bytes) -> bytes:
        """Keyed hash of an arbitrary byte string (used for string-valued
        bucket labels)."""
        return hmac.new(self._key, payload, hashlib.sha256).digest()[:DIGEST_SIZE]
