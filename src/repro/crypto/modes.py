"""Chaining modes built on the AES-128 block transform.

Two modes are provided:

* :func:`ctr_transform` — counter mode, the engine behind the
  non-deterministic scheme ``nDet_Enc`` (a fresh random nonce per message
  makes every encryption of the same plaintext different).
* :func:`cbc_mac` — a CBC-MAC used as the synthetic-IV derivation of the
  deterministic scheme ``Det_Enc`` (same plaintext, same key → same
  ciphertext, which is exactly the property the noise-based protocols rely
  on for SSI-side grouping).

Padding helpers implement PKCS#7 so arbitrary-length tuples round-trip.
"""

from __future__ import annotations

from repro.crypto.aes import AES128, BLOCK_SIZE
from repro.exceptions import DecryptionError


def pkcs7_pad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Pad *data* to a multiple of *block_size* with PKCS#7 padding."""
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len]) * pad_len


def pkcs7_unpad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Remove PKCS#7 padding, raising :class:`DecryptionError` if invalid."""
    if not data or len(data) % block_size != 0:
        raise DecryptionError("padded data length is not a multiple of the block size")
    pad_len = data[-1]
    if pad_len < 1 or pad_len > block_size:
        raise DecryptionError("invalid padding length byte")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise DecryptionError("padding bytes are inconsistent")
    return data[:-pad_len]


def _counter_block(nonce: bytes, counter: int) -> bytes:
    """Build the 16-byte counter block: 8-byte nonce || 8-byte counter."""
    return nonce + counter.to_bytes(8, "big")


def ctr_transform(cipher: AES128, nonce: bytes, data: bytes) -> bytes:
    """Encrypt or decrypt *data* in CTR mode (the operation is symmetric).

    *nonce* must be exactly 8 bytes; the remaining 8 bytes of the counter
    block carry a big-endian block counter.
    """
    if len(nonce) != 8:
        raise ValueError(f"CTR nonce must be 8 bytes, got {len(nonce)}")
    out = bytearray(len(data))
    for block_index in range((len(data) + BLOCK_SIZE - 1) // BLOCK_SIZE):
        keystream = cipher.encrypt_block(_counter_block(nonce, block_index))
        offset = block_index * BLOCK_SIZE
        chunk = data[offset : offset + BLOCK_SIZE]
        for i, byte in enumerate(chunk):
            out[offset + i] = byte ^ keystream[i]
    return bytes(out)


def cbc_mac(cipher: AES128, data: bytes) -> bytes:
    """Compute a CBC-MAC over *data* (length-prefixed to avoid extension
    ambiguities between messages of different lengths)."""
    message = len(data).to_bytes(8, "big") + data
    message = pkcs7_pad(message)
    mac = bytes(BLOCK_SIZE)
    for offset in range(0, len(message), BLOCK_SIZE):
        block = bytes(
            message[offset + i] ^ mac[i] for i in range(BLOCK_SIZE)
        )
        mac = cipher.encrypt_block(block)
    return mac
