"""Chaining modes built on the AES-128 block transform.

Two modes are provided:

* :func:`ctr_transform` — counter mode, the engine behind the
  non-deterministic scheme ``nDet_Enc`` (a fresh random nonce per message
  makes every encryption of the same plaintext different);
* :func:`cbc_mac` — a CBC-MAC used as the synthetic-IV derivation of the
  deterministic scheme ``Det_Enc`` (same plaintext, same key → same
  ciphertext, which is exactly the property the noise-based protocols rely
  on for SSI-side grouping).

Both are built for throughput: the whole keystream of a message is
generated in one call and XORed in bulk via ``int.from_bytes`` /
``int.to_bytes`` (no per-byte Python loops), and the ``*_many`` variants
hand an entire batch of messages to the cipher at once so the vectorized
engine in :mod:`repro.crypto.aes` can process every block of every message
in one pass.  The seed's per-byte loops survive in
:mod:`repro.crypto.reference` as the benchmark baseline.

Padding helpers implement PKCS#7 so arbitrary-length tuples round-trip.
"""

from __future__ import annotations

from repro.crypto.aes import AES128, BLOCK_SIZE
from repro.exceptions import DecryptionError


def pkcs7_pad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Pad *data* to a multiple of *block_size* with PKCS#7 padding."""
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len]) * pad_len


def pkcs7_unpad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Remove PKCS#7 padding, raising :class:`DecryptionError` if invalid."""
    if not data or len(data) % block_size != 0:
        raise DecryptionError("padded data length is not a multiple of the block size")
    pad_len = data[-1]
    if pad_len < 1 or pad_len > block_size:
        raise DecryptionError("invalid padding length byte")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise DecryptionError("padding bytes are inconsistent")
    return data[:-pad_len]


def _counter_block(nonce: bytes, counter: int) -> bytes:
    """Build the 16-byte counter block: 8-byte nonce || 8-byte counter."""
    return nonce + counter.to_bytes(8, "big")


def _xor_bulk(data: bytes, keystream: bytes) -> bytes:
    """XOR *data* against the (at least as long) *keystream* in one shot."""
    n = len(data)
    if n == 0:
        return b""
    return (
        int.from_bytes(data, "big") ^ int.from_bytes(keystream[:n], "big")
    ).to_bytes(n, "big")


def _keystream(cipher: AES128, nonce: bytes, num_blocks: int) -> bytes:
    """Whole-message keystream; falls back to per-block ECB for foreign
    cipher objects that only expose ``encrypt_block`` (e.g. the reference
    implementation)."""
    generate = getattr(cipher, "ctr_keystream", None)
    if generate is not None:
        return generate(nonce, num_blocks)
    return b"".join(
        cipher.encrypt_block(_counter_block(nonce, counter))
        for counter in range(num_blocks)
    )


def ctr_transform(cipher: AES128, nonce: bytes, data: bytes) -> bytes:
    """Encrypt or decrypt *data* in CTR mode (the operation is symmetric).

    *nonce* must be exactly 8 bytes; the remaining 8 bytes of the counter
    block carry a big-endian block counter.
    """
    if len(nonce) != 8:
        raise ValueError(f"CTR nonce must be 8 bytes, got {len(nonce)}")
    num_blocks = (len(data) + BLOCK_SIZE - 1) // BLOCK_SIZE
    return _xor_bulk(data, _keystream(cipher, nonce, num_blocks))


def ctr_transform_many(
    cipher: AES128, nonces: list[bytes], messages: list[bytes]
) -> list[bytes]:
    """CTR-transform a batch of messages in one vectorized keystream pass."""
    if len(nonces) != len(messages):
        raise ValueError("one nonce per message required")
    block_counts = [
        (len(message) + BLOCK_SIZE - 1) // BLOCK_SIZE for message in messages
    ]
    generate_many = getattr(cipher, "ctr_keystream_many", None)
    if generate_many is not None:
        streams = generate_many(nonces, block_counts)
    else:
        streams = [
            _keystream(cipher, nonce, count)
            for nonce, count in zip(nonces, block_counts)
        ]
    return [
        _xor_bulk(message, stream)
        for message, stream in zip(messages, streams)
    ]


def _mac_message(data: bytes) -> bytes:
    """Length-prefix then pad: the framing under every CBC-MAC."""
    return pkcs7_pad(len(data).to_bytes(8, "big") + data)


def cbc_mac(cipher: AES128, data: bytes) -> bytes:
    """Compute a CBC-MAC over *data* (length-prefixed to avoid extension
    ambiguities between messages of different lengths)."""
    message = _mac_message(data)
    core = getattr(cipher, "cbc_mac_words", None)
    if core is not None:
        return core(message)
    mac = bytes(BLOCK_SIZE)
    for offset in range(0, len(message), BLOCK_SIZE):
        block = _xor_bulk(message[offset : offset + BLOCK_SIZE], mac)
        mac = cipher.encrypt_block(block)
    return mac


def cbc_mac_many(cipher: AES128, datas: list[bytes]) -> list[bytes]:
    """CBC-MACs of a batch of messages, vectorized across the batch."""
    messages = [_mac_message(data) for data in datas]
    core_many = getattr(cipher, "cbc_mac_many", None)
    if core_many is not None:
        return core_many(messages)
    return [cbc_mac(cipher, data) for data in datas]
