"""Chaining modes built on the AES-128 block transform.

Two modes are provided:

* :func:`ctr_transform` — counter mode, the engine behind the
  non-deterministic scheme ``nDet_Enc`` (a fresh random nonce per message
  makes every encryption of the same plaintext different);
* :func:`cbc_mac` — a CBC-MAC used as the synthetic-IV derivation of the
  deterministic scheme ``Det_Enc`` (same plaintext, same key → same
  ciphertext, which is exactly the property the noise-based protocols rely
  on for SSI-side grouping).

Both are built for throughput: the whole keystream of a message is
generated in one call and XORed in bulk via ``int.from_bytes`` /
``int.to_bytes`` (no per-byte Python loops), and the ``*_many`` variants
hand an entire batch of messages to the cipher at once so the vectorized
engine in :mod:`repro.crypto.aes` can process every block of every message
in one pass.  The seed's per-byte loops survive in
:mod:`repro.crypto.reference` as the benchmark baseline.

Padding helpers implement PKCS#7 so arbitrary-length tuples round-trip.
"""

from __future__ import annotations

from typing import Sequence

from repro.crypto.aes import BLOCK_SIZE, CipherEngine
from repro.exceptions import DecryptionError

try:  # vectorized packed-buffer XOR; per-message slices are the fallback
    import numpy as _np
except ImportError:  # pragma: no cover - environment without numpy
    _np = None


def pkcs7_pad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Pad *data* to a multiple of *block_size* with PKCS#7 padding."""
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len]) * pad_len


def pkcs7_unpad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Remove PKCS#7 padding, raising :class:`DecryptionError` if invalid."""
    if not data or len(data) % block_size != 0:
        raise DecryptionError("padded data length is not a multiple of the block size")
    pad_len = data[-1]
    if pad_len < 1 or pad_len > block_size:
        raise DecryptionError("invalid padding length byte")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise DecryptionError("padding bytes are inconsistent")
    return data[:-pad_len]


def _counter_block(nonce: bytes, counter: int) -> bytes:
    """Build the 16-byte counter block: 8-byte nonce || 8-byte counter."""
    return nonce + counter.to_bytes(8, "big")


def _xor_bulk(data: bytes, keystream: bytes) -> bytes:
    """XOR *data* against the (at least as long) *keystream* in one shot."""
    n = len(data)
    if n == 0:
        return b""
    return (
        int.from_bytes(data, "big") ^ int.from_bytes(keystream[:n], "big")
    ).to_bytes(n, "big")


def _keystream(cipher: CipherEngine, nonce: bytes, num_blocks: int) -> bytes:
    """Whole-message keystream; falls back to per-block ECB for foreign
    cipher objects that only expose ``encrypt_block`` (e.g. the reference
    implementation)."""
    generate = getattr(cipher, "ctr_keystream", None)
    if generate is not None:
        return generate(nonce, num_blocks)
    return b"".join(
        cipher.encrypt_block(_counter_block(nonce, counter))
        for counter in range(num_blocks)
    )


def ctr_transform(cipher: CipherEngine, nonce: bytes, data: bytes) -> bytes:
    """Encrypt or decrypt *data* in CTR mode (the operation is symmetric).

    *nonce* must be exactly 8 bytes; the remaining 8 bytes of the counter
    block carry a big-endian block counter.
    """
    if len(nonce) != 8:
        raise ValueError(f"CTR nonce must be 8 bytes, got {len(nonce)}")
    num_blocks = (len(data) + BLOCK_SIZE - 1) // BLOCK_SIZE
    return _xor_bulk(data, _keystream(cipher, nonce, num_blocks))


def ctr_transform_many(
    cipher: CipherEngine, nonces: list[bytes], messages: list[bytes]
) -> list[bytes]:
    """CTR-transform a batch of messages in one vectorized keystream pass."""
    if len(nonces) != len(messages):
        raise ValueError("one nonce per message required")
    block_counts = [
        (len(message) + BLOCK_SIZE - 1) // BLOCK_SIZE for message in messages
    ]
    generate_many = getattr(cipher, "ctr_keystream_many", None)
    if generate_many is not None:
        streams = generate_many(nonces, block_counts)
    else:
        streams = [
            _keystream(cipher, nonce, count)
            for nonce, count in zip(nonces, block_counts)
        ]
    return [
        _xor_bulk(message, stream)
        for message, stream in zip(messages, streams)
    ]


def _mac_message(data: bytes) -> bytes:
    """Length-prefix then pad: the framing under every CBC-MAC."""
    return pkcs7_pad(len(data).to_bytes(8, "big") + data)


def cbc_mac(cipher: CipherEngine, data: bytes) -> bytes:
    """Compute a CBC-MAC over *data* (length-prefixed to avoid extension
    ambiguities between messages of different lengths)."""
    message = _mac_message(data)
    core = getattr(cipher, "cbc_mac_words", None)
    if core is not None:
        return core(message)
    mac = bytes(BLOCK_SIZE)
    for offset in range(0, len(message), BLOCK_SIZE):
        block = _xor_bulk(message[offset : offset + BLOCK_SIZE], mac)
        mac = cipher.encrypt_block(block)
    return mac


def cbc_mac_many(cipher: CipherEngine, datas: list[bytes]) -> list[bytes]:
    """CBC-MACs of a batch of messages, vectorized across the batch."""
    messages = [_mac_message(data) for data in datas]
    core_many = getattr(cipher, "cbc_mac_many", None)
    if core_many is not None:
        return core_many(messages)
    return [cbc_mac(cipher, data) for data in datas]


# ---------------------------------------------------------------------- #
# packed-buffer interface (the block crypto plane)
# ---------------------------------------------------------------------- #


def block_counts_for_sizes(sizes: Sequence[int]) -> list[int]:
    """CTR block counts covering messages of the given byte *sizes*."""
    return [(size + BLOCK_SIZE - 1) // BLOCK_SIZE for size in sizes]


def keystream_packed(
    cipher: CipherEngine, nonces: Sequence[bytes], sizes: Sequence[int]
) -> bytes:
    """One flat CTR keystream buffer covering a batch of messages.

    Message *i*'s keystream occupies ``block_counts[i] * 16`` bytes
    starting where message *i - 1*'s ended (block-aligned, so a message's
    stream is longer than the message unless its size is a multiple of
    16).  This is the precomputable half of :func:`ctr_transform_packed`:
    a worker can generate it ahead of time — overlapped with socket I/O —
    and hand it in via the ``keystream`` parameter."""
    if len(nonces) != len(sizes):
        raise ValueError("one nonce per message size required")
    counts = block_counts_for_sizes(sizes)
    generate_packed = getattr(cipher, "ctr_keystream_packed", None)
    if generate_packed is not None:
        return generate_packed(list(nonces), counts)
    return b"".join(
        _keystream(cipher, nonce, count)
        for nonce, count in zip(nonces, counts)
    )


def ctr_transform_packed(
    cipher: CipherEngine,
    nonces: Sequence[bytes],
    buffer: bytes | memoryview,
    offsets: Sequence[int],
    *,
    keystream: bytes | None = None,
) -> bytes:
    """CTR-transform messages packed in one buffer, returning a packed
    buffer of the same shape (CTR is length-preserving).

    ``offsets`` has one entry per message boundary (``len(messages) + 1``
    entries, first 0, last ``len(buffer)``) — the
    :func:`repro.core.codec.encode_packed` convention.  A precomputed
    *keystream* (from :func:`keystream_packed` with the same nonces and
    sizes) skips the AES pass entirely."""
    count = len(offsets) - 1
    if count < 0:
        raise ValueError("offsets must have at least one entry")
    if len(nonces) != count:
        raise ValueError("one nonce per packed message required")
    for nonce in nonces:
        if len(nonce) != 8:
            raise ValueError(f"CTR nonce must be 8 bytes, got {len(nonce)}")
    view = memoryview(buffer)
    if offsets[0] != 0 or offsets[-1] != len(view):
        raise ValueError("offsets must span the packed buffer exactly")
    sizes = [offsets[i + 1] - offsets[i] for i in range(count)]
    if any(size < 0 for size in sizes):
        raise ValueError("offsets must be non-decreasing")
    if keystream is None:
        keystream = keystream_packed(cipher, nonces, sizes)
    if _np is not None and len(view) >= 512:
        data = _np.frombuffer(view, dtype=_np.uint8)
        stream = _np.frombuffer(keystream, dtype=_np.uint8)
        if len(keystream) == len(view):
            # Every message is block-aligned, so the packed keystream
            # lines up byte-for-byte with the packed data: one flat XOR,
            # no gather.
            return (data ^ stream).tobytes()
        # Per-byte keystream positions: message i's data byte j maps to
        # keystream byte (16 * cum_blocks[i]) + (j - offsets[i]).
        counts = _np.array(block_counts_for_sizes(sizes), dtype=_np.int64)
        sizes_arr = _np.array(sizes, dtype=_np.int64)
        ks_starts = (_np.cumsum(counts) - counts) * BLOCK_SIZE
        msg_starts = _np.array(offsets[:-1], dtype=_np.int64)
        positions = (
            _np.repeat(ks_starts - msg_starts, sizes_arr)
            + _np.arange(len(view), dtype=_np.int64)
        ).astype(_np.intp, copy=False)
        return (data ^ stream[positions]).tobytes()
    pieces = []
    cursor = 0
    for i in range(count):
        segment = bytes(view[offsets[i] : offsets[i + 1]])
        span = len(segment) + (-len(segment) % BLOCK_SIZE)
        pieces.append(_xor_bulk(segment, keystream[cursor : cursor + span]))
        cursor += span
    return b"".join(pieces)
