"""Reference (per-byte) AES-128 and chaining modes — the correctness oracle.

This is the original straightforward FIPS-197 implementation that shipped
with the seed: SubBytes / ShiftRows / MixColumns as explicit byte loops,
and CTR / CBC-MAC as per-byte XOR loops.  It is deliberately *slow* and
deliberately kept:

* the fast T-table implementation in :mod:`repro.crypto.aes` is validated
  against it by a randomized equivalence property test — any divergence on
  any (key, block) pair is a bug in the fast path;
* the crypto throughput benchmark (``benchmarks/bench_crypto_throughput``)
  uses it as the "before" baseline so the reported speedup measures the
  fast path, not drift in the harness.

Nothing outside tests and benchmarks should import this module.
"""

from __future__ import annotations

from repro.crypto.aes import (
    _INV_SBOX,
    _MUL2,
    _MUL3,
    _MUL9,
    _MUL11,
    _MUL13,
    _MUL14,
    _SBOX,
    BLOCK_SIZE,
    expand_key,
)


def _add_round_key(state: bytearray, round_key: bytes) -> None:
    for i in range(16):
        state[i] ^= round_key[i]


def _sub_bytes(state: bytearray) -> None:
    for i in range(16):
        state[i] = _SBOX[state[i]]


def _inv_sub_bytes(state: bytearray) -> None:
    for i in range(16):
        state[i] = _INV_SBOX[state[i]]


# State is stored column-major as in FIPS-197: byte (row r, column c) lives
# at index 4*c + r.
def _shift_rows(state: bytearray) -> None:
    s = state
    s[1], s[5], s[9], s[13] = s[5], s[9], s[13], s[1]
    s[2], s[6], s[10], s[14] = s[10], s[14], s[2], s[6]
    s[3], s[7], s[11], s[15] = s[15], s[3], s[7], s[11]


def _inv_shift_rows(state: bytearray) -> None:
    s = state
    s[5], s[9], s[13], s[1] = s[1], s[5], s[9], s[13]
    s[10], s[14], s[2], s[6] = s[2], s[6], s[10], s[14]
    s[15], s[3], s[7], s[11] = s[3], s[7], s[11], s[15]


def _mix_columns(state: bytearray) -> None:
    for c in range(0, 16, 4):
        a0, a1, a2, a3 = state[c], state[c + 1], state[c + 2], state[c + 3]
        state[c] = _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3
        state[c + 1] = a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3
        state[c + 2] = a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3]
        state[c + 3] = _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3]


def _inv_mix_columns(state: bytearray) -> None:
    for c in range(0, 16, 4):
        a0, a1, a2, a3 = state[c], state[c + 1], state[c + 2], state[c + 3]
        state[c] = _MUL14[a0] ^ _MUL11[a1] ^ _MUL13[a2] ^ _MUL9[a3]
        state[c + 1] = _MUL9[a0] ^ _MUL14[a1] ^ _MUL11[a2] ^ _MUL13[a3]
        state[c + 2] = _MUL13[a0] ^ _MUL9[a1] ^ _MUL14[a2] ^ _MUL11[a3]
        state[c + 3] = _MUL11[a0] ^ _MUL13[a1] ^ _MUL9[a2] ^ _MUL14[a3]


_NUM_ROUNDS = 10


class ReferenceAES128:
    """The seed's per-byte AES-128 block cipher (oracle / baseline)."""

    def __init__(self, key: bytes) -> None:
        self._round_keys = expand_key(key)

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt exactly one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = bytearray(block)
        _add_round_key(state, self._round_keys[0])
        for round_index in range(1, _NUM_ROUNDS):
            _sub_bytes(state)
            _shift_rows(state)
            _mix_columns(state)
            _add_round_key(state, self._round_keys[round_index])
        _sub_bytes(state)
        _shift_rows(state)
        _add_round_key(state, self._round_keys[_NUM_ROUNDS])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt exactly one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = bytearray(block)
        _add_round_key(state, self._round_keys[_NUM_ROUNDS])
        for round_index in range(_NUM_ROUNDS - 1, 0, -1):
            _inv_shift_rows(state)
            _inv_sub_bytes(state)
            _add_round_key(state, self._round_keys[round_index])
            _inv_mix_columns(state)
        _inv_shift_rows(state)
        _inv_sub_bytes(state)
        _add_round_key(state, self._round_keys[0])
        return bytes(state)


def reference_ctr_transform(cipher: ReferenceAES128, nonce: bytes, data: bytes) -> bytes:
    """The seed's per-byte CTR loop (benchmark baseline)."""
    if len(nonce) != 8:
        raise ValueError(f"CTR nonce must be 8 bytes, got {len(nonce)}")
    out = bytearray(len(data))
    for block_index in range((len(data) + BLOCK_SIZE - 1) // BLOCK_SIZE):
        counter_block = nonce + block_index.to_bytes(8, "big")
        keystream = cipher.encrypt_block(counter_block)
        offset = block_index * BLOCK_SIZE
        chunk = data[offset : offset + BLOCK_SIZE]
        for i, byte in enumerate(chunk):
            out[offset + i] = byte ^ keystream[i]
    return bytes(out)


def reference_cbc_mac(cipher: ReferenceAES128, data: bytes) -> bytes:
    """The seed's per-byte CBC-MAC loop (benchmark baseline)."""
    message = len(data).to_bytes(8, "big") + data
    pad_len = BLOCK_SIZE - (len(message) % BLOCK_SIZE)
    message = message + bytes([pad_len]) * pad_len
    mac = bytes(BLOCK_SIZE)
    for offset in range(0, len(message), BLOCK_SIZE):
        block = bytes(message[offset + i] ^ mac[i] for i in range(BLOCK_SIZE))
        mac = cipher.encrypt_block(block)
    return mac
