"""Optional OpenSSL-backed AES-128 engine (via the ``cryptography`` wheel).

The paper's TDS offloads AES to a crypto-coprocessor; on a development
machine the closest analogue is the host's AES-NI path, reached through
``cryptography``'s OpenSSL bindings.  This module is an *engine* in the
sense of :mod:`repro.crypto.modes`: it exposes the same duck-typed
surface as :class:`repro.crypto.aes.AES128` (``encrypt_block`` /
``decrypt_block`` plus the bulk ``ctr_keystream*`` / ``cbc_mac*``
methods), so the chaining modes and the protocol ciphers above them are
byte-for-byte oblivious to which engine is underneath.

Importing this module raises :class:`ImportError` when ``cryptography``
is not installed; :func:`repro.crypto.cache.use_engine` treats that as
"fall through to the T-table engine".  Correctness is pinned by the
parity fuzz in ``tests/crypto/test_block_api.py`` against
:mod:`repro.crypto.reference`.

Construction detail: our CTR mode is ``nonce(8) || counter(8)`` starting
at zero, which coincides with OpenSSL's 128-bit big-endian CTR over the
initial block ``nonce || 0`` for any message shorter than 2**67 bytes,
so :meth:`ctr_keystream` is a single EVP call.  CBC-MAC is the last
block of a zero-IV CBC encryption.
"""

from __future__ import annotations

from cryptography.hazmat.primitives.ciphers import Cipher, algorithms
from cryptography.hazmat.primitives.ciphers import modes as _ossl_modes

from repro.exceptions import InvalidKeyError

BLOCK_SIZE = 16
KEY_SIZE = 16

try:  # batch counter-block construction (the ECB fallback) is numpy-only
    import numpy as _np
except ImportError:  # pragma: no cover - environment without numpy
    _np = None  # type: ignore[assignment]

_ZERO_IV = bytes(BLOCK_SIZE)


class OpenSSLAES128:
    """AES-128 engine delegating the block transform to OpenSSL.

    Drop-in engine-level replacement for
    :class:`repro.crypto.aes.AES128`: same constructor contract, same
    bulk surface, identical bytes out.
    """

    __slots__ = ("_key", "_ecb")

    def __init__(self, key: bytes) -> None:
        key = bytes(key)
        if len(key) != KEY_SIZE:
            raise InvalidKeyError(
                f"AES-128 key must be {KEY_SIZE} bytes, got {len(key)}"
            )
        self._key = key
        self._ecb = Cipher(algorithms.AES(key), _ossl_modes.ECB())

    # ------------------------------------------------------------------ #
    # public block interface
    # ------------------------------------------------------------------ #
    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt exactly one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        enc = self._ecb.encryptor()
        return enc.update(block) + enc.finalize()

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt exactly one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        dec = self._ecb.decryptor()
        return dec.update(block) + dec.finalize()

    # ------------------------------------------------------------------ #
    # bulk interface used by the chaining modes
    # ------------------------------------------------------------------ #
    def ctr_keystream(self, nonce: bytes, num_blocks: int) -> bytes:
        """The CTR keystream for counter blocks ``nonce || 0..num_blocks-1``."""
        if len(nonce) != 8:
            raise ValueError(f"CTR nonce must be 8 bytes, got {len(nonce)}")
        if num_blocks <= 0:
            return b""
        enc = Cipher(
            algorithms.AES(self._key), _ossl_modes.CTR(nonce + bytes(8))
        ).encryptor()
        return enc.update(bytes(num_blocks * BLOCK_SIZE)) + enc.finalize()

    def ctr_keystream_packed(
        self, nonces: list[bytes], block_counts: list[int]
    ) -> bytes:
        """Concatenated CTR keystreams for a batch of messages.

        When numpy is available the counter blocks of the whole batch are
        materialized in one pass and pushed through a single ECB call
        (ECB of the counter blocks *is* the CTR keystream), so the
        per-message EVP setup cost disappears."""
        if len(nonces) != len(block_counts):
            raise ValueError("one nonce per block count required")
        for nonce in nonces:
            if len(nonce) != 8:
                raise ValueError(f"CTR nonce must be 8 bytes, got {len(nonce)}")
        if _np is None:
            return b"".join(
                self.ctr_keystream(nonce, count)
                for nonce, count in zip(nonces, block_counts)
            )
        counts = _np.array(block_counts, dtype=_np.int64)
        total_blocks = int(counts.sum())
        if total_blocks == 0:
            return b""
        blocks = _np.empty((total_blocks, 2), dtype=_np.uint64)
        nonce_words = _np.frombuffer(b"".join(nonces), dtype=">u8").astype(
            _np.uint64
        )
        blocks[:, 0] = _np.repeat(nonce_words, counts)
        starts = _np.repeat(_np.cumsum(counts) - counts, counts)
        blocks[:, 1] = (
            _np.arange(total_blocks, dtype=_np.int64) - starts
        ).astype(_np.uint64)
        if _np.little_endian:
            blocks.byteswap(inplace=True)
        enc = self._ecb.encryptor()
        return enc.update(blocks.tobytes()) + enc.finalize()

    def ctr_keystream_many(
        self, nonces: list[bytes], block_counts: list[int]
    ) -> list[bytes]:
        """CTR keystreams for a whole batch of messages."""
        flat = self.ctr_keystream_packed(nonces, block_counts)
        streams = []
        cursor = 0
        for count in block_counts:
            end = cursor + count * BLOCK_SIZE
            streams.append(flat[cursor:end])
            cursor = end
        return streams

    def cbc_mac_words(self, message: bytes) -> bytes:
        """CBC-MAC core over a block-aligned *message* (zero IV)."""
        if len(message) % BLOCK_SIZE:
            raise ValueError("CBC-MAC core needs a block-aligned message")
        if not message:
            return _ZERO_IV
        enc = Cipher(
            algorithms.AES(self._key), _ossl_modes.CBC(_ZERO_IV)
        ).encryptor()
        tail = enc.update(message) + enc.finalize()
        return tail[-BLOCK_SIZE:]

    def cbc_mac_many(self, messages: list[bytes]) -> list[bytes]:
        """CBC-MAC cores of a batch of block-aligned messages.

        With numpy available the batch runs in lockstep lanes: step *b*
        XORs block *b* of every still-unfinished message into its lane's
        state and encrypts all lanes with one ECB call, so the per-call
        EVP setup cost is paid per *step*, not per message.  The XOR is
        byte-wise, so host endianness never enters."""
        counts = [len(message) // BLOCK_SIZE for message in messages]
        if _np is None or len(messages) < 2:
            return [self.cbc_mac_words(message) for message in messages]
        for message in messages:
            if len(message) % BLOCK_SIZE:
                raise ValueError("CBC-MAC core needs a block-aligned message")
        lanes = len(messages)
        max_blocks = max(counts, default=0)
        uniform = lanes > 0 and min(counts) == max_blocks
        if uniform:
            data = _np.frombuffer(b"".join(messages), dtype=_np.uint8).reshape(
                lanes, max_blocks, BLOCK_SIZE
            )
        else:
            data = _np.zeros((lanes, max_blocks, BLOCK_SIZE), dtype=_np.uint8)
            for lane, message in enumerate(messages):
                w = _np.frombuffer(message, dtype=_np.uint8)
                data[lane, : counts[lane], :] = w.reshape(-1, BLOCK_SIZE)
        state = _np.zeros((lanes, BLOCK_SIZE), dtype=_np.uint8)
        macs: list[bytes | None] = [None] * lanes
        for block_index in range(max_blocks):
            state ^= data[:, block_index, :]
            enc = self._ecb.encryptor()
            out = enc.update(state.tobytes()) + enc.finalize()
            state = _np.frombuffer(out, dtype=_np.uint8).reshape(
                lanes, BLOCK_SIZE
            ).copy()
            if uniform:
                continue
            for lane, count in enumerate(counts):
                if count == block_index + 1:
                    macs[lane] = out[16 * lane : 16 * lane + 16]
        if uniform:
            flat = state.tobytes()
            return [flat[16 * i : 16 * i + 16] for i in range(lanes)]
        return [mac if mac is not None else _ZERO_IV for mac in macs]
