"""Multiprocess crypto worker pool — block encryption off the event loop.

The paper's TDS offloads bulk AES to a dedicated crypto-coprocessor that
runs concurrently with the device's communication stack (§6.2).  This
module is that coprocessor's software analogue: a pool of worker
processes that encrypt/MAC whole packed tuple blocks — **one IPC round
per block, not per tuple** — while the asyncio event loop keeps the
sockets busy.  With ``workers=0`` the pool degrades to inline (in-process)
execution, which is also the right choice on single-core hosts where an
extra process only adds IPC cost.

Trust boundary: a :class:`TupleFrameBlock` holds *unencrypted* tuple
frames.  It exists only on the TDS side of the dataflow — it is built by
:meth:`repro.tds.node.TrustedDataServer.collect_frames` and consumed by
:meth:`CryptoPool.encrypt_tuple_block`, whose output is the
:class:`~repro.core.messages.EncryptedTupleBlock` that may travel to the
SSI.  The worker processes are TDS-role compute, exactly like the
paper's coprocessor sits inside the tamper-resistant perimeter.

Everything a worker needs travels in the job (master key bytes, packed
buffer, offsets, nonces); workers rebuild ciphers through the
process-wide :mod:`repro.crypto.cache`, so repeated jobs under the same
key skip the schedule expansion.  Nonces are drawn in the *parent* (one
``secrets`` call per block) so injected-rng reproducibility and the
single-entropy-source property survive the process hop.
"""

from __future__ import annotations

import asyncio
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Sequence

from repro.core.messages import EncryptedTupleBlock
from repro.crypto import cache
from repro.exceptions import ConfigurationError


@dataclass(frozen=True, slots=True)
class TupleFrameBlock:
    """A packed buffer of yet-to-be-encrypted tuple frames plus their
    cleartext group tags — the TDS-side input to the crypto plane.

    Same shape as :class:`~repro.core.messages.EncryptedTupleBlock`
    (``count + 1`` offsets spanning ``frames``), but the payload bytes
    are cleartext: instances must never cross the TDS trust boundary.
    """

    frames: bytes
    offsets: tuple[int, ...]
    tags: tuple[bytes | None, ...]

    def __post_init__(self) -> None:
        if len(self.offsets) != len(self.tags) + 1:
            raise ValueError(
                f"offsets table of {len(self.offsets)} entries does not "
                f"match {len(self.tags)} tags"
            )
        if self.offsets[0] != 0 or self.offsets[-1] != len(self.frames):
            raise ValueError("offsets table does not span the frame buffer")
        if any(a > b for a, b in zip(self.offsets, self.offsets[1:])):
            raise ValueError("offsets table is not monotonically increasing")

    def __len__(self) -> int:
        return len(self.tags)

    def frame_sizes(self) -> list[int]:
        return [b - a for a, b in zip(self.offsets, self.offsets[1:])]

    @classmethod
    def from_frames(
        cls,
        frames: Sequence[bytes],
        tags: Sequence[bytes | None] | None = None,
    ) -> "TupleFrameBlock":
        offsets = [0]
        total = 0
        for frame in frames:
            total += len(frame)
            offsets.append(total)
        if tags is None:
            tags = [None] * len(frames)
        return cls(
            frames=b"".join(frames),
            offsets=tuple(offsets),
            tags=tuple(tags),
        )


# ---------------------------------------------------------------------- #
# worker-side job functions (module-level: must pickle under spawn)
# ---------------------------------------------------------------------- #


def _worker_init(engine: str) -> None:
    cache.use_engine(engine)


def _job_encrypt_ndet(
    master: bytes,
    payloads: bytes,
    offsets: tuple[int, ...],
    nonces: list[bytes],
) -> tuple[bytes, tuple[int, ...]]:
    return cache.ndet_cipher(master).encrypt_block(
        payloads, offsets, nonces=nonces
    )


def _job_decrypt_ndet(
    master: bytes, payloads: bytes, offsets: tuple[int, ...]
) -> tuple[bytes, tuple[int, ...]]:
    return cache.ndet_cipher(master).decrypt_block(payloads, offsets)


def _job_encrypt_det(
    master: bytes, payloads: bytes, offsets: tuple[int, ...]
) -> tuple[bytes, tuple[int, ...]]:
    return cache.det_cipher(master).encrypt_block(payloads, offsets)


def _job_decrypt_det(
    master: bytes, payloads: bytes, offsets: tuple[int, ...]
) -> tuple[bytes, tuple[int, ...]]:
    return cache.det_cipher(master).decrypt_block(payloads, offsets)


def _job_keystream_ndet(
    master: bytes, nonces: list[bytes], sizes: list[int]
) -> bytes:
    return cache.ndet_cipher(master).keystream_block(nonces, sizes)


class CryptoPool:
    """A pool of crypto workers operating on packed tuple blocks.

    ``workers=0`` runs every job inline (no processes, no IPC): correct
    everywhere, fastest on single-core hosts.  ``workers=N`` spawns *N*
    processes; each block is one ``submit`` round-trip, and the async
    methods let the event loop overlap socket I/O with the encryption of
    other devices' blocks.  ``workers=None`` picks ``cpu_count - 1``
    (inline when that is zero).

    Use as a context manager or call :meth:`close` — idle worker
    processes otherwise outlive the fleet run.
    """

    def __init__(
        self, workers: int | None = None, *, engine: str | None = None
    ) -> None:
        if workers is None:
            workers = max(0, (os.cpu_count() or 1) - 1)
        if workers < 0:
            raise ConfigurationError("crypto pool workers must be >= 0")
        self.workers = workers
        self.engine = engine if engine is not None else cache.selected_engine()
        self._executor: ProcessPoolExecutor | None = None
        if workers > 0:
            self._executor = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=get_context("spawn"),
                initializer=_worker_init,
                initargs=(self.engine,),
            )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "CryptoPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # packed-buffer jobs
    # ------------------------------------------------------------------ #
    def _run(self, fn, /, *args):  # type: ignore[no-untyped-def]
        if self._executor is None:
            return fn(*args)
        return self._executor.submit(fn, *args).result()

    async def _run_async(self, fn, /, *args):  # type: ignore[no-untyped-def]
        if self._executor is None:
            return fn(*args)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, _call, fn, args
        )

    def encrypt_ndet_block(
        self,
        master: bytes,
        payloads: bytes,
        offsets: Sequence[int],
        *,
        nonces: Sequence[bytes] | None = None,
    ) -> tuple[bytes, tuple[int, ...]]:
        """``nDet_Enc`` a packed buffer; nonces are drawn here (parent
        process) unless supplied."""
        if nonces is None:
            nonces = cache.ndet_cipher(master).fresh_nonces(len(offsets) - 1)
        return self._run(
            _job_encrypt_ndet, bytes(master), bytes(payloads),
            tuple(offsets), list(nonces),
        )

    def decrypt_ndet_block(
        self, master: bytes, payloads: bytes, offsets: Sequence[int]
    ) -> tuple[bytes, tuple[int, ...]]:
        return self._run(
            _job_decrypt_ndet, bytes(master), bytes(payloads), tuple(offsets)
        )

    def encrypt_det_block(
        self, master: bytes, payloads: bytes, offsets: Sequence[int]
    ) -> tuple[bytes, tuple[int, ...]]:
        return self._run(
            _job_encrypt_det, bytes(master), bytes(payloads), tuple(offsets)
        )

    def decrypt_det_block(
        self, master: bytes, payloads: bytes, offsets: Sequence[int]
    ) -> tuple[bytes, tuple[int, ...]]:
        return self._run(
            _job_decrypt_det, bytes(master), bytes(payloads), tuple(offsets)
        )

    def precompute_keystream(
        self, master: bytes, nonces: Sequence[bytes], sizes: Sequence[int]
    ) -> bytes:
        """The CTR keystream for a future nDet block with these nonces —
        the precomputable half of encryption (pipeline it against I/O)."""
        return self._run(
            _job_keystream_ndet, bytes(master), list(nonces), list(sizes)
        )

    # ------------------------------------------------------------------ #
    # tuple-block facade (what the fleet calls)
    # ------------------------------------------------------------------ #
    def encrypt_tuple_block(
        self,
        master: bytes,
        frames: TupleFrameBlock,
        *,
        nonces: Sequence[bytes] | None = None,
    ) -> EncryptedTupleBlock:
        """Encrypt a frame block into the SSI-bound columnar shape.

        Group tags pass through unchanged — they are already either
        ``None`` or Det-encrypted/hashed upstream."""
        payloads, offsets = self.encrypt_ndet_block(
            master, frames.frames, frames.offsets, nonces=nonces
        )
        return EncryptedTupleBlock(
            payloads=payloads, offsets=offsets, tags=frames.tags
        )

    async def encrypt_tuple_block_async(
        self,
        master: bytes,
        frames: TupleFrameBlock,
        *,
        nonces: Sequence[bytes] | None = None,
    ) -> EncryptedTupleBlock:
        """Async :meth:`encrypt_tuple_block`: with worker processes the
        event loop services other connections while this block is being
        encrypted (crypto/wire overlap); inline it degenerates to the
        synchronous call."""
        if nonces is None:
            nonces = cache.ndet_cipher(master).fresh_nonces(len(frames))
        payloads, offsets = await self._run_async(
            _job_encrypt_ndet, bytes(master), frames.frames,
            frames.offsets, list(nonces),
        )
        return EncryptedTupleBlock(
            payloads=payloads, offsets=offsets, tags=frames.tags
        )

    async def precompute_keystream_async(
        self, master: bytes, nonces: Sequence[bytes], sizes: Sequence[int]
    ) -> bytes:
        return await self._run_async(
            _job_keystream_ndet, bytes(master), list(nonces), list(sizes)
        )


def _call(fn, args):  # type: ignore[no-untyped-def]
    """run_in_executor takes a no-arg callable; partials of module-level
    functions pickle fine, but a plain trampoline is cheaper to build."""
    return fn(*args)
