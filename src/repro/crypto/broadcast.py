"""Broadcast key distribution with revocation (paper footnote 7).

"In an open context, a PKI infrastructure could be used ... Alternatively,
a broadcast encryption scheme can also be used to securely exchange keys
between TDSs and querier."

This is the simple per-device construction: every TDS owns a unique
device key (installed at manufacture); the key provider broadcasts a new
k2 as one ciphertext *per non-revoked device*, all posted on the
untrusted SSI.  Revoked devices cannot decrypt any message of the new
epoch — which is exactly the remediation once a compromised TDS has been
flagged by spot-check verification: revoke it, rotate k2, and its leaked
key material dies with the old epoch.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.crypto.keys import KEY_SIZE, random_key
from repro.crypto.ndet import NonDeterministicCipher
from repro.exceptions import CryptoError, DecryptionError, InvalidKeyError


@dataclass(frozen=True)
class KeyBroadcast:
    """One rotation epoch: ciphertexts of the new key, one per recipient.

    Stored on the SSI; ``ciphertexts`` maps TDS id to the new k2 encrypted
    under that device's key.  The mapping reveals *who* is still enrolled
    (membership is public anyway — the SSI talks to every TDS) but nothing
    about the key."""

    epoch: int
    ciphertexts: dict[str, bytes]

    def recipient_count(self) -> int:
        return len(self.ciphertexts)


class DeviceKeyStore:
    """The manufacturer's registry of per-device keys.

    In production this is the secure element personalization database;
    here it hands each simulated TDS its device key."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._keys: dict[str, bytes] = {}

    def enroll(self, tds_id: str) -> bytes:
        """Create (or return) the device key of *tds_id*."""
        if tds_id not in self._keys:
            self._keys[tds_id] = random_key(self._rng)
        return self._keys[tds_id]

    def device_key(self, tds_id: str) -> bytes:
        try:
            return self._keys[tds_id]
        except KeyError:
            raise CryptoError(f"device {tds_id!r} was never enrolled") from None

    def enrolled(self) -> list[str]:
        return sorted(self._keys)


@dataclass
class BroadcastKeyDistributor:
    """The key provider: rotates k2 and broadcasts it to enrolled,
    non-revoked devices."""

    store: DeviceKeyStore
    rng: random.Random
    revoked: set[str] = field(default_factory=set)
    _epoch: int = 0

    def revoke(self, tds_id: str) -> None:
        """Exclude *tds_id* from every future epoch (e.g. after the
        spot-checker flagged it)."""
        self.revoked.add(tds_id)

    def broadcast_new_key(self, new_key: bytes | None = None) -> tuple[bytes, KeyBroadcast]:
        """Draw (or accept) a new k2 and produce the epoch broadcast.

        Returns (new_key, broadcast); the broadcast alone is what lands on
        the SSI."""
        if new_key is None:
            new_key = random_key(self.rng)
        if len(new_key) != KEY_SIZE:
            raise InvalidKeyError(f"broadcast key must be {KEY_SIZE} bytes")
        self._epoch += 1
        ciphertexts = {}
        for tds_id in self.store.enrolled():
            if tds_id in self.revoked:
                continue
            cipher = NonDeterministicCipher(self.store.device_key(tds_id), self.rng)
            ciphertexts[tds_id] = cipher.encrypt(new_key)
        return new_key, KeyBroadcast(self._epoch, ciphertexts)


def receive_broadcast(
    tds_id: str, device_key: bytes, broadcast: KeyBroadcast
) -> bytes:
    """TDS side: pick up the new k2 from an epoch broadcast.

    Raises :class:`CryptoError` when the device was revoked (no ciphertext
    addressed to it) and :class:`DecryptionError` on a wrong device key."""
    ciphertext = broadcast.ciphertexts.get(tds_id)
    if ciphertext is None:
        raise CryptoError(
            f"device {tds_id!r} is not a recipient of epoch {broadcast.epoch} "
            f"(revoked or never enrolled)"
        )
    cipher = NonDeterministicCipher(device_key)
    key = cipher.decrypt(ciphertext)
    if len(key) != KEY_SIZE:
        raise DecryptionError("broadcast payload has the wrong key size")
    return key
