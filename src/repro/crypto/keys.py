"""Key management for the Trusted Cells architecture.

The paper (§3.1) distinguishes two shared symmetric keys:

* **k1** — shared between the querier and the TDSs (queries and final
  results travel under k1);
* **k2** — shared among TDSs only (intermediate results exchanged through
  the SSI travel under k2, so neither SSI nor the querier can read them).

Keys "may change over time" (footnote 7): :class:`KeyRing` models versioned
keys installed at burn time or refreshed by the provider, and
:class:`KeyProvisioner` plays the role of the provider/PKI that hands the
right keys to the right parties — the SSI never receives any.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from repro.exceptions import InvalidKeyError

KEY_SIZE = 16


def derive_subkey(master: bytes, label: bytes) -> bytes:
    """Derive a 16-byte subkey from *master* for the given *label*.

    Uses SHA-256 as a KDF; distinct labels yield independent subkeys so one
    shared key can safely serve both encryption and MAC duties.
    """
    if len(master) != KEY_SIZE:
        raise InvalidKeyError(f"master key must be {KEY_SIZE} bytes, got {len(master)}")
    return hashlib.sha256(master + b"|" + label).digest()[:KEY_SIZE]


def random_key(rng: random.Random) -> bytes:
    """Generate a fresh 16-byte key from a seedable RNG (simulation use)."""
    return rng.getrandbits(8 * KEY_SIZE).to_bytes(KEY_SIZE, "big")


@dataclass(frozen=True)
class KeyVersion:
    """One version of a shared key."""

    version: int
    material: bytes

    def __post_init__(self) -> None:
        if len(self.material) != KEY_SIZE:
            raise InvalidKeyError(
                f"key material must be {KEY_SIZE} bytes, got {len(self.material)}"
            )


class KeyRing:
    """A versioned store of one logical key (k1 or k2).

    The current version is used for new encryptions; older versions stay
    available so in-flight data encrypted before a rotation can still be
    decrypted.
    """

    def __init__(self, name: str, initial: bytes) -> None:
        self.name = name
        self._versions: dict[int, KeyVersion] = {}
        self._current = 0
        self._versions[0] = KeyVersion(0, initial)

    @property
    def current(self) -> KeyVersion:
        """The key version used for new encryptions."""
        return self._versions[self._current]

    def rotate(self, new_material: bytes) -> KeyVersion:
        """Install *new_material* as the next version and make it current.

        The superseded epoch's entries in the process-wide cipher cache are
        evicted (memory hygiene — re-decrypting in-flight data under an old
        version transparently rebuilds them)."""
        superseded = self._versions[self._current].material
        self._current += 1
        version = KeyVersion(self._current, new_material)
        self._versions[self._current] = version
        # Imported here: cache.py imports derive_subkey from this module.
        from repro.crypto import cache

        cache.invalidate_key(superseded)
        return version

    def get(self, version: int) -> KeyVersion:
        """Look up a specific version (raises KeyError if never installed)."""
        return self._versions[version]

    def __len__(self) -> int:
        return len(self._versions)


@dataclass
class KeyBundle:
    """The cryptographic material a single party holds.

    TDSs hold both k1 and k2; the querier holds only k1; the SSI holds
    neither (its bundle is empty) — mirroring §3.1.
    """

    k1: KeyRing | None = None
    k2: KeyRing | None = None

    def holds_k1(self) -> bool:
        return self.k1 is not None

    def holds_k2(self) -> bool:
        return self.k2 is not None


@dataclass
class KeyProvisioner:
    """Issues key bundles to the parties of a deployment.

    In a homogeneous context the provider installs keys at burn time; in an
    open context a PKI or broadcast-encryption scheme plays this role
    (paper footnote 7).  Either way the result is the same bundle
    distribution, which is all the protocols care about.
    """

    rng: random.Random
    _k1: KeyRing = field(init=False)
    _k2: KeyRing = field(init=False)

    def __post_init__(self) -> None:
        self._k1 = KeyRing("k1", random_key(self.rng))
        self._k2 = KeyRing("k2", random_key(self.rng))

    def bundle_for_tds(self) -> KeyBundle:
        """TDSs receive both keys (burn-time installation)."""
        return KeyBundle(k1=self._k1, k2=self._k2)

    def bundle_for_querier(self) -> KeyBundle:
        """The querier receives only k1 — it must never see intermediate
        results."""
        return KeyBundle(k1=self._k1, k2=None)

    def bundle_for_ssi(self) -> KeyBundle:
        """The SSI receives no key at all."""
        return KeyBundle()

    def rotate_k2(self) -> KeyVersion:
        """Rotate the inter-TDS key (e.g. periodic refresh)."""
        return self._k2.rotate(random_key(self.rng))
