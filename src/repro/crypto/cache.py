"""Process-wide cipher cache keyed by key material — and engine selection.

The protocol layer builds ciphers *constantly*: every ``Querier._cipher()``
call, every TDS collection, every partition fold re-derives the enc/MAC
subkeys (a SHA-256 each) and re-expands two AES key schedules.  For a
population of thousands of simulated TDSs sharing the same k1/k2, that work
is identical every time.  This module memoizes it:

* :func:`aes_for_subkey` — the (master, label) → expanded engine cache used
  by :class:`~repro.crypto.ndet.NonDeterministicCipher` and
  :class:`~repro.crypto.det.DeterministicCipher` construction, making
  cipher objects cheap throwaway wrappers around shared engines;
* :func:`det_cipher` / :func:`ndet_cipher` — convenience constructors for
  the hot call sites;
* :func:`invalidate_key` — called by :meth:`repro.crypto.keys.KeyRing.rotate`
  so superseded key epochs do not pin engines in memory forever.  Eviction
  is a pure memory-hygiene operation: cache entries are deterministic
  functions of the key material, so a re-build after eviction yields an
  identical engine.

This is also where the **engine** is chosen.  Everything above the cache
(modes, ciphers, protocols) is engine-agnostic; :func:`use_engine` selects
which block-cipher implementation the cache hands out:

* ``cryptography`` — OpenSSL/AES-NI via the optional ``cryptography``
  wheel (:mod:`repro.crypto.openssl`), the fastest path;
* ``ttable`` — the dependency-free T-table + numpy bulk engine
  (:class:`repro.crypto.aes.AES128`), the software stand-in for the
  paper's crypto-coprocessor;
* ``reference`` — the per-byte oracle (:mod:`repro.crypto.reference`),
  for cross-checking only.

``auto`` (the default, also via the ``REPRO_CRYPTO_ENGINE`` environment
variable) picks ``cryptography`` when importable and falls back to
``ttable``.  All engines are byte-for-byte interchangeable — the parity
fuzz in ``tests/crypto/test_block_api.py`` pins them to the reference.

The cache is bounded: when full, the **oldest-inserted** entry is evicted
(dict insertion order) together with its expanded AES schedule, so a
workload cycling through millions of distinct keys (fuzzing, adversarial
rotation) degrades to uncached behaviour instead of exhausting memory —
without the stampede a full clear would cause for the keys still in use.
"""

from __future__ import annotations

import os
import random
import threading
from typing import TYPE_CHECKING, Callable

from repro.crypto.aes import AES128, CipherEngine, evict_schedule
from repro.crypto.keys import derive_subkey
from repro.exceptions import ConfigurationError
from repro.obs import metrics as obs_metrics

if TYPE_CHECKING:
    from repro.crypto.det import DeterministicCipher
    from repro.crypto.ndet import NonDeterministicCipher

_MAX_ENTRIES = 1024

#: environment override for the engine choice (read once, lazily)
ENGINE_ENV = "REPRO_CRYPTO_ENGINE"
ENGINE_CHOICES = ("auto", "cryptography", "ttable", "reference")

_lock = threading.Lock()
_engines: dict[tuple[bytes, bytes], CipherEngine] = {}
_hits = 0
_misses = 0
_engine_name: str | None = None
_engine_factory: Callable[[bytes], CipherEngine] | None = None

_LOOKUPS = obs_metrics.REGISTRY.counter(
    "repro_crypto_cache_lookups_total",
    "Cipher-engine cache lookups, by outcome.",
    ("outcome",),
)
_c_hits = _LOOKUPS.labels(outcome="hit")
_c_misses = _LOOKUPS.labels(outcome="miss")


def _resolve_engine(choice: str) -> tuple[str, Callable[[bytes], CipherEngine]]:
    """Map an engine *choice* to (canonical name, subkey → engine factory)."""
    if choice in ("auto", "cryptography", "openssl"):
        try:
            from repro.crypto.openssl import OpenSSLAES128

            return "cryptography", OpenSSLAES128
        except ImportError:
            if choice != "auto":
                raise ConfigurationError(
                    "crypto engine 'cryptography' requested but the "
                    "cryptography package is not installed"
                ) from None
    if choice in ("auto", "ttable"):
        return "ttable", AES128
    if choice == "reference":
        # The per-byte oracle; selectable so parity/latency experiments can
        # run the whole stack over it, never a production default.
        from repro.crypto.reference import ReferenceAES128

        return "reference", ReferenceAES128
    raise ConfigurationError(
        f"unknown crypto engine {choice!r}; expected one of {ENGINE_CHOICES}"
    )


def use_engine(name: str | None = None) -> str:
    """Select the block-cipher engine behind the cache.

    ``None`` re-resolves from ``REPRO_CRYPTO_ENGINE`` (default ``auto``).
    Returns the canonical name of the engine now in effect.  Cached
    engines of the previous selection are dropped."""
    choice = name if name is not None else os.environ.get(ENGINE_ENV, "auto")
    resolved, factory = _resolve_engine(choice.strip().lower() or "auto")
    global _engine_name, _engine_factory
    with _lock:
        if resolved != _engine_name:
            _engines.clear()
        _engine_name = resolved
        _engine_factory = factory
    return resolved


def selected_engine() -> str:
    """Canonical name of the engine in effect (resolving it if needed)."""
    if _engine_name is None:
        return use_engine()
    return _engine_name


def aes_for_subkey(master: bytes, label: bytes) -> CipherEngine:
    """The AES engine for ``derive_subkey(master, label)``, memoized.

    Counters and the entry map are only touched under the cache lock;
    engine construction (schedule expansion) happens outside it so a miss
    does not serialize concurrent lookups of other keys."""
    global _hits, _misses
    cache_key = (bytes(master), bytes(label))
    with _lock:
        engine = _engines.get(cache_key)
        if engine is not None:
            _hits += 1
            _c_hits.inc()
            return engine
        factory = _engine_factory
    if factory is None:
        use_engine()
        factory = _engine_factory
        assert factory is not None
    built = factory(derive_subkey(master, label))
    evicted: list[tuple[bytes, bytes]] = []
    with _lock:
        _misses += 1
        _c_misses.inc()
        engine = _engines.get(cache_key)
        if engine is None:
            # Evict oldest-inserted entries (dict order) one at a time —
            # no full-cache clear, no latency cliff for hot keys.
            while len(_engines) >= _MAX_ENTRIES:
                oldest = next(iter(_engines))
                del _engines[oldest]
                evicted.append(oldest)
            _engines[cache_key] = built
            engine = built
    # Release the evicted entries' expanded schedules too, so eviction
    # cannot strand them for invalidate_key to miss later.
    for old_master, old_label in evicted:
        evict_schedule(derive_subkey(old_master, old_label))
    return engine


def ndet_cipher(
    master: bytes, rng: random.Random | None = None
) -> NonDeterministicCipher:
    """A ``nDet_Enc`` cipher over cached engines (cheap to construct)."""
    from repro.crypto.ndet import NonDeterministicCipher

    return NonDeterministicCipher(master, rng)


def det_cipher(master: bytes) -> DeterministicCipher:
    """A ``Det_Enc`` cipher over cached engines (cheap to construct)."""
    from repro.crypto.det import DeterministicCipher

    return DeterministicCipher(master)


def invalidate_key(master: bytes) -> None:
    """Drop every cached engine derived from *master* (key rotation)."""
    master = bytes(master)
    with _lock:
        stale = [k for k in _engines if k[0] == master]
        for cache_key in stale:
            del _engines[cache_key]
    # Also forget the expanded schedules (keyed by subkey material) so the
    # rotated epoch is fully released.
    for __, label in stale:
        evict_schedule(derive_subkey(master, label))
    evict_schedule(master)


def clear() -> None:
    """Empty the cache (test isolation hook)."""
    global _hits, _misses
    with _lock:
        _engines.clear()
        _hits = 0
        _misses = 0


def cache_info() -> dict[str, int]:
    """Observability: entry count and hit/miss counters."""
    with _lock:
        return {"entries": len(_engines), "hits": _hits, "misses": _misses}
