"""Process-wide cipher cache keyed by key material.

The protocol layer builds ciphers *constantly*: every ``Querier._cipher()``
call, every TDS collection, every partition fold re-derives the enc/MAC
subkeys (a SHA-256 each) and re-expands two AES key schedules.  For a
population of thousands of simulated TDSs sharing the same k1/k2, that work
is identical every time.  This module memoizes it:

* :func:`aes_for_subkey` — the (master, label) → expanded :class:`AES128`
  engine cache used by :class:`~repro.crypto.ndet.NonDeterministicCipher`
  and :class:`~repro.crypto.det.DeterministicCipher` construction, making
  cipher objects cheap throwaway wrappers around shared engines;
* :func:`det_cipher` / :func:`ndet_cipher` — convenience constructors for
  the hot call sites;
* :func:`invalidate_key` — called by :meth:`repro.crypto.keys.KeyRing.rotate`
  so superseded key epochs do not pin engines in memory forever.  Eviction
  is a pure memory-hygiene operation: cache entries are deterministic
  functions of the key material, so a re-build after eviction yields an
  identical engine.

The cache is bounded; a workload cycling through millions of distinct keys
(fuzzing, adversarial rotation) degrades to the uncached behaviour instead
of exhausting memory.
"""

from __future__ import annotations

import random
import threading
from typing import TYPE_CHECKING

from repro.crypto.aes import AES128, evict_schedule
from repro.crypto.keys import derive_subkey
from repro.obs import metrics as obs_metrics

if TYPE_CHECKING:
    from repro.crypto.det import DeterministicCipher
    from repro.crypto.ndet import NonDeterministicCipher

_MAX_ENTRIES = 1024

_lock = threading.Lock()
_engines: dict[tuple[bytes, bytes], AES128] = {}
_hits = 0
_misses = 0

_LOOKUPS = obs_metrics.REGISTRY.counter(
    "repro_crypto_cache_lookups_total",
    "Cipher-engine cache lookups, by outcome.",
    ("outcome",),
)
_c_hits = _LOOKUPS.labels(outcome="hit")
_c_misses = _LOOKUPS.labels(outcome="miss")


def aes_for_subkey(master: bytes, label: bytes) -> AES128:
    """The AES engine for ``derive_subkey(master, label)``, memoized."""
    global _hits, _misses
    cache_key = (bytes(master), bytes(label))
    engine = _engines.get(cache_key)
    if engine is not None:
        _hits += 1
        _c_hits.inc()
        return engine
    engine = AES128(derive_subkey(master, label))
    with _lock:
        _misses += 1
        _c_misses.inc()
        if len(_engines) >= _MAX_ENTRIES:
            _engines.clear()
        _engines[cache_key] = engine
    return engine


def ndet_cipher(
    master: bytes, rng: random.Random | None = None
) -> NonDeterministicCipher:
    """A ``nDet_Enc`` cipher over cached engines (cheap to construct)."""
    from repro.crypto.ndet import NonDeterministicCipher

    return NonDeterministicCipher(master, rng)


def det_cipher(master: bytes) -> DeterministicCipher:
    """A ``Det_Enc`` cipher over cached engines (cheap to construct)."""
    from repro.crypto.det import DeterministicCipher

    return DeterministicCipher(master)


def invalidate_key(master: bytes) -> None:
    """Drop every cached engine derived from *master* (key rotation)."""
    master = bytes(master)
    with _lock:
        stale = [k for k in _engines if k[0] == master]
        for cache_key in stale:
            del _engines[cache_key]
    # Also forget the expanded schedules (keyed by subkey material) so the
    # rotated epoch is fully released.
    for __, label in stale:
        evict_schedule(derive_subkey(master, label))
    evict_schedule(master)


def clear() -> None:
    """Empty the cache (test isolation hook)."""
    global _hits, _misses
    with _lock:
        _engines.clear()
        _hits = 0
        _misses = 0


def cache_info() -> dict[str, int]:
    """Observability: entry count and hit/miss counters."""
    return {"entries": len(_engines), "hits": _hits, "misses": _misses}
