"""Cryptographic substrate: AES-128, nDet_Enc, Det_Enc, bucket hashing, keys.

See §3.1 of the paper ("Dataflow obfuscation") for why two encryption
schemes coexist: non-deterministic encryption defeats frequency-based
attacks, deterministic encryption lets the untrusted SSI group equal values
without decrypting them.
"""

from repro.crypto.aes import AES128, BLOCK_SIZE, KEY_SIZE
from repro.crypto.broadcast import (
    BroadcastKeyDistributor,
    DeviceKeyStore,
    KeyBroadcast,
    receive_broadcast,
)
from repro.crypto.det import DeterministicCipher
from repro.crypto.hashing import BucketHasher
from repro.crypto.keys import (
    KeyBundle,
    KeyProvisioner,
    KeyRing,
    KeyVersion,
    derive_subkey,
    random_key,
)
from repro.crypto.ndet import NonDeterministicCipher
from repro.crypto.pool import CryptoPool, TupleFrameBlock

__all__ = [
    "AES128",
    "BLOCK_SIZE",
    "KEY_SIZE",
    "BroadcastKeyDistributor",
    "BucketHasher",
    "DeviceKeyStore",
    "KeyBroadcast",
    "CryptoPool",
    "DeterministicCipher",
    "NonDeterministicCipher",
    "TupleFrameBlock",
    "KeyBundle",
    "KeyProvisioner",
    "KeyRing",
    "KeyVersion",
    "derive_subkey",
    "random_key",
    "receive_broadcast",
]
