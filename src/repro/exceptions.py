"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Sub-hierarchies mirror the major
subsystems (crypto, SQL engine, protocol execution, access control).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class InvalidKeyError(CryptoError):
    """A key has the wrong length or is otherwise unusable."""


class DecryptionError(CryptoError):
    """A ciphertext failed authentication or could not be decrypted."""


class SQLError(ReproError):
    """Base class for SQL engine errors."""


class SQLSyntaxError(SQLError):
    """The query text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class PlanningError(SQLError):
    """The query is well-formed but cannot be planned (unknown table,
    unknown column, unsupported construct...)."""


class EvaluationError(SQLError):
    """A runtime error occurred while evaluating an expression."""


class SchemaError(SQLError):
    """A table or row violates its declared schema."""


class ProtocolError(ReproError):
    """Base class for distributed-protocol failures."""


class DuplicateQueryError(ProtocolError):
    """A query id was posted twice (each posting must be fresh)."""


class UnknownQueryError(ProtocolError):
    """An operation referenced a query id the SSI has never seen."""


class ResultNotReadyError(ProtocolError):
    """The result of a query was fetched before it was published."""


class BackpressureError(ProtocolError):
    """The SSI refused a submission because a bounded per-query queue is
    full; the submitter should back off and retry."""


class AdmissionError(ProtocolError):
    """The SSI refused to admit work because a per-querier quota (active
    queries or in-flight submission bytes) is exhausted.  Unlike
    :class:`BackpressureError` — which is per-query and transient — this
    is a *policy* rejection: the querier holds too much of the SSI
    already.  ``retry_after`` is the server's backoff hint in seconds
    (carried on the ``ERR_ADMISSION`` wire error)."""

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class TransportError(ReproError):
    """A network-transport failure (connection refused/dropped, framing
    violation on the byte stream). Retryable at the client layer."""


class FrameTooLargeError(ProtocolError):
    """A peer declared a frame above the negotiated size limit (answered
    with ``ERR_TOO_LARGE`` on the wire, unlike other framing violations
    which are ``ERR_MALFORMED``)."""


class AccessDeniedError(ProtocolError):
    """The querier's credential does not satisfy the access-control policy."""


class QueryAbortedError(ProtocolError):
    """The query could not run to completion (e.g. no TDS ever connected)."""


class ResourceExhaustedError(ProtocolError):
    """A TDS exceeded a device resource bound (typically RAM for the
    partial-aggregate structure, see §4.2 of the paper)."""


class ConfigurationError(ReproError):
    """Invalid parameters were supplied to a model or simulator."""


class StoreError(ReproError):
    """Base class for durable-store (WAL/snapshot) failures."""


class CorruptLogError(StoreError):
    """The write-ahead log or a snapshot failed its integrity checks
    (CRC mismatch, sequence gap, bad framing) beyond what torn-tail
    recovery may repair.  Raised instead of ever mis-parsing bytes."""


class RollbackDetectedError(ProtocolError):
    """The SSI presented a commitment chain that is not a descendant of
    the state this client already observed — the store was rolled back,
    selectively pruned, or forked (the paper's untrusted-SSI threat
    model, §2.1).  Never retried: this is an integrity alarm."""
