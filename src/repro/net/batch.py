"""Client-side tuple batching for the v3 collection fast path.

The fleet's contribution traffic is many small ``submit_tuples`` calls —
a few tuples per TDS per query.  :class:`TupleBatcher` coalesces them:
contributions accumulate in a per-query buffer and are flushed as one
columnar ``MSG_SUBMIT_TUPLES_BATCH`` frame when the buffer reaches
``max_tuples`` *or* has aged past ``max_delay`` seconds, whichever comes
first.

Contribution semantics are preserved: :meth:`submit` resolves only once
the batch containing those tuples has been acknowledged by the SSI (or
raises if the flush failed), so callers can keep the rule "mark
contributed only after the submission succeeded" without knowing whether
batching is on.

This module is ``tds``-role code: it handles ciphertext produced by the
TDSs and talks *to* the SSI through a client.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Sequence

from repro.core.messages import EncryptedTuple, EncryptedTupleBlock
from repro.exceptions import ProtocolError
from repro.net.client import AsyncSSIClient
from repro.obs import metrics as obs_metrics

_FLUSHES = obs_metrics.REGISTRY.counter(
    "repro_batch_flushes_total",
    "Batch flushes, by what triggered them (size threshold, age, or a "
    "shutdown/explicit drain).",
    ("reason",),
)
_BATCH_SIZE = obs_metrics.REGISTRY.histogram(
    "repro_batch_size_tuples",
    "Tuples per flushed batch.",
    buckets=obs_metrics.SIZE_BUCKETS,
)

_c_flush_size = _FLUSHES.labels(reason="size")
_c_flush_age = _FLUSHES.labels(reason="age")
_c_flush_drain = _FLUSHES.labels(reason="drain")
_h_batch_size = _BATCH_SIZE.labels()


class _PendingBatch:
    """Blocks awaiting flush for one query, plus their waiters.

    Contributions are kept in their already-columnar block form; a flush
    concatenates them (offset rebase only, no payload re-framing) into
    one wire frame."""

    __slots__ = ("blocks", "count", "waiters", "born")

    def __init__(self, born: float) -> None:
        self.blocks: list[EncryptedTupleBlock] = []
        self.count = 0
        self.waiters: list[asyncio.Future[None]] = []
        self.born = born


class TupleBatcher:
    """Coalesce many small tuple submissions into columnar batch frames.

    One batcher owns one :class:`AsyncSSIClient` (its own connection and
    idempotency identity).  Batches are per-query; a size threshold
    flushes inline, and :meth:`run` (a background task) flushes batches
    that aged past ``max_delay`` so a trickle of contributions is never
    stranded."""

    def __init__(
        self,
        client: AsyncSSIClient,
        *,
        max_tuples: int = 256,
        max_delay: float = 0.02,
        sleep: Callable[[float], Awaitable[None]] = asyncio.sleep,
    ) -> None:
        if max_tuples < 1:
            raise ProtocolError("batch size must be >= 1")
        if max_delay <= 0:
            raise ProtocolError("batch flush delay must be > 0")
        self.client = client
        self.max_tuples = max_tuples
        self.max_delay = max_delay
        self._sleep = sleep
        self._pending: dict[str, _PendingBatch] = {}
        self._flush_lock = asyncio.Lock()
        #: batches flushed / tuples coalesced (observability)
        self.batches_flushed = 0
        self.tuples_flushed = 0

    # ------------------------------------------------------------------ #
    async def submit(
        self, query_id: str, tuples: Sequence[EncryptedTuple]
    ) -> None:
        """Queue *tuples* for *query_id* and return once the batch they
        joined has been acknowledged by the SSI."""
        if not tuples:
            return
        await self.submit_block(query_id, EncryptedTupleBlock.from_tuples(tuples))

    async def submit_block(
        self, query_id: str, block: EncryptedTupleBlock
    ) -> None:
        """Queue an already-columnar *block* for *query_id* — the zero-copy
        entry point for the block crypto plane — and return once the batch
        it joined has been acknowledged by the SSI."""
        if not len(block):
            return
        loop = asyncio.get_running_loop()
        batch = self._pending.get(query_id)
        if batch is None:
            batch = _PendingBatch(born=loop.time())
            self._pending[query_id] = batch
        batch.blocks.append(block)
        batch.count += len(block)
        future: asyncio.Future[None] = loop.create_future()
        batch.waiters.append(future)
        if batch.count >= self.max_tuples:
            try:
                await self.flush(query_id, reason="size")
            except BaseException:
                # flush() already failed our own waiter with the same
                # exception; retrieve it so the future never hits the
                # event loop's "exception was never retrieved" reporter,
                # then surface the flush error (once) to the caller.
                if future.done():
                    future.exception()
                else:
                    future.cancel()
                raise
        await future

    async def flush(
        self, query_id: str | None = None, *, reason: str = "drain"
    ) -> None:
        """Flush one query's batch (or every batch when *query_id* is
        None) as columnar frames, resolving or failing its waiters.
        ``reason`` ("size" | "age" | "drain") is recorded per flushed
        batch so the flush-trigger mix is visible in the metrics."""
        if reason == "size":
            flush_counter = _c_flush_size
        elif reason == "age":
            flush_counter = _c_flush_age
        else:
            flush_counter = _c_flush_drain
        async with self._flush_lock:
            ids = [query_id] if query_id is not None else list(self._pending)
            for qid in ids:
                batch = self._pending.pop(qid, None)
                if batch is None or not batch.count:
                    continue
                try:
                    await self.client.submit_tuples_batch(
                        qid, EncryptedTupleBlock.concat(batch.blocks)
                    )
                except BaseException as exc:
                    for waiter in batch.waiters:
                        if not waiter.done():
                            waiter.set_exception(exc)
                    raise
                self.batches_flushed += 1
                self.tuples_flushed += batch.count
                flush_counter.inc()
                _h_batch_size.observe(batch.count)
                for waiter in batch.waiters:
                    if not waiter.done():
                        waiter.set_result(None)

    async def run(self, stop: asyncio.Event) -> None:
        """Background flusher: wake every ``max_delay`` and flush batches
        that have aged past it.  Flush failures surface to the waiters
        (their ``submit`` raises), never kill the flusher."""
        loop = asyncio.get_running_loop()
        while not stop.is_set():
            await self._sleep(self.max_delay)
            now = loop.time()
            stale = [
                qid
                for qid, batch in self._pending.items()
                if now - batch.born >= self.max_delay
            ]
            for qid in stale:
                try:
                    await self.flush(qid, reason="age")
                except Exception:
                    pass  # reported through the batch's waiters
        await self.drain()

    async def drain(self) -> None:
        """Final flush of everything still pending (shutdown path)."""
        try:
            await self.flush()
        except Exception:
            pass  # reported through the waiters
