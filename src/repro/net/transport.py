"""Transports and the driver-facing ``RemoteSSI`` adapter.

A :class:`Transport` moves one request frame to the SSI and returns one
response frame.  Two implementations:

* :class:`LoopbackTransport` — calls an :class:`SSIDispatcher` coroutine
  directly.  Deterministic, no sockets; the default for tests.
* :class:`TCPTransport` — a real ``asyncio`` stream connection with
  reconnect-on-drop; every failure surfaces as
  :class:`~repro.exceptions.TransportError` so the client layer can
  retry.

:class:`RemoteSSI` is the bridge back to the synchronous world: it
satisfies the exact SSI surface the five protocol drivers in
:mod:`repro.protocols` use (``post_query`` ... ``fetch_result``), routing
every call over a transport via a private event loop.  Drivers execute
unchanged against it — over loopback or over real TCP.
"""

from __future__ import annotations

import asyncio
import random
import threading
from typing import Awaitable, Callable, Coroutine, Iterable, TypeVar

from repro.core.messages import (
    EncryptedPartial,
    EncryptedTuple,
    QueryEnvelope,
    QueryResult,
)
from repro.exceptions import ProtocolError, TransportError
from repro.net import frames
from repro.net.client import AsyncSSIClient, RetryPolicy
from repro.obs import metrics as obs_metrics
from repro.obs.spans import TraceContext

T = TypeVar("T")

_CONNECTS = obs_metrics.REGISTRY.counter(
    "repro_transport_connects_total",
    "TCP connections established by client transports (first connect "
    "plus every reconnect-on-drop).",
)
_STREAM_FAILURES = obs_metrics.REGISTRY.counter(
    "repro_transport_stream_failures_total",
    "Client streams torn down (drop, EOF, framing violation, close).",
)
_LATE_RESPONSES = obs_metrics.REGISTRY.counter(
    "repro_transport_late_responses_total",
    "Responses dropped because their correlation id was already "
    "abandoned by a timed-out request.",
)
_WINDOW_INUSE = obs_metrics.REGISTRY.gauge(
    "repro_transport_window_inuse",
    "Requests currently occupying client send-window slots.",
)

_c_connects = _CONNECTS.labels()
_c_stream_failures = _STREAM_FAILURES.labels()
_c_late_responses = _LATE_RESPONSES.labels()
_g_window = _WINDOW_INUSE.labels()

DispatchFn = Callable[[bytes], Awaitable[bytes]]


class Transport:
    """One request frame out, one response frame body back."""

    async def request(self, message: bytes) -> bytes:
        raise NotImplementedError

    async def reset(self) -> None:
        """Discard any connection state so the next request starts on a
        clean stream.  Called by the client after a request is abandoned
        mid-flight (timeout); stateless transports need do nothing."""
        return None

    async def close(self) -> None:  # pragma: no cover - trivial default
        return None


class LoopbackTransport(Transport):
    """In-memory transport: full encode/decode round trip, no sockets.

    The request frame is split exactly as the TCP server would split it
    (length header off, body through the dispatcher), so a protocol bug
    cannot hide in the loopback path."""

    def __init__(self, dispatch: DispatchFn) -> None:
        self._dispatch = dispatch

    async def request(self, message: bytes) -> bytes:
        if len(message) < frames.MIN_FRAME_BYTES:
            raise TransportError("runt frame")
        body = message[frames.LENGTH_PREFIX_BYTES:]
        response = await self._dispatch(body)
        # Responses come back framed; strip the length header like a
        # stream reader would.
        return response[frames.LENGTH_PREFIX_BYTES:]


class TCPTransport(Transport):
    """A persistent, *pipelined* TCP connection, re-established on demand.

    Up to ``window`` requests share the connection concurrently: each
    request is stamped with a fresh correlation id, registered in a
    futures-by-correlation-id map and written to the stream; one
    background reader task routes every response frame to its waiter by
    the echoed id, so responses may complete in any order.

    A *timed-out* request simply abandons its correlation id — the id is
    dropped from the map and its late response (if it ever arrives) is
    discarded by the reader task.  The stream itself stays healthy; only
    a genuine stream failure (drop, EOF, framing violation) tears the
    connection down, fails every pending request with
    :class:`TransportError` and lets the next request reconnect from
    scratch (reconnect-on-drop)."""

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout: float = 5.0,
        max_frame_bytes: int = frames.MAX_FRAME_BYTES,
        window: int = 32,
    ) -> None:
        if window < 1:
            raise ProtocolError("pipeline window must be >= 1")
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.max_frame_bytes = max_frame_bytes
        self.window = window
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task[None] | None = None
        self._pending: dict[int, asyncio.Future[bytes]] = {}
        self._next_corr = 0
        self._window_sem = asyncio.Semaphore(window)
        self._write_lock = asyncio.Lock()
        self._connect_lock = asyncio.Lock()

    # -- connection lifecycle -------------------------------------------- #
    async def _ensure_connected(self) -> None:
        if self._writer is not None:
            return
        async with self._connect_lock:
            if self._writer is not None:
                return
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(self.host, self.port),
                    timeout=self.connect_timeout,
                )
            except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                raise TransportError(
                    f"cannot connect to {self.host}:{self.port}: {exc}"
                ) from None
            self._reader, self._writer = reader, writer
            self._reader_task = asyncio.create_task(
                self._read_loop(reader, writer)
            )
            _c_connects.inc()

    async def _read_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Route response frames to their waiters by correlation id.

        An id with no waiter is the late response of a timed-out request:
        dropped on the floor, and the stream carries on undisturbed."""
        try:
            while True:
                body = await frames.read_frame(reader, self.max_frame_bytes)
                future = self._pending.pop(
                    frames.peek_correlation_id(body), None
                )
                if future is not None and not future.done():
                    future.set_result(body)
                else:
                    _c_late_responses.inc()
        except asyncio.CancelledError:
            raise
        except (ConnectionError, OSError, asyncio.IncompleteReadError) as exc:
            self._stream_failed(f"connection to SSI dropped: {exc}", writer)
        except ProtocolError as exc:
            # A framing violation in a response: the stream position can
            # no longer be trusted, so treat it like a drop.
            self._stream_failed(f"unreadable frame from SSI: {exc}", writer)

    def _stream_failed(
        self, reason: str, owner: asyncio.StreamWriter | None = None
    ) -> None:
        """The stream is broken: fail every in-flight request and abandon
        the connection so the next request reconnects.  *owner* guards
        against a stale reader task (of an already-replaced connection)
        tearing down its successor."""
        if owner is not None and owner is not self._writer:
            return
        if self._writer is not None:
            _c_stream_failures.inc()
        self._abort()
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(TransportError(reason))

    def _next_correlation_id(self) -> int:
        self._next_corr = (self._next_corr % frames.MAX_CORRELATION_ID) + 1
        return self._next_corr

    # -- the request path ------------------------------------------------ #
    async def request(self, message: bytes) -> bytes:
        if len(message) < frames.MIN_FRAME_BYTES:
            raise TransportError("runt frame")
        async with self._window_sem:  # bounded send window (backpressure)
            _g_window.inc()
            try:
                await self._ensure_connected()
                writer = self._writer
                assert writer is not None
                corr = self._next_correlation_id()
                future: asyncio.Future[bytes] = (
                    asyncio.get_running_loop().create_future()
                )
                self._pending[corr] = future
                framed = bytearray(message)
                framed[
                    frames.LENGTH_PREFIX_BYTES + 2 : frames.MIN_FRAME_BYTES
                ] = corr.to_bytes(4, "big")
                try:
                    async with self._write_lock:
                        writer.write(bytes(framed))
                        await writer.drain()
                    return await future
                except (ConnectionError, OSError) as exc:
                    self._stream_failed(f"connection to SSI dropped: {exc}")
                    raise TransportError(
                        f"connection to SSI dropped: {exc}"
                    ) from None
                finally:
                    # Covers success, stream failure *and* cancellation
                    # (a request timeout): the correlation id is
                    # forgotten, so a late response is dropped — the
                    # stream is NOT reset.
                    self._pending.pop(corr, None)
            finally:
                _g_window.dec()

    async def drop(self) -> None:
        """Abruptly abandon the current connection (failure injection:
        'the TDS went offline mid-request')."""
        self._stream_failed("connection dropped")
        await self._reap_reader_task()

    async def reset(self) -> None:
        """After a request timeout the pipelined stream is still healthy —
        the timed-out correlation id was already dropped — so a reset is
        deliberately a no-op.  Stream-level failures tear the connection
        down from the reader task instead."""
        return None

    async def close(self) -> None:
        self._stream_failed("transport closed")
        await self._reap_reader_task()

    def _abort(self) -> None:
        """Synchronously abandon the connection (no graceful close)."""
        writer, self._reader, self._writer = self._writer, None, None
        if writer is not None:
            writer.close()

    async def _reap_reader_task(self) -> None:
        task, self._reader_task = self._reader_task, None
        if task is not None and task is not asyncio.current_task():
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass


class SyncBridge:
    """A private event loop on a daemon thread, for synchronous callers.

    The protocol drivers are synchronous; the network runtime is async.
    The bridge runs coroutines on its own loop so a driver can block on
    network calls without owning (or interfering with) any caller loop."""

    def __init__(self) -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="repro-net-bridge", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def run(self, coro: Coroutine[object, object, T]) -> T:
        if not self._thread.is_alive():
            raise TransportError("bridge loop is closed")
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    def close(self) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=5.0)
        self._loop.close()


class RemoteSSI:
    """Synchronous :class:`SupportingServerInfrastructure` look-alike.

    Implements every SSI method the protocol drivers call, so
    ``SAggProtocol(RemoteSSI.tcp(...), collectors, workers, rng)`` runs
    the unmodified driver over a real wire."""

    def __init__(self, client: AsyncSSIClient, bridge: SyncBridge | None = None) -> None:
        self._client = client
        self._bridge = bridge if bridge is not None else SyncBridge()

    # -- construction ---------------------------------------------------- #
    @classmethod
    def loopback(
        cls,
        dispatch: DispatchFn,
        policy: RetryPolicy | None = None,
        rng: random.Random | None = None,
    ) -> "RemoteSSI":
        client = AsyncSSIClient(LoopbackTransport(dispatch), policy, rng)
        return cls(client)

    @classmethod
    def tcp(
        cls,
        host: str,
        port: int,
        policy: RetryPolicy | None = None,
        rng: random.Random | None = None,
        window: int = 32,
    ) -> "RemoteSSI":
        client = AsyncSSIClient(
            TCPTransport(host, port, window=window), policy, rng
        )
        return cls(client)

    def close(self) -> None:
        self._bridge.run(self._client.close())
        self._bridge.close()

    # -- observability ---------------------------------------------------- #
    def hello(self) -> tuple[int, int]:
        """Negotiate wire version/capabilities with the peer SSI."""
        return self._bridge.run(self._client.hello())

    def stats(self) -> str:
        """The SSI's metrics in Prometheus text form (MSG_GET_STATS)."""
        return self._bridge.run(self._client.get_stats())

    def set_trace_context(self, context: TraceContext | None) -> None:
        self._client.set_trace_context(context)

    # -- the SSI surface drivers use ------------------------------------- #
    def post_query(self, envelope: QueryEnvelope, tds_id: str | None = None) -> None:
        self._bridge.run(self._client.post_query(envelope, tds_id))

    def active_queries(self) -> list[QueryEnvelope]:
        return [
            envelope
            for envelope, _meta in self._bridge.run(self._client.active_queries())
        ]

    def envelope(self, query_id: str) -> QueryEnvelope:
        envelope, _meta = self._bridge.run(self._client.fetch_query(query_id))
        return envelope

    def submit_tuples(
        self, query_id: str, tuples: Iterable[EncryptedTuple]
    ) -> None:
        self._bridge.run(self._client.submit_tuples(query_id, list(tuples)))

    def collected_count(self, query_id: str) -> int:
        return self._bridge.run(self._client.collected_count(query_id))

    def evaluate_size_clause(
        self, query_id: str, elapsed_seconds: float = 0.0
    ) -> bool:
        return self._bridge.run(
            self._client.evaluate_size_clause(query_id, elapsed_seconds)
        )

    def close_collection(self, query_id: str) -> None:
        self._bridge.run(self._client.close_collection(query_id))

    def collection_closed(self, query_id: str) -> bool:
        # Not wire-exposed separately: closed queries leave the global
        # querybox, which active_queries reflects; drivers do not call
        # this, it exists for interface parity with the local SSI.
        return all(
            envelope.query_id != query_id for envelope in self.active_queries()
        )

    def covering_result(self, query_id: str) -> list[EncryptedTuple]:
        return self._bridge.run(self._client.covering_result(query_id))

    def submit_partials(
        self, query_id: str, partials: Iterable[EncryptedPartial]
    ) -> None:
        self._bridge.run(self._client.submit_partials(query_id, list(partials)))

    def take_partials(self, query_id: str) -> list[EncryptedPartial]:
        return self._bridge.run(self._client.take_partials(query_id))

    def partial_count(self, query_id: str) -> int:
        return self._bridge.run(self._client.partial_count(query_id))

    def store_result_rows(self, query_id: str, rows: Iterable[bytes]) -> None:
        self._bridge.run(self._client.store_result_rows(query_id, list(rows)))

    def publish_result(self, query_id: str) -> None:
        self._bridge.run(self._client.publish_result(query_id))

    def result_ready(self, query_id: str) -> bool:
        return self._bridge.run(self._client.result_ready(query_id))

    def fetch_result(self, query_id: str) -> QueryResult:
        return self._bridge.run(self._client.fetch_result(query_id))
