"""Concurrent querier-side execution: N queries over one connection.

The fleet side already serves every active query per poll
(:meth:`~repro.net.fleet.FleetRunner._poll_once`); this module is the
querier-side counterpart.  :class:`MultiQueryRunner` posts a batch of
queries through one shared multiplexed :class:`QuerierClient` and awaits
their results concurrently, so the wire round trips and the fleet's
collection/aggregation phases of different queries overlap instead of
serializing.  A semaphore bounds how many queries are in flight at once
— under a server-side admission policy the client's ERR_ADMISSION
backoff handles the rest, so a runner whose concurrency exceeds its
quota degrades to the quota rather than failing.

Trust boundary: client role.  Decryption happens in the caller-supplied
:class:`~repro.protocols.base.Querier`, never here against the SSI.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.exceptions import ProtocolError
from repro.net.client import QuerierClient
from repro.net.frames import QueryMeta
from repro.protocols.base import Querier


@dataclass(frozen=True)
class QuerySpec:
    """One query to run: SQL (SIZE clause and all) plus scheduling meta.

    ``protocol`` and ``params`` become the posted
    :class:`~repro.net.frames.QueryMeta` — fleet-mode scheduling shape,
    not query content."""

    sql: str
    protocol: str = "s_agg"
    params: dict[str, float] = field(default_factory=dict)

    def meta(self) -> QueryMeta:
        return QueryMeta(self.protocol, dict(self.params))


@dataclass
class QueryOutcome:
    """One completed query: its decrypted rows and end-to-end latency
    (post → published result fetched)."""

    query_id: str
    sql: str
    rows: list[dict[str, Any]]
    seconds: float


@dataclass
class MultiQueryStats:
    """Aggregate shape of one batch run, BENCH_multiq's vocabulary."""

    outcomes: list[QueryOutcome]
    wall_seconds: float

    @property
    def queries_per_s(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return len(self.outcomes) / self.wall_seconds

    def _percentile(self, q: float) -> float:
        latencies = sorted(outcome.seconds for outcome in self.outcomes)
        if not latencies:
            return 0.0
        rank = max(0, min(len(latencies) - 1, round(q * (len(latencies) - 1))))
        return latencies[rank]

    @property
    def p50_s(self) -> float:
        return self._percentile(0.50)

    @property
    def p95_s(self) -> float:
        return self._percentile(0.95)


class MultiQueryRunner:
    """Run batches of queries concurrently against one SSI endpoint."""

    def __init__(
        self,
        querier: Querier,
        client: QuerierClient,
        *,
        concurrency: int = 4,
        poll_interval: float = 0.02,
        result_timeout: float = 60.0,
        id_factory: Callable[[], str] | None = None,
    ) -> None:
        if concurrency < 1:
            raise ProtocolError("concurrency must be >= 1")
        self.querier = querier
        self.client = client
        self.concurrency = concurrency
        self.poll_interval = poll_interval
        self.result_timeout = result_timeout
        #: overrides the querier's process-unique query ids — independent
        #: CLI processes hitting one served SSI need globally unique ones
        self.id_factory = id_factory

    async def run(self, specs: Sequence[QuerySpec]) -> MultiQueryStats:
        """Post every spec and await every result; queries overlap up to
        ``concurrency`` at a time.  Outcomes keep spec order."""
        semaphore = asyncio.Semaphore(self.concurrency)

        async def one(spec: QuerySpec) -> QueryOutcome:
            async with semaphore:
                query_id = self.id_factory() if self.id_factory else None
                envelope = self.querier.make_envelope(
                    spec.sql, query_id=query_id
                )
                started = time.perf_counter()
                await self.client.post_query(envelope, meta=spec.meta())
                result = await self.client.wait_result(
                    envelope.query_id,
                    poll_interval=self.poll_interval,
                    timeout=self.result_timeout,
                )
                # bulk decrypt is synchronous CPU work: off the loop, so
                # a big result does not stall the other in-flight queries
                rows = await asyncio.to_thread(
                    self.querier.decrypt_result, result
                )
                return QueryOutcome(
                    query_id=envelope.query_id,
                    sql=spec.sql,
                    rows=rows,
                    seconds=time.perf_counter() - started,
                )

        started = time.perf_counter()
        outcomes = await asyncio.gather(*(one(spec) for spec in specs))
        return MultiQueryStats(
            outcomes=list(outcomes),
            wall_seconds=time.perf_counter() - started,
        )
