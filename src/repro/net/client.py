"""Async clients for the SSI wire protocol.

:class:`AsyncSSIClient` is the low-level RPC surface: one typed method
per wire operation, with a configurable request timeout and bounded
retries under jittered exponential backoff (:class:`RetryPolicy`).
Transport failures (drops, timeouts) and ``ERR_BACKPRESSURE`` responses
are retried; *typed* application errors (duplicate/unknown query ids,
result-not-ready) are raised immediately as the matching exception from
:mod:`repro.exceptions` — the same types the in-process SSI raises, so
callers cannot tell a remote SSI from a local one by its failures.

Mutating requests (post_query, tuple/partial submissions, result rows)
carry an idempotency key — a per-client id plus a sequence number baked
into the request bytes once per *logical* call — so a retry after a lost
response replays the identical request and the dispatcher drops the
duplicate instead of applying it twice.  Semantics are therefore
exactly-once per logical client call while the client keeps retrying;
only a caller that gives up and later re-issues the operation as a *new*
call reintroduces at-least-once behaviour.

:class:`TDSClient` and :class:`QuerierClient` are role-named views of the
same surface (a TDS polls queries/partitions and submits ciphertext; a
querier posts queries and fetches results).
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Awaitable, Callable, Sequence

from repro.core.messages import (
    EncryptedPartial,
    EncryptedTuple,
    EncryptedTupleBlock,
    QueryEnvelope,
    QueryResult,
)
from repro.exceptions import (
    AdmissionError,
    BackpressureError,
    DuplicateQueryError,
    ProtocolError,
    ResultNotReadyError,
    RollbackDetectedError,
    TransportError,
    UnknownQueryError,
)
from repro.net import frames
from repro.net.frames import QueryMeta, Reader, WorkUnit, Writer
from repro.obs import metrics as obs_metrics
from repro.obs.spans import TraceContext
from repro.store.commitment import Commitment

if TYPE_CHECKING:  # transport.py imports this module (RemoteSSI wiring)
    from repro.net.transport import Transport

_CODE_TO_EXC: dict[int, type[ProtocolError]] = {
    frames.ERR_DUPLICATE_QUERY: DuplicateQueryError,
    frames.ERR_UNKNOWN_QUERY: UnknownQueryError,
    frames.ERR_RESULT_NOT_READY: ResultNotReadyError,
    frames.ERR_BACKPRESSURE: BackpressureError,
    frames.ERR_ADMISSION: AdmissionError,
}

_RETRIES = obs_metrics.REGISTRY.counter(
    "repro_client_retries_total",
    "Client-side request retries, by what triggered them.",
    ("reason",),
)
_TIMEOUTS = obs_metrics.REGISTRY.counter(
    "repro_client_request_timeouts_total",
    "Requests abandoned mid-flight on timeout (each abandons its "
    "correlation id on a pipelined transport).",
)
_c_retry_timeout = _RETRIES.labels(reason="timeout")
_c_retry_transport = _RETRIES.labels(reason="transport")
_c_retry_backpressure = _RETRIES.labels(reason="backpressure")
_c_retry_admission = _RETRIES.labels(reason="admission")
_c_timeouts = _TIMEOUTS.labels()


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with jittered exponential backoff.

    ``attempt`` 0 is the first *retry*; its delay is ``backoff_base``,
    doubling (``backoff_factor``) up to ``backoff_max``, plus a jitter
    fraction drawn from the caller's seeded RNG — deterministic under a
    fixed seed, decorrelated across a fleet."""

    request_timeout: float = 5.0
    max_retries: int = 4
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.1

    def delay(self, attempt: int, rng: random.Random) -> float:
        base = min(
            self.backoff_max, self.backoff_base * self.backoff_factor**attempt
        )
        return base * (1.0 + self.jitter * rng.random())


class AsyncSSIClient:
    """One logical client connection to a (possibly remote) SSI."""

    def __init__(
        self,
        transport: Transport,
        policy: RetryPolicy | None = None,
        rng: random.Random | None = None,
        sleep: Callable[[float], Awaitable[None]] = asyncio.sleep,
    ) -> None:
        self.transport = transport
        self.policy = policy if policy is not None else RetryPolicy()
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep
        #: transport-level retries performed so far (observability/tests)
        self.retries = 0
        # Idempotency identity: a connection-layer pseudonym (not a TDS
        # id) plus a per-call sequence number; retried requests reuse the
        # bytes of the original, so the server can drop replays.
        self._client_id = f"{self._rng.getrandbits(64):016x}"
        self._seq = 0
        # Version negotiation state.  Until hello() has run, requests are
        # encoded at the floor version (every supported peer parses it);
        # hello upgrades the connection to min(ours, theirs) and learns
        # the peer's capability bits — a pre-v4 peer answers hello with
        # ERR_UNKNOWN_OP, which settles the connection on v3/no-caps.
        self._wire_version = frames.MIN_PROTOCOL_VERSION
        self._peer_caps = 0
        self._hello_done = False
        # Serializes the handshake: without it, two coroutines issuing
        # their first request concurrently would both run hello() and the
        # loser could clobber the winner's negotiated state.
        self._hello_lock = asyncio.Lock()
        #: trace context attached (as the v4 EXT_TRACE extension) to
        #: every request once negotiated; None = no propagation.
        self.trace_context: TraceContext | None = None
        #: highest durable commitment observed on this connection, from
        #: EXT_COMMITMENT ack extensions or get_commitment() — the
        #: client-side anchor for rollback detection.
        self.last_commitment: Commitment | None = None

    async def close(self) -> None:
        await self.transport.close()

    # ------------------------------------------------------------------ #
    # version/capability handshake (wire v4)
    # ------------------------------------------------------------------ #
    def set_trace_context(self, context: TraceContext | None) -> None:
        """Propagate *context* with every subsequent request.  Triggers a
        lazy hello() on the next call so a v3 peer is never sent a v4
        frame it cannot parse."""
        self.trace_context = context

    async def hello(self) -> tuple[int, int]:
        """Negotiate (version, capabilities) with the peer; idempotent."""
        if self._hello_done:
            return self._wire_version, self._peer_caps
        async with self._hello_lock:
            if self._hello_done:  # raced another first caller; it won
                return self._wire_version, self._peer_caps
            w = Writer()
            frames.write_hello(w, frames.PROTOCOL_VERSION, frames.CAPABILITIES)
            request = frames.pack_frame(
                frames.MSG_HELLO, w.getvalue(), version=frames.MIN_PROTOCOL_VERSION
            )
            try:
                r = await self._send(request)
                peer_version, peer_caps = frames.read_hello(r)
                r.expect_end()
                self._wire_version = min(frames.PROTOCOL_VERSION, peer_version)
                if self._wire_version < frames.MIN_PROTOCOL_VERSION:
                    raise ProtocolError(
                        f"peer speaks protocol {peer_version}, below our floor "
                        f"{frames.MIN_PROTOCOL_VERSION}"
                    )
                self._peer_caps = peer_caps
            except (UnknownQueryError, DuplicateQueryError, ResultNotReadyError):
                raise  # impossible for hello; don't mask a server bug
            except ProtocolError:
                # ERR_UNKNOWN_OP from a pre-v4 peer: settle on the floor.
                self._wire_version = frames.MIN_PROTOCOL_VERSION
                self._peer_caps = 0
            self._hello_done = True
        return self._wire_version, self._peer_caps

    async def get_stats(self) -> str:
        """Fetch the SSI's metrics in Prometheus text form (v4 peers)."""
        r = await self._call(frames.MSG_GET_STATS, b"")
        text = r.text()
        r.expect_end()
        return text

    async def get_health(self) -> dict:
        """Fetch the SSI's rolling-window health verdict (CAP_HEALTH).

        A server running without a monitor answers ``monitored=False``
        with an ``ok`` verdict, so callers can poll unconditionally.
        """
        r = await self._call(frames.MSG_GET_HEALTH, b"")
        monitored = r.boolean()
        if not monitored:
            r.expect_end()
            return {
                "monitored": False,
                "status": "ok",
                "reasons": [],
                "eventloop_lag_seconds": 0.0,
                "window_seconds": 0.0,
            }
        status = r.u8()
        lag = r.f64()
        window = r.f64()
        reasons = [r.text() for _ in range(r.u32())]
        r.expect_end()
        return {
            "monitored": True,
            "status": {0: "ok", 1: "degraded", 2: "critical"}.get(
                status, "critical"
            ),
            "reasons": reasons,
            "eventloop_lag_seconds": lag,
            "window_seconds": window,
        }

    # ------------------------------------------------------------------ #
    # core call loop: timeout -> typed error mapping -> bounded retry
    # ------------------------------------------------------------------ #
    async def _call(self, msg_type: int, payload: bytes) -> Reader:
        extensions: tuple[tuple[int, bytes], ...] = ()
        if self.trace_context is not None:
            if not self._hello_done:
                await self.hello()
            if self._wire_version >= 4 and (
                self._peer_caps & frames.CAP_TRACE_CONTEXT
            ):
                extensions = (
                    (frames.EXT_TRACE, self.trace_context.to_wire()),
                )
        request = frames.pack_frame(
            msg_type, payload, version=self._wire_version, extensions=extensions
        )
        return await self._send(request)

    async def _send(self, request: bytes) -> Reader:
        attempt = 0
        while True:
            try:
                body = await asyncio.wait_for(
                    self.transport.request(request),
                    timeout=self.policy.request_timeout,
                )
                return self._unwrap(body)
            except (
                TransportError,
                asyncio.TimeoutError,
                AdmissionError,
                BackpressureError,
            ) as exc:
                if isinstance(exc, asyncio.TimeoutError):
                    # The request was abandoned mid-flight.  On the
                    # pipelined TCP transport the timed-out correlation
                    # id is already dropped and the stream stays up, so
                    # reset() is a no-op; transports without response
                    # routing use it to discard connection state so the
                    # retry starts on a clean stream.
                    _c_timeouts.inc()
                    await self.transport.reset()
                if attempt >= self.policy.max_retries:
                    raise
                delay = self.policy.delay(attempt, self._rng)
                if isinstance(exc, asyncio.TimeoutError):
                    _c_retry_timeout.inc()
                elif isinstance(exc, AdmissionError):
                    # Honour the server's backoff hint: an admission
                    # quota frees when a result publishes, which our own
                    # exponential schedule knows nothing about.
                    _c_retry_admission.inc()
                    delay = max(delay, exc.retry_after)
                elif isinstance(exc, BackpressureError):
                    _c_retry_backpressure.inc()
                else:
                    _c_retry_transport.inc()
                await self._sleep(delay)
                attempt += 1
                self.retries += 1

    def _idem(self, w: Writer) -> Writer:
        """Stamp a mutating request with this client's idempotency key.

        Called once per logical operation (not per attempt): retries
        resend the identical bytes, so the dispatcher can recognise and
        drop a replay whose first application succeeded but whose
        response was lost."""
        self._seq += 1
        w.text(self._client_id)
        w.i64(self._seq)
        return w

    def _unwrap(self, body: bytes) -> Reader:
        _version, msg_type, _corr, exts, reader = frames.unpack_frame_ext(body)
        if msg_type == frames.MSG_OK:
            raw = exts.get(frames.EXT_COMMITMENT)
            if raw is not None:
                self._observe_commitment(Commitment.from_wire(raw))
            return reader
        if msg_type == frames.MSG_ERROR:
            code = reader.u8()
            message = reader.text()
            if code == frames.ERR_ADMISSION:
                # Optional trailing backoff hint (older servers omit it;
                # error payloads are the one shape never expect_end()ed,
                # so the extension is compatible both ways).
                retry_after = reader.f64() if reader.remaining() >= 8 else 0.0
                raise AdmissionError(message, retry_after=retry_after)
            raise _CODE_TO_EXC.get(code, ProtocolError)(message)
        raise ProtocolError(f"unexpected response type 0x{msg_type:02x}")

    def _observe_commitment(self, commitment: Commitment) -> None:
        """Track the highest durable commitment seen on this connection.

        Passive check only: two acks pipelined on one connection can be
        *observed* out of order, so a lower count here is a stale ack,
        not evidence of rollback — it is ignored.  An unchanged count
        with a different head, however, means two distinct logs of the
        same length: a definite rewrite.  The strong rollback check is
        :meth:`verify_freshness`, which demands an inclusion proof for
        exactly the commitment this method recorded."""
        seen = self.last_commitment
        if seen is not None:
            if commitment.count == seen.count and commitment.head != seen.head:
                raise RollbackDetectedError(
                    f"SSI commitment head changed at count {seen.count}: "
                    "the log was rewritten"
                )
            if commitment.count < seen.count:
                return
        self.last_commitment = commitment

    # ------------------------------------------------------------------ #
    # wire operations
    # ------------------------------------------------------------------ #
    async def ping(self) -> None:
        (await self._call(frames.MSG_PING, b"")).expect_end()

    async def get_commitment(
        self, check: Commitment | None = None
    ) -> Commitment | None:
        """Fetch the SSI's current durable commitment (None when the
        server runs without a store).

        With *check*, also demand an inclusion proof: the head the
        server's chain had when it was ``check.count`` records long.  A
        missing or mismatching proof means the chain the server now
        serves does not extend the one *check* was cut from — a rollback
        or selective drop of acknowledged state — and raises
        :class:`RollbackDetectedError`."""
        w = Writer()
        if check is None:
            w.boolean(False)
        else:
            w.boolean(True)
            w.i64(check.count)
            w.blob(check.head)
        r = await self._call(frames.MSG_GET_COMMITMENT, w.getvalue())
        if not r.boolean():
            r.expect_end()
            return None
        current = Commitment(count=r.i64(), head=r.blob())
        proof = r.opt_blob()
        r.expect_end()
        if check is not None:
            if current.count < check.count or proof != check.head:
                raise RollbackDetectedError(
                    f"SSI cannot prove its {current.count}-record chain "
                    f"extends the {check.count}-record commitment this "
                    "client observed: state was rolled back"
                )
        self._observe_commitment(current)
        return current

    async def verify_freshness(self) -> Commitment | None:
        """Check that the server's chain still extends the last
        commitment this client observed (no-op anchor when none was).
        Returns the server's current commitment, or None without a
        store; raises :class:`RollbackDetectedError` on rollback."""
        return await self.get_commitment(self.last_commitment)

    async def post_query(
        self,
        envelope: QueryEnvelope,
        tds_id: str | None = None,
        meta: QueryMeta | None = None,
    ) -> None:
        w = self._idem(Writer())
        frames.write_envelope(w, envelope)
        w.opt_text(tds_id)
        frames.write_meta(w, meta if meta is not None else QueryMeta())
        (await self._call(frames.MSG_POST_QUERY, w.getvalue())).expect_end()

    async def fetch_query(self, query_id: str) -> tuple[QueryEnvelope, QueryMeta]:
        r = await self._call(frames.MSG_FETCH_QUERY, Writer().text(query_id).getvalue())
        envelope = frames.read_envelope(r)
        meta = frames.read_meta(r)
        r.expect_end()
        return envelope, meta

    async def active_queries(self) -> list[tuple[QueryEnvelope, QueryMeta]]:
        r = await self._call(frames.MSG_ACTIVE_QUERIES, b"")
        result = []
        for _ in range(r.count(limit=100_000)):
            envelope = frames.read_envelope(r)
            meta = frames.read_meta(r)
            result.append((envelope, meta))
        r.expect_end()
        return result

    async def submit_tuples(
        self, query_id: str, tuples: Sequence[EncryptedTuple]
    ) -> None:
        w = self._idem(Writer()).text(query_id)
        frames.write_items(w, list(tuples))
        (await self._call(frames.MSG_SUBMIT_TUPLES, w.getvalue())).expect_end()

    async def submit_tuples_batch(
        self,
        query_id: str,
        tuples: Sequence[EncryptedTuple] | EncryptedTupleBlock,
    ) -> None:
        """Submit many tuples as one columnar ``MSG_SUBMIT_TUPLES_BATCH``
        frame (the v3 fast path): one lengths vector and one payload
        buffer instead of per-tuple framing.  Semantically identical to
        :meth:`submit_tuples` — same idempotency key discipline, same
        server-side observations."""
        if isinstance(tuples, EncryptedTupleBlock):
            block = tuples
        else:
            block = EncryptedTupleBlock.from_tuples(list(tuples))
        w = self._idem(Writer()).text(query_id)
        frames.write_tuple_block(w, block)
        (
            await self._call(frames.MSG_SUBMIT_TUPLES_BATCH, w.getvalue())
        ).expect_end()

    async def submit_partials(
        self, query_id: str, partials: Sequence[EncryptedPartial]
    ) -> None:
        w = self._idem(Writer()).text(query_id)
        frames.write_items(w, list(partials))
        (await self._call(frames.MSG_SUBMIT_PARTIALS, w.getvalue())).expect_end()

    async def collected_count(self, query_id: str) -> int:
        r = await self._call(
            frames.MSG_COLLECTED_COUNT, Writer().text(query_id).getvalue()
        )
        count = r.i64()
        r.expect_end()
        return count

    async def evaluate_size_clause(
        self, query_id: str, elapsed_seconds: float = 0.0
    ) -> bool:
        w = Writer().text(query_id)
        w.f64(elapsed_seconds)
        r = await self._call(frames.MSG_EVALUATE_SIZE, w.getvalue())
        met = r.boolean()
        r.expect_end()
        return met

    async def close_collection(self, query_id: str) -> None:
        (
            await self._call(
                frames.MSG_CLOSE_COLLECTION, Writer().text(query_id).getvalue()
            )
        ).expect_end()

    async def covering_result(self, query_id: str) -> list[EncryptedTuple]:
        r = await self._call(
            frames.MSG_COVERING_RESULT, Writer().text(query_id).getvalue()
        )
        items = frames.read_tuples(r)
        r.expect_end()
        return items

    async def take_partials(self, query_id: str) -> list[EncryptedPartial]:
        r = await self._call(
            frames.MSG_TAKE_PARTIALS, Writer().text(query_id).getvalue()
        )
        items = frames.read_partials(r)
        r.expect_end()
        return items

    async def partial_count(self, query_id: str) -> int:
        r = await self._call(
            frames.MSG_PARTIAL_COUNT, Writer().text(query_id).getvalue()
        )
        count = r.i64()
        r.expect_end()
        return count

    async def store_result_rows(
        self, query_id: str, rows: Sequence[bytes]
    ) -> None:
        w = self._idem(Writer()).text(query_id)
        frames.write_rows(w, list(rows))
        (await self._call(frames.MSG_STORE_RESULT_ROWS, w.getvalue())).expect_end()

    async def publish_result(self, query_id: str) -> None:
        (
            await self._call(
                frames.MSG_PUBLISH_RESULT, Writer().text(query_id).getvalue()
            )
        ).expect_end()

    async def result_ready(self, query_id: str) -> bool:
        r = await self._call(
            frames.MSG_RESULT_READY, Writer().text(query_id).getvalue()
        )
        ready = r.boolean()
        r.expect_end()
        return ready

    async def fetch_result(self, query_id: str) -> QueryResult:
        r = await self._call(
            frames.MSG_FETCH_RESULT, Writer().text(query_id).getvalue()
        )
        result = frames.read_result(r)
        r.expect_end()
        return result

    async def fetch_partition(
        self, query_id: str, tds_id: str
    ) -> tuple[int, WorkUnit | None]:
        w = Writer().text(query_id)
        w.text(tds_id)
        r = await self._call(frames.MSG_FETCH_PARTITION, w.getvalue())
        status = r.u8()
        if status == frames.STATUS_WORK:
            unit = frames.read_work_unit(r)
            r.expect_end()
            return status, unit
        if status not in (frames.STATUS_WAIT, frames.STATUS_DONE):
            raise ProtocolError(f"unknown fetch_partition status 0x{status:02x}")
        r.expect_end()
        return status, None

    async def submit_partition_result(
        self,
        query_id: str,
        partition_id: int,
        tds_id: str,
        *,
        partials: Sequence[EncryptedPartial] | None = None,
        rows: Sequence[bytes] | None = None,
    ) -> None:
        if (partials is None) == (rows is None):
            raise ProtocolError("submit exactly one of partials or rows")
        w = Writer().text(query_id)
        w.i64(partition_id)
        w.text(tds_id)
        if partials is not None:
            w.u8(frames.RESULT_PARTIALS)
            frames.write_items(w, list(partials))
        else:
            w.u8(frames.RESULT_ROWS)
            frames.write_rows(w, list(rows or []))
        (
            await self._call(frames.MSG_SUBMIT_PARTITION_RESULT, w.getvalue())
        ).expect_end()


class TDSClient(AsyncSSIClient):
    """A TDS-side connection: poll queries and partitions, push ciphertext."""


class QuerierClient(AsyncSSIClient):
    """A querier-side connection: post queries, await published results."""

    async def wait_result(
        self, query_id: str, poll_interval: float = 0.05, timeout: float = 60.0
    ) -> QueryResult:
        """Poll ``result_ready`` until the result is published, then fetch
        it.  Raises :class:`TransportError` on overall timeout."""
        deadline = asyncio.get_running_loop().time() + timeout
        while True:
            if await self.result_ready(query_id):
                return await self.fetch_result(query_id)
            if asyncio.get_running_loop().time() >= deadline:
                raise TransportError(
                    f"result of {query_id!r} not published within {timeout}s"
                )
            await self._sleep(poll_interval)
