"""The SSI as a network service.

:class:`SSIDispatcher` maps wire requests onto one
:class:`~repro.ssi.server.SupportingServerInfrastructure` (plus the
per-query :class:`~repro.net.coordinator.QueryCoordinator` for fleet-mode
queries).  It is transport-agnostic: the in-memory loopback transport
calls :meth:`SSIDispatcher.dispatch` directly, and :class:`SSIServer`
exposes the same dispatcher over ``asyncio.start_server`` TCP.

Trust boundary: this module is ``ssi``-role under the privacy lint — it
may never name plaintext rows, key material or TDS internals.  Everything
it handles is a ciphertext blob, a partition id or paper-sanctioned
cleartext (SIZE clause, credentials, protocol shape).

Error discipline: SSI-side failures are mapped to *typed* wire error
codes; Python tracebacks never cross the transport.

Backpressure: tuple/partial submissions land in a bounded per-query
queue.  A full queue answers ``ERR_BACKPRESSURE`` (clients back off and
retry); reads force a flush first so a single connection always observes
its own writes.
"""

from __future__ import annotations

import asyncio
import logging
import time
from typing import TYPE_CHECKING, Awaitable, Callable, Protocol, TypeVar

if TYPE_CHECKING:  # repro.store imports this module's siblings; keep lazy
    from repro.obs.health import HealthMonitor
    from repro.store.recovery import DurableStore
    from repro.store.snapshot import SnapshotState

from repro.core.messages import EncryptedTupleBlock
from repro.exceptions import (
    AdmissionError,
    BackpressureError,
    DuplicateQueryError,
    FrameTooLargeError,
    ProtocolError,
    ResultNotReadyError,
    UnknownQueryError,
)
from repro.net import frames
from repro.net.coordinator import SUPPORTED_PROTOCOLS, QueryCoordinator
from repro.net.frames import QueryMeta, Reader, Writer
from repro.obs import logs as obs_logs
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.ssi.admission import AdmissionController, AdmissionPolicy, FairDrain
from repro.ssi.server import SupportingServerInfrastructure

logger = logging.getLogger(__name__)

# --------------------------------------------------------------------- #
# instruments (declared once at import; children resolved up front so
# the dispatch hot path is a plain `+=`)
# --------------------------------------------------------------------- #
_REQUESTS = obs_metrics.REGISTRY.counter(
    "repro_ssi_requests_total",
    "Requests dispatched by the SSI, by message type and outcome.",
    ("msg_type", "outcome"),
)
_REQUEST_SECONDS = obs_metrics.REGISTRY.histogram(
    "repro_ssi_request_seconds",
    "Wall time spent inside SSIDispatcher.dispatch, by message type.",
    ("msg_type",),
)
_BACKPRESSURE = obs_metrics.REGISTRY.counter(
    "repro_ssi_backpressure_total",
    "Submissions rejected because a per-query queue was full.",
)
_REPLAYS = obs_metrics.REGISTRY.counter(
    "repro_ssi_replays_total",
    "Mutating requests dropped as idempotent replays.",
)
_INTERNAL_ERRORS = obs_metrics.REGISTRY.counter(
    "server_internal_errors_total",
    "Unhandled exceptions answered as ERR_INTERNAL, by message type.",
    ("msg_type",),
)
_FRAMES = obs_metrics.REGISTRY.counter(
    "repro_ssi_frames_total",
    "Frames crossing SSI TCP connections, by direction.",
    ("direction",),
)
_BYTES = obs_metrics.REGISTRY.counter(
    "repro_ssi_bytes_total",
    "Bytes crossing SSI TCP connections (incl. length prefix), by direction.",
    ("direction",),
)
_CONNECTIONS_OPEN = obs_metrics.REGISTRY.gauge(
    "repro_ssi_connections_open",
    "Currently open SSI TCP connections.",
)
_CONNECTIONS_TOTAL = obs_metrics.REGISTRY.counter(
    "repro_ssi_connections_total",
    "SSI TCP connections accepted since process start.",
)
_INFLIGHT = obs_metrics.REGISTRY.gauge(
    "repro_ssi_inflight_requests",
    "Requests currently being handled across all connections.",
)

_c_backpressure = _BACKPRESSURE.labels()
_c_replays = _REPLAYS.labels()


_ChildT = TypeVar("_ChildT")


class _Labelled(Protocol[_ChildT]):
    def labels(self, **labels: str) -> _ChildT: ...


def _per_name(metric: _Labelled[_ChildT], **fixed: str) -> Callable[[str], _ChildT]:
    """Lazily cache one labelled child per message-type name.

    ``labels(**kwargs)`` costs ~1.7µs (key build + validation); at
    dispatch rates that is measurable, so the ok/latency instruments on
    the hot path resolve their child through a plain dict instead."""
    cache: dict[str, _ChildT] = {}

    def resolve(name: str) -> _ChildT:
        child = cache.get(name)
        if child is None:
            child = cache[name] = metric.labels(msg_type=name, **fixed)
        return child

    return resolve


_req_ok = _per_name(_REQUESTS, outcome="ok")
_req_seconds = _per_name(_REQUEST_SECONDS)
_c_frames_in = _FRAMES.labels(direction="in")
_c_frames_out = _FRAMES.labels(direction="out")
_c_bytes_in = _BYTES.labels(direction="in")
_c_bytes_out = _BYTES.labels(direction="out")
_g_connections = _CONNECTIONS_OPEN.labels()
_c_connections = _CONNECTIONS_TOTAL.labels()
_g_inflight = _INFLIGHT.labels()

#: msg-type byte -> stable lowercase label ("post_query", "ping", ...)
_MSG_NAMES = {
    value: name[len("MSG_") :].lower()
    for name, value in vars(frames).items()
    if name.startswith("MSG_") and isinstance(value, int)
}


def _msg_name(msg_type: int) -> str:
    return _MSG_NAMES.get(msg_type, f"0x{msg_type:02x}")

#: exception -> wire error code (the typed-error satellite)
_ERROR_CODES: tuple[tuple[type[ProtocolError], int], ...] = (
    (DuplicateQueryError, frames.ERR_DUPLICATE_QUERY),
    (UnknownQueryError, frames.ERR_UNKNOWN_QUERY),
    (ResultNotReadyError, frames.ERR_RESULT_NOT_READY),
    (AdmissionError, frames.ERR_ADMISSION),
    (BackpressureError, frames.ERR_BACKPRESSURE),
)


def _error_code(exc: ProtocolError) -> int:
    for exc_type, code in _ERROR_CODES:
        if isinstance(exc, exc_type):
            return code
    return frames.ERR_INTERNAL


class _SubmissionQueue:
    """Bounded buffer of not-yet-applied submissions for one query.

    An entry is either a list of tuples/partials ("tuples"/"partials")
    or one columnar :class:`~repro.core.messages.EncryptedTupleBlock`
    ("block") — a whole batch frame counts as one pending entry.  Each
    entry carries its request's idempotency key so a durable dispatcher
    can journal the key atomically with the mutation it guarded."""

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self.pending: list[
            tuple[
                str,
                list | EncryptedTupleBlock,
                tuple[str, int],
                bytes | None,
                int,
            ]
        ] = []

    def push(
        self,
        kind: str,
        items: list | EncryptedTupleBlock,
        idem: tuple[str, int],
        wire: bytes | memoryview | None = None,
        nbytes: int = 0,
    ) -> None:
        if len(self.pending) >= self.maxsize:
            raise BackpressureError(
                f"submission queue full ({self.maxsize} batches pending); "
                "back off and retry"
            )
        self.pending.append((kind, items, idem, wire, nbytes))


#: request types that mutate durable state: when a store is attached,
#: their acks wait for the WAL fsync policy and carry an EXT_COMMITMENT
#: extension.  MSG_FETCH_PARTITION is included because its auto-close /
#: stage-advance side effects append records — a commitment observed via
#: any response must never cover an unsynced record.
_DURABLE_TYPES = frozenset({
    frames.MSG_POST_QUERY,
    frames.MSG_SUBMIT_TUPLES,
    frames.MSG_SUBMIT_TUPLES_BATCH,
    frames.MSG_SUBMIT_PARTIALS,
    frames.MSG_EVALUATE_SIZE,
    frames.MSG_CLOSE_COLLECTION,
    frames.MSG_TAKE_PARTIALS,
    frames.MSG_STORE_RESULT_ROWS,
    frames.MSG_PUBLISH_RESULT,
    frames.MSG_FETCH_PARTITION,
    frames.MSG_SUBMIT_PARTITION_RESULT,
    frames.MSG_GET_COMMITMENT,
})


class SSIDispatcher:
    """Decode request frames, execute them against the SSI, encode the
    response.  One dispatcher instance == one logical SSI."""

    def __init__(
        self,
        ssi: SupportingServerInfrastructure | None = None,
        *,
        max_pending_batches: int = 256,
        partition_timeout: float = 5.0,
        clock: Callable[[], float] | None = None,
        admission: AdmissionPolicy | None = None,
        drain_quantum: int = 0,
    ) -> None:
        self.ssi = ssi if ssi is not None else SupportingServerInfrastructure()
        #: per-querier quotas; the default policy enforces nothing, so a
        #: dispatcher built without one behaves exactly as before
        self.admission = AdmissionController(admission)
        self._fair = FairDrain(self.admission.policy)
        #: >0 enables weighted round-robin draining: each submission
        #: drains at most quantum×weight queued entries per querier per
        #: round instead of flushing the touched query to empty.
        #: In-memory mode only — with a store attached every mutation
        #: must be journaled before its ack leaves, so durable
        #: dispatchers always run the full-flush path regardless.
        self._drain_quantum = drain_quantum
        self.coordinators: dict[str, QueryCoordinator] = {}
        self.metas: dict[str, QueryMeta] = {}
        #: durable store, when serving with ``--data-dir`` (see
        #: :meth:`with_store`); None keeps the in-memory behaviour
        self.store: "DurableStore | None" = None
        #: live health monitor, set by the serve entry point; None
        #: answers MSG_GET_HEALTH with monitored=False
        self.health: "HealthMonitor | None" = None
        #: personal-querybox target per query (snapshotted so recovery
        #: reposts to the same box)
        self.tds_ids: dict[str, str | None] = {}
        self.partition_timeout = partition_timeout
        self._queues: dict[str, _SubmissionQueue] = {}
        self._max_pending = max_pending_batches
        self._posted_at: dict[str, float] = {}
        self._clock = clock
        # Idempotency bookkeeping: a contiguous watermark (every seq at
        # or below it has been applied) plus an "ahead" set of applied
        # seqs above it.  Pipelined clients have several requests in
        # flight, so seqs can *apply* out of order — the ahead set keeps
        # a late-arriving lower seq from being mistaken for a replay,
        # and drains into the watermark as the gaps fill.
        self._applied_seq: dict[str, int] = {}
        self._applied_ahead: dict[str, set[int]] = {}
        #: test hook — while True, submissions buffer instead of applying
        self.drain_paused = False
        #: query id of the request currently being decoded/handled;
        #: written only inside the synchronous _handle call, so the
        #: value is coherent when the error path reads it (the event
        #: loop cannot interleave another dispatch in between).
        self._ctx_query_id: str | None = None

    # ------------------------------------------------------------------ #
    def _now(self) -> float:
        if self._clock is not None:
            return self._clock()
        return asyncio.get_running_loop().time()

    # ------------------------------------------------------------------ #
    # durability (repro.store)
    # ------------------------------------------------------------------ #
    @classmethod
    def with_store(cls, store: "DurableStore", **kwargs: object) -> "SSIDispatcher":
        """Build a dispatcher serving the recovered state of *store*.

        Resumes every live query: re-arms its submission queue, and for
        fleet-mode queries not yet published, discards any half-round
        aggregation leftovers (journaled as a reset record so a second
        crash replays the same clear) and rebuilds a coordinator that
        re-runs aggregation from the durable covering result — the
        coordinator's partition trackers died with the process, and
        merging is associative, so recomputing is always correct.
        Elapsed-time SIZE clauses restart their clock at the restart.
        """
        recovered = store.recovered
        dispatcher = cls(recovered.ssi, **kwargs)  # type: ignore[arg-type]
        dispatcher.metas.update(recovered.metas)
        dispatcher.tds_ids.update(recovered.tds_ids)
        dispatcher._applied_seq.update(recovered.applied_seq)
        dispatcher._applied_ahead.update(
            {k: set(v) for k, v in recovered.applied_ahead.items()}
        )
        for query_id, envelope in recovered.ssi.envelope_map().items():
            dispatcher._queues[query_id] = _SubmissionQueue(
                dispatcher._max_pending
            )
            # Re-own recovered queries so per-querier quotas survive a
            # restart (published ones prune lazily at the next admit).
            dispatcher.admission.register_query(
                query_id, envelope.credential.subject
            )
            meta = dispatcher.metas.get(query_id)
            if meta is None or not meta.protocol:
                continue  # driver-mode: the client owns aggregation state
            if recovered.ssi.result_ready(query_id):
                continue  # finished: pollers get STATUS_DONE without one
            storage = recovered.ssi.storage_map()[query_id]
            if storage.partials or storage.result_rows:
                store.journal.reset_aggregation(query_id)
                storage.partials.clear()
                storage.result_rows.clear()
            dispatcher.coordinators[query_id] = QueryCoordinator(
                recovered.ssi,
                query_id,
                meta,
                partition_timeout=dispatcher.partition_timeout,
            )
        # Journal from here on: recovery replayed with journaling off.
        recovered.ssi.journal = store.journal
        dispatcher.store = store
        return dispatcher

    def capture_state(self) -> "SnapshotState":
        """One consistent view of the dispatcher's durable state, for
        the store's snapshot writer.  Runs synchronously (no awaits
        between a mutation and its journal record), so what it sees
        always matches the WAL prefix written so far.  Submission queues
        are always empty here — a push and its flush happen inside one
        ``_handle`` call (budgeted fair-drain, which can leave entries
        queued, is disabled whenever a store is attached) — so they
        carry nothing to capture."""
        from repro.store.snapshot import QuerySnapshot, SnapshotState

        storage_map = self.ssi.storage_map()
        queries = []
        for query_id, envelope in self.ssi.envelope_map().items():
            storage = storage_map[query_id]
            queries.append(
                QuerySnapshot(
                    query_id=query_id,
                    envelope=envelope,
                    meta=self.metas.get(query_id, QueryMeta()),
                    tds_id=self.tds_ids.get(query_id),
                    collection_closed=storage.collection_closed,
                    result_ready=storage.result_ready,
                    collected=list(storage.collected),
                    collected_blocks=list(storage.collected_blocks),
                    partials=list(storage.partials),
                    result_rows=list(storage.result_rows),
                )
            )
        return SnapshotState(
            applied_seq=dict(self._applied_seq),
            applied_ahead={
                k: set(v) for k, v in self._applied_ahead.items() if v
            },
            queries=queries,
        )

    async def dispatch(self, body: bytes) -> bytes:
        """One request frame body in, one response frame out.  Responses
        echo the request's correlation id *and protocol version* so a
        pipelining client routes them and a v3 peer never sees a v4
        body; a body too malformed to carry an id answers on the
        connection-scoped id 0."""
        started = time.perf_counter()
        try:
            version, msg_type, corr, exts, reader = frames.unpack_frame_ext(body)
        except ProtocolError as exc:
            _REQUESTS.labels(msg_type="unparsed", outcome="malformed").inc()
            return frames.pack_error(
                frames.ERR_MALFORMED, str(exc), frames.peek_correlation_id(body)
            )
        name = _msg_name(msg_type)
        if msg_type not in frames.REQUEST_TYPES:
            _REQUESTS.labels(msg_type=name, outcome="unknown_op").inc()
            return frames.pack_error(
                frames.ERR_UNKNOWN_OP,
                f"unknown request type 0x{msg_type:02x}",
                corr,
            )
        trace = obs_spans.TraceContext.from_wire(exts[frames.EXT_TRACE]) \
            if frames.EXT_TRACE in exts else None
        self._ctx_query_id = None
        try:
            payload = self._handle(msg_type, reader)
        except (DuplicateQueryError, UnknownQueryError, ResultNotReadyError,
                AdmissionError, BackpressureError) as exc:
            code = _error_code(exc)
            if code == frames.ERR_BACKPRESSURE:
                _c_backpressure.inc()
            _REQUESTS.labels(msg_type=name, outcome=f"err_{code}").inc()
            return frames.pack_error(
                code,
                str(exc),
                corr,
                retry_after=getattr(exc, "retry_after", None),
            )
        except ProtocolError as exc:
            # Includes payload-decoding failures: report them as malformed
            # rather than internal.
            _REQUESTS.labels(msg_type=name, outcome="malformed").inc()
            return frames.pack_error(frames.ERR_MALFORMED, str(exc), corr)
        except Exception:
            # Never leak a traceback across the transport (satellite).
            # The structured log carries the request's query context —
            # query_id/corr_id/msg_type — so the failing query is
            # identifiable from the SSI log alone; the redaction layer
            # guarantees no request bytes reach the record.
            _INTERNAL_ERRORS.labels(msg_type=name).inc()
            obs_logs.log_event(
                logger,
                "server_internal_error",
                level=logging.ERROR,
                exc_info=True,
                query_id=self._ctx_query_id,
                corr_id=corr,
                msg_type=name,
            )
            return frames.pack_error(
                frames.ERR_INTERNAL, "internal server error (see SSI logs)", corr
            )
        finally:
            _req_seconds(name).observe(time.perf_counter() - started)
        _req_ok(name).inc()
        if trace is not None and self._ctx_query_id is not None:
            # Exact cross-process parent link for wire-propagated traces
            # (v4 peers); v3 peers fall back to the derived trace id.
            self.ssi.lifecycle.adopt(self._ctx_query_id, trace)
        extensions: tuple[tuple[int, bytes], ...] = ()
        if self.store is not None and msg_type in _DURABLE_TYPES:
            # Capture the commitment BEFORE syncing: sync() covers at
            # least everything appended so far, so a head this response
            # reports (extension or MSG_GET_COMMITMENT payload) is
            # always durable by the time the ack leaves — a pipelined
            # request landing during the fsync must not slip its
            # unsynced records into our reported head.
            if version >= 4:
                commitment = await self.store.commitment_async()
                extensions = (
                    (frames.EXT_COMMITMENT, commitment.to_wire()),
                )
            await self.store.sync()
            await self.store.maybe_snapshot(self.capture_state)
        return frames.pack_frame(
            frames.MSG_OK, payload, corr, version=version, extensions=extensions
        )

    # ------------------------------------------------------------------ #
    # request handlers
    # ------------------------------------------------------------------ #
    def _note_query(self, query_id: str) -> str:
        """Record the query id a request targets, for error context."""
        self._ctx_query_id = query_id
        return query_id

    def _handle(self, msg_type: int, r: Reader) -> bytes:
        w = Writer()
        if msg_type == frames.MSG_PING:
            r.expect_end()
            return w.getvalue()

        if msg_type == frames.MSG_HELLO:
            peer_version, peer_caps = frames.read_hello(r)
            r.expect_end()
            del peer_version, peer_caps  # symmetric: we only advertise ours
            frames.write_hello(w, frames.PROTOCOL_VERSION, frames.CAPABILITIES)
            return w.getvalue()

        if msg_type == frames.MSG_GET_STATS:
            r.expect_end()
            # The one canonical serialization: the same Prometheus text
            # the --metrics-port endpoint serves, so the two surfaces
            # can never disagree about a counter.
            w.text(obs_metrics.REGISTRY.render_prometheus())
            return w.getvalue()

        if msg_type == frames.MSG_GET_HEALTH:
            r.expect_end()
            # Payload mirrors /healthz: a verdict drawn from a fixed
            # reason vocabulary plus loop-lag/window scalars — nothing
            # derived from request payloads, per PL006.
            if self.health is None:
                w.boolean(False)
                return w.getvalue()
            verdict = self.health.verdict()
            w.boolean(True)
            w.u8(verdict.status)
            w.f64(verdict.eventloop_lag)
            w.f64(verdict.window_seconds)
            reasons = verdict.reasons[:16]
            w.u32(len(reasons))
            for reason in reasons:
                w.text(reason)
            return w.getvalue()

        if msg_type == frames.MSG_POST_QUERY:
            client_id, seq = self._read_idem(r)
            envelope = frames.read_envelope(r)
            self._note_query(envelope.query_id)
            tds_id = r.opt_text()
            meta = frames.read_meta(r)
            r.expect_end()
            if meta.protocol and meta.protocol not in SUPPORTED_PROTOCOLS:
                raise ProtocolError(
                    f"no coordinator for protocol {meta.protocol!r}"
                )
            if self._replayed(client_id, seq):
                return w.getvalue()
            # Admission gate: after the replay check (a replayed post was
            # already admitted once) and before any side effect, so a
            # rejected post leaves its seq unapplied and the client's
            # retry is executed, not dropped.
            self.admission.admit_query(
                envelope.credential.subject, self.ssi.result_ready
            )
            if (
                self.store is not None
                and envelope.query_id not in self.ssi.envelope_map()
            ):
                # Journaled here, not in the SSI facade: the record must
                # carry the scheduling meta the facade never sees.  The
                # membership guard keeps a doomed duplicate post out of
                # the log (post_query below would raise before applying).
                self.store.journal.set_idem(client_id, seq)
                self.store.journal.post_query(envelope, tds_id, meta)
            self.ssi.post_query(envelope, tds_id)
            self.admission.register_query(
                envelope.query_id, envelope.credential.subject
            )
            self.metas[envelope.query_id] = meta
            self.tds_ids[envelope.query_id] = tds_id
            self._posted_at[envelope.query_id] = self._now()
            self._queues[envelope.query_id] = _SubmissionQueue(self._max_pending)
            if meta.protocol:
                self.coordinators[envelope.query_id] = QueryCoordinator(
                    self.ssi,
                    envelope.query_id,
                    meta,
                    partition_timeout=self.partition_timeout,
                )
            self._mark_applied(client_id, seq)
            return w.getvalue()

        if msg_type == frames.MSG_FETCH_QUERY:
            query_id = self._note_query(r.text())
            r.expect_end()
            envelope = self.ssi.envelope(query_id)
            frames.write_envelope(w, envelope)
            frames.write_meta(w, self.metas.get(query_id, QueryMeta()))
            return w.getvalue()

        if msg_type == frames.MSG_ACTIVE_QUERIES:
            r.expect_end()
            active = self.ssi.active_queries()
            w.u32(len(active))
            for envelope in active:
                frames.write_envelope(w, envelope)
                frames.write_meta(w, self.metas.get(envelope.query_id, QueryMeta()))
            return w.getvalue()

        if msg_type == frames.MSG_SUBMIT_TUPLES:
            client_id, seq = self._read_idem(r)
            mark = r.mark()
            query_id = self._note_query(r.text())
            tuples = frames.read_tuples(r)
            wire = r.since(mark)
            r.expect_end()
            self.ssi.envelope(query_id)  # typed error for unknown ids
            if self._replayed(client_id, seq):
                return w.getvalue()
            self._enqueue(query_id, "tuples", tuples, (client_id, seq), wire)
            self._mark_applied(client_id, seq)
            self._maybe_flush(query_id)
            return w.getvalue()

        if msg_type == frames.MSG_SUBMIT_TUPLES_BATCH:
            client_id, seq = self._read_idem(r)
            mark = r.mark()
            query_id = self._note_query(r.text())
            block = frames.read_tuple_block(r)
            wire = r.since(mark)
            r.expect_end()
            self.ssi.envelope(query_id)  # typed error for unknown ids
            if self._replayed(client_id, seq):
                return w.getvalue()
            self._enqueue(query_id, "block", block, (client_id, seq), wire)
            self._mark_applied(client_id, seq)
            self._maybe_flush(query_id)
            return w.getvalue()

        if msg_type == frames.MSG_SUBMIT_PARTIALS:
            client_id, seq = self._read_idem(r)
            mark = r.mark()
            query_id = self._note_query(r.text())
            partials = frames.read_partials(r)
            wire = r.since(mark)
            r.expect_end()
            self.ssi.envelope(query_id)
            if self._replayed(client_id, seq):
                return w.getvalue()
            self._enqueue(
                query_id, "partials", partials, (client_id, seq), wire
            )
            self._mark_applied(client_id, seq)
            self._maybe_flush(query_id)
            return w.getvalue()

        if msg_type == frames.MSG_COLLECTED_COUNT:
            query_id = self._note_query(r.text())
            r.expect_end()
            self._flush(query_id)
            w.i64(self.ssi.collected_count(query_id))
            return w.getvalue()

        if msg_type == frames.MSG_EVALUATE_SIZE:
            query_id = self._note_query(r.text())
            elapsed = r.f64()
            r.expect_end()
            self._flush(query_id)
            w.boolean(self.ssi.evaluate_size_clause(query_id, elapsed))
            return w.getvalue()

        if msg_type == frames.MSG_CLOSE_COLLECTION:
            query_id = self._note_query(r.text())
            r.expect_end()
            self._flush(query_id)
            self.ssi.close_collection(query_id)
            return w.getvalue()

        if msg_type == frames.MSG_COVERING_RESULT:
            query_id = self._note_query(r.text())
            r.expect_end()
            self._flush(query_id)
            frames.write_items(w, list(self.ssi.covering_result(query_id)))
            return w.getvalue()

        if msg_type == frames.MSG_TAKE_PARTIALS:
            query_id = self._note_query(r.text())
            r.expect_end()
            self._flush(query_id)
            frames.write_items(w, self.ssi.take_partials(query_id))
            return w.getvalue()

        if msg_type == frames.MSG_PARTIAL_COUNT:
            query_id = self._note_query(r.text())
            r.expect_end()
            self._flush(query_id)
            w.i64(self.ssi.partial_count(query_id))
            return w.getvalue()

        if msg_type == frames.MSG_STORE_RESULT_ROWS:
            client_id, seq = self._read_idem(r)
            query_id = self._note_query(r.text())
            rows = frames.read_rows(r)
            r.expect_end()
            if self._replayed(client_id, seq):
                return w.getvalue()
            if self.store is not None:
                self.store.journal.set_idem(client_id, seq)
            self.ssi.store_result_rows(query_id, rows)
            if self.store is not None:
                self.store.journal.clear_idem()
            self._mark_applied(client_id, seq)
            return w.getvalue()

        if msg_type == frames.MSG_PUBLISH_RESULT:
            query_id = self._note_query(r.text())
            r.expect_end()
            self.ssi.publish_result(query_id)
            return w.getvalue()

        if msg_type == frames.MSG_RESULT_READY:
            query_id = self._note_query(r.text())
            r.expect_end()
            w.boolean(self.ssi.result_ready(query_id))
            return w.getvalue()

        if msg_type == frames.MSG_FETCH_RESULT:
            query_id = self._note_query(r.text())
            r.expect_end()
            frames.write_result(w, self.ssi.fetch_result(query_id))
            return w.getvalue()

        if msg_type == frames.MSG_FETCH_PARTITION:
            query_id = self._note_query(r.text())
            tds_id = r.text()
            r.expect_end()
            return self._fetch_partition(query_id, tds_id)

        if msg_type == frames.MSG_GET_COMMITMENT:
            check: tuple[int, bytes] | None = None
            if r.boolean():
                check = (r.i64(), r.blob())
            r.expect_end()
            if self.store is None:
                w.boolean(False)  # serving in-memory: nothing to attest
                return w.getvalue()
            w.boolean(True)
            current = self.store.commitment()
            w.i64(current.count)
            w.blob(current.head)
            if check is not None:
                if check[0] < 0:
                    raise ProtocolError(
                        f"invalid commitment count {check[0]} in check"
                    )
                # Inclusion proof for the client's last observed
                # commitment: the head our chain had at that count.
                # None means the chain is *shorter* than the client saw
                # — the rollback the client is probing for.
                w.opt_blob(self.store.head_at(check[0]))
            else:
                w.opt_blob(None)
            return w.getvalue()

        if msg_type == frames.MSG_SUBMIT_PARTITION_RESULT:
            query_id = self._note_query(r.text())
            partition_id = r.i64()
            tds_id = r.text()
            result_kind = r.u8()
            if result_kind == frames.RESULT_PARTIALS:
                partials = frames.read_partials(r)
                rows: list[bytes] = []
            elif result_kind == frames.RESULT_ROWS:
                partials = []
                rows = frames.read_rows(r)
            else:
                raise ProtocolError(f"unknown result kind 0x{result_kind:02x}")
            r.expect_end()
            coordinator = self._coordinator(query_id)
            coordinator.complete(partition_id, tds_id, result_kind, partials, rows)
            return w.getvalue()

        raise ProtocolError(f"unhandled request type 0x{msg_type:02x}")

    # ------------------------------------------------------------------ #
    # fleet-mode helpers
    # ------------------------------------------------------------------ #
    def _fetch_partition(self, query_id: str, tds_id: str) -> bytes:
        w = Writer()
        self.ssi.envelope(query_id)  # typed error for unknown ids
        self._flush(query_id)
        coordinator = self.coordinators.get(query_id)
        if coordinator is None or coordinator.done():
            w.u8(frames.STATUS_DONE)
            return w.getvalue()
        self._auto_close(query_id)
        unit = coordinator.next_work(tds_id, self._now())
        if coordinator.done():
            w.u8(frames.STATUS_DONE)
            return w.getvalue()
        if unit is None:
            w.u8(frames.STATUS_WAIT)
            return w.getvalue()
        w.u8(frames.STATUS_WORK)
        frames.write_work_unit(w, unit)
        return w.getvalue()

    def _coordinator(self, query_id: str) -> QueryCoordinator:
        coordinator = self.coordinators.get(query_id)
        if coordinator is None:
            raise UnknownQueryError(
                f"query {query_id!r} has no server-side coordinator"
            )
        return coordinator

    # ------------------------------------------------------------------ #
    # idempotency (at-least-once transport, exactly-once application)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _read_idem(r: Reader) -> tuple[str, int]:
        client_id = r.text()
        seq = r.i64()
        if seq < 1:
            raise ProtocolError(f"invalid idempotency sequence {seq}")
        return client_id, seq

    def _replayed(self, client_id: str, seq: int) -> bool:
        replayed = seq <= self._applied_seq.get(client_id, 0) or (
            seq in self._applied_ahead.get(client_id, ())
        )
        if replayed:
            _c_replays.inc()
        return replayed

    def _mark_applied(self, client_id: str, seq: int) -> None:
        # Only called once the side effect landed; a request rejected
        # with e.g. ERR_BACKPRESSURE keeps its seq unapplied so the
        # client's retry (same bytes) is executed, not dropped.
        ahead = self._applied_ahead.setdefault(client_id, set())
        ahead.add(seq)
        watermark = self._applied_seq.get(client_id, 0)
        while watermark + 1 in ahead:
            watermark += 1
            ahead.discard(watermark)
        self._applied_seq[client_id] = watermark

    def _queue_for(self, query_id: str) -> _SubmissionQueue:
        queue = self._queues.get(query_id)
        if queue is None:
            queue = _SubmissionQueue(self._max_pending)
            self._queues[query_id] = queue
        return queue

    @staticmethod
    def _entry_bytes(
        items: list | EncryptedTupleBlock, wire: bytes | memoryview | None
    ) -> int:
        """Ciphertext bytes a queue entry pins, for the per-querier
        in-flight-bytes quota (wire size when captured, payload sizes
        otherwise — both are the SSI's sanctioned view)."""
        if wire is not None:
            return len(wire)
        if isinstance(items, EncryptedTupleBlock):
            return len(items.payloads)
        return sum(len(getattr(item, "payload", b"")) for item in items)

    def _enqueue(
        self,
        query_id: str,
        kind: str,
        items: list | EncryptedTupleBlock,
        idem: tuple[str, int],
        wire: bytes | memoryview | None,
    ) -> None:
        """Charge the poster's byte quota, then queue the submission.
        An over-quota charge raises before any side effect; a full queue
        returns the charge before re-raising, so rejected requests leave
        the accounting untouched either way."""
        nbytes = self._entry_bytes(items, wire)
        self.admission.charge(query_id, nbytes)
        try:
            self._queue_for(query_id).push(kind, items, idem, wire, nbytes)
        except BackpressureError:
            self.admission.release(query_id, nbytes)
            raise

    def _maybe_flush(self, query_id: str) -> None:
        if self.drain_paused:
            return
        if self._drain_quantum > 0 and self.store is None:
            # Budgeted fair drain is in-memory only: with a store
            # attached, a mutation must be journaled (and fsynced per
            # policy) before its ack leaves, which the full-flush path
            # below guarantees and a deferred drain would not.
            self._drain_round()
            return
        self._flush(query_id)
        self._auto_close(query_id)

    def _drain_round(self) -> None:
        """One weighted round-robin drain pass over every query with
        pending submissions.  Each querier applies at most
        ``drain_quantum × weight`` entries per pass, and who goes first
        rotates across passes — a heavy querier's flood costs everyone
        else at most one bounded turn, never the whole backlog.  Entries
        a pass leaves queued are picked up by later submissions or by
        the full flush every read path forces."""
        by_subject: dict[str, list[str]] = {}
        for query_id, queue in self._queues.items():
            if queue.pending:
                subject = self.admission.subject_of(query_id)
                by_subject.setdefault(subject, []).append(query_id)
        touched: list[str] = []
        for subject in self._fair.order(by_subject):
            budget = self._drain_quantum * self._fair.weight(subject)
            for query_id in by_subject[subject]:
                if budget <= 0:
                    break
                applied = self._drain_some(query_id, budget)
                budget -= applied
                if applied:
                    touched.append(query_id)
        for query_id in touched:
            self._auto_close(query_id)

    def _drain_some(self, query_id: str, budget: int) -> int:
        queue = self._queues.get(query_id)
        if queue is None:
            return 0
        applied = 0
        while applied < budget and queue.pending:
            self._apply_entry(query_id, queue.pending.pop(0))
            applied += 1
        return applied

    def _flush(self, query_id: str) -> None:
        """Apply buffered submissions in arrival order."""
        queue = self._queues.get(query_id)
        if queue is None or not queue.pending:
            return
        pending, queue.pending = queue.pending, []
        for entry in pending:
            self._apply_entry(query_id, entry)

    def _apply_entry(
        self,
        query_id: str,
        entry: tuple[
            str, list | EncryptedTupleBlock, tuple[str, int], bytes | None, int
        ],
    ) -> None:
        """Apply one queued submission.  With a store attached, the
        entry's idempotency key is armed just before its apply (journaled
        inside the mutation's WAL record) and cleared right after — a
        submission the SSI drops without journaling (it arrived after the
        collection closed) must not leak its key into the next record.
        The poster's byte quota is released whether or not the SSI kept
        the submission: either way it left the queue."""
        kind, items, idem, wire, nbytes = entry
        journal = self.store.journal if self.store is not None else None
        try:
            if journal is not None:
                journal.set_idem(*idem)
            if kind == "tuples":
                self.ssi.submit_tuples(query_id, items, wire=wire)
            elif kind == "block":
                self.ssi.submit_tuple_block(query_id, items, wire=wire)
            else:
                self.ssi.submit_partials(query_id, items, wire=wire)
            if journal is not None:
                journal.clear_idem()
        finally:
            self.admission.release(query_id, nbytes)

    def _auto_close(self, query_id: str) -> None:
        """Fleet-mode queries with a SIZE clause close on the server's
        clock (the paper's SSI evaluates SIZE, §3.1)."""
        if query_id not in self.coordinators:
            return
        if self.ssi.collection_closed(query_id):
            return
        envelope = self.ssi.envelope(query_id)
        if envelope.size_tuples is None and envelope.size_seconds is None:
            return
        elapsed = self._now() - self._posted_at.get(query_id, self._now())
        self.ssi.evaluate_size_clause(query_id, elapsed)


DispatchFn = Callable[[bytes], Awaitable[bytes]]


class SSIServer:
    """``asyncio.start_server``-based TCP front end for a dispatcher.

    Requests from one connection are dispatched *concurrently* (v3
    pipelining): the read loop keeps pulling frames while up to
    ``max_concurrent_requests`` handler tasks run, and each response is
    written — under a per-connection write lock — as soon as its handler
    finishes, in completion order rather than arrival order.  The
    correlation id echoed by the dispatcher is what lets the client
    reassemble the conversation."""

    def __init__(
        self,
        dispatcher: SSIDispatcher | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        read_timeout: float = 30.0,
        max_frame_bytes: int = frames.MAX_FRAME_BYTES,
        max_concurrent_requests: int = 32,
    ) -> None:
        if max_concurrent_requests < 1:
            raise ProtocolError("max_concurrent_requests must be >= 1")
        self.dispatcher = dispatcher if dispatcher is not None else SSIDispatcher()
        self.host = host
        self.port = port
        self.read_timeout = read_timeout
        self.max_frame_bytes = max_frame_bytes
        self.max_concurrent_requests = max_concurrent_requests
        self._server: asyncio.AbstractServer | None = None
        # Graceful-shutdown bookkeeping: requests currently being
        # handled across every connection, and an event that is set
        # exactly while that count is zero (drain() waits on it).
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()

    def _begin_request(self) -> None:
        self._inflight += 1
        self._idle.clear()

    def _end_request(self) -> None:
        self._inflight -= 1
        if self._inflight == 0:
            self._idle.set()

    async def drain(self, timeout: float = 10.0) -> bool:
        """Stop accepting new connections and wait for every in-flight
        request to finish (bounded by *timeout*).  Returns True when the
        server went idle — open connections stay up, so a peer that
        keeps sending can hold drain at the timeout, never beyond it."""
        if self._server is not None:
            self._server.close()
        try:
            await asyncio.wait_for(self._idle.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        sockets = self._server.sockets or ()
        for sock in sockets:
            self.port = sock.getsockname()[1]
            break

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        # Swap before awaiting: a second concurrent close() must see None
        # rather than a server object another coroutine is mid-closing.
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()

    # ------------------------------------------------------------------ #
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        slots = asyncio.Semaphore(self.max_concurrent_requests)
        tasks: set[asyncio.Task[None]] = set()
        _c_connections.inc()
        _g_connections.inc()

        async def handle(body: bytes) -> None:
            _g_inflight.inc()
            try:
                response = await self.dispatcher.dispatch(body)
                async with write_lock:
                    writer.write(response)
                    await writer.drain()
                _c_frames_out.inc()
                _c_bytes_out.inc(len(response))
            except (ConnectionError, ConnectionResetError):
                pass  # peer went away mid-response; the read loop exits too
            finally:
                _g_inflight.dec()
                self._end_request()
                slots.release()

        try:
            while True:
                try:
                    body = await asyncio.wait_for(
                        frames.read_frame(reader, self.max_frame_bytes),
                        timeout=self.read_timeout,
                    )
                except asyncio.TimeoutError:
                    if tasks:
                        continue  # busy connection, not an idle one
                    return  # idle timeout: hang up
                except (asyncio.IncompleteReadError, ConnectionError):
                    return  # clean EOF or peer drop: hang up
                except FrameTooLargeError as exc:
                    # Size-limit violation: answer once (on the
                    # connection-scoped correlation id 0, the body was
                    # never read), then hang up — the stream position
                    # can no longer be trusted.
                    async with write_lock:
                        writer.write(
                            frames.pack_error(frames.ERR_TOO_LARGE, str(exc))
                        )
                        await writer.drain()
                    return
                except ProtocolError as exc:
                    # Any other framing violation (e.g. a frame too
                    # short for its header): malformed, then hang up.
                    async with write_lock:
                        writer.write(
                            frames.pack_error(frames.ERR_MALFORMED, str(exc))
                        )
                        await writer.drain()
                    return
                _c_frames_in.inc()
                _c_bytes_in.inc(frames.LENGTH_PREFIX_BYTES + len(body))
                # Bounded per-connection task group: when every slot is
                # busy this stalls the read loop — pipelining backpressure
                # lands on the socket instead of growing an unbounded
                # task pile.
                await slots.acquire()
                # Counted before the task is scheduled so drain() never
                # sees "idle" with an accepted frame still unhandled.
                self._begin_request()
                task = asyncio.create_task(handle(body))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except ConnectionError:
            return
        finally:
            _g_connections.dec()
            for task in tasks:
                task.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass
