"""repro.net — the asyncio network runtime for the SSI.

Serves the :class:`~repro.ssi.server.SupportingServerInfrastructure`
over a length-prefixed binary wire protocol (:mod:`repro.net.frames`),
with an asyncio TCP server (:mod:`repro.net.server`), retrying clients
(:mod:`repro.net.client`), pluggable transports plus the synchronous
``RemoteSSI`` driver adapter (:mod:`repro.net.transport`), fleet-mode
scheduling (:mod:`repro.net.coordinator`) and an async TDS client fleet
(:mod:`repro.net.fleet`).
"""

from repro.net.client import (
    AsyncSSIClient,
    QuerierClient,
    RetryPolicy,
    TDSClient,
)
from repro.net.coordinator import QueryCoordinator
from repro.net.fleet import FaultPlan, FleetRunner, FleetStats
from repro.net.frames import PROTOCOL_VERSION, QueryMeta, WorkUnit
from repro.net.server import SSIDispatcher, SSIServer
from repro.net.transport import (
    LoopbackTransport,
    RemoteSSI,
    SyncBridge,
    TCPTransport,
    Transport,
)

__all__ = [
    "AsyncSSIClient",
    "FaultPlan",
    "FleetRunner",
    "FleetStats",
    "LoopbackTransport",
    "PROTOCOL_VERSION",
    "QuerierClient",
    "QueryCoordinator",
    "QueryMeta",
    "RemoteSSI",
    "RetryPolicy",
    "SSIDispatcher",
    "SSIServer",
    "SyncBridge",
    "TCPTransport",
    "TDSClient",
    "Transport",
    "WorkUnit",
]
