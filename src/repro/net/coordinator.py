"""SSI-side query scheduling for fleet-mode execution.

In the paper the SSI itself drives the data flow of steps 5-13: it forms
partitions of opaque items, hands them to whichever TDSs are connected,
reassigns timed-out partitions and publishes the result (§3.2).  The
in-process :class:`~repro.protocols.base.ProtocolDriver` collapses that
loop into synchronous calls; this module is the real-system counterpart —
a :class:`QueryCoordinator` advances one query through its aggregation
and filtering stages as TDS clients *poll* for work over the wire.

The coordinator only ever touches :class:`Partition` objects, opaque
payload bytes and cleartext ``group_tag`` routing handles — exactly the
SSI's legitimate view.  Which partitioner to use (random vs. by-tag) is
derived from the cleartext protocol name in the query's
:class:`~repro.net.frames.QueryMeta`, knowledge the paper's SSI holds by
construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.messages import EncryptedPartial, Partition
from repro.exceptions import ProtocolError
from repro.net.frames import (
    RESULT_PARTIALS,
    RESULT_ROWS,
    WORK_FINALIZE,
    WORK_FOLD,
    WORK_FOLD_PER_GROUP,
    QueryMeta,
    WorkUnit,
)
from repro.ssi.partitioner import Item, RandomPartitioner, TagPartitioner
from repro.ssi.server import SupportingServerInfrastructure
from repro.ssi.storage import PartitionTracker

#: protocols the coordinator knows how to schedule
SUPPORTED_PROTOCOLS = ("s_agg", "ed_hist")

_STAGE_COLLECTING = "collecting"
_STAGE_FOLD = "fold"
_STAGE_MERGE = "merge"  # ed_hist second step
_STAGE_FINALIZE = "finalize"
_STAGE_DONE = "done"


@dataclass
class CoordinatorStats:
    """Observable scheduling counters (mirrors ProtocolStats fields the
    fleet tests assert on)."""

    aggregation_rounds: int = 0
    partitions_processed: int = 0
    reassigned_partitions: int = 0
    participants: set[str] = field(default_factory=set)


class QueryCoordinator:
    """Scheduler for one fleet-mode query on the SSI."""

    def __init__(
        self,
        ssi: SupportingServerInfrastructure,
        query_id: str,
        meta: QueryMeta,
        partition_timeout: float = 5.0,
        seed: int = 0,
    ) -> None:
        if meta.protocol not in SUPPORTED_PROTOCOLS:
            raise ProtocolError(
                f"no coordinator for protocol {meta.protocol!r}; supported: "
                f"{', '.join(SUPPORTED_PROTOCOLS)}"
            )
        self.ssi = ssi
        self.query_id = query_id
        self.meta = meta
        self.partition_timeout = meta.param("partition_timeout", partition_timeout)
        self.stats = CoordinatorStats()
        # Partition shapes never affect aggregate results (merging is
        # associative); the seed only fixes the shuffle for replayability.
        self._rng = random.Random(seed)
        self._stage = _STAGE_COLLECTING
        self._tracker: PartitionTracker | None = None
        self._round_outputs: list[EncryptedPartial] = []
        self._round_items: list[Item] = []
        self._next_partition_id = 0
        self._sagg_partition_size = max(2, round(self.meta.param("alpha", 3.6)))
        self._first_step_size = int(self.meta.param("first_step_partition_size", 64))
        self._filter_size = int(self.meta.param("filter_partition_size", 64))

    # ------------------------------------------------------------------ #
    # polling interface (called by the server dispatcher)
    # ------------------------------------------------------------------ #
    def done(self) -> bool:
        return self._stage == _STAGE_DONE

    def next_work(self, tds_id: str, now: float) -> WorkUnit | None:
        """Hand the next pending partition to *tds_id*, or ``None`` when
        there is nothing to do right now (collecting, everything assigned,
        or the query is done).  Expired assignments are reclaimed first."""
        if self._stage == _STAGE_COLLECTING:
            if not self.ssi.collection_closed(self.query_id):
                return None
            self._start_aggregation()
        if self._stage == _STAGE_DONE or self._tracker is None:
            return None
        expired = self._tracker.expire(now)
        if expired:
            self.stats.reassigned_partitions += len(expired)
        partition = self._tracker.assign_next(tds_id, now)
        if partition is None:
            return None
        kind = self._work_kind()
        return WorkUnit(self.query_id, kind, partition.partition_id, partition.items)

    def complete(
        self,
        partition_id: int,
        tds_id: str,
        result_kind: int,
        partials: list[EncryptedPartial],
        rows: list[bytes],
    ) -> None:
        """Record one partition's result; advances the stage when the
        current tracker drains.  Duplicate completions (a reassignment
        race) are dropped — partial folding is idempotent per partition.
        So are *stale* completions: partition ids are coordinator-unique
        across rounds (:meth:`_renumber`), so an id the current tracker
        never issued is a timed-out TDS finally replying after the round
        advanced — dropping it (rather than erroring) keeps slow-but-
        healthy workers polling."""
        if self._tracker is None or not self._tracker.knows(partition_id):
            return
        if self._tracker.is_done(partition_id):
            return
        expected = RESULT_ROWS if self._stage == _STAGE_FINALIZE else RESULT_PARTIALS
        if result_kind != expected:
            raise ProtocolError(
                f"stage {self._stage!r} expects result kind {expected}, "
                f"got {result_kind}"
            )
        self._tracker.complete(partition_id, tds_id)
        self.stats.partitions_processed += 1
        self.stats.participants.add(tds_id)
        if self._stage == _STAGE_FINALIZE:
            self.ssi.store_result_rows(self.query_id, rows)
        else:
            self._round_outputs.extend(partials)
            self.ssi.submit_partials(self.query_id, partials)
        if self._tracker.all_done():
            self._advance()

    # ------------------------------------------------------------------ #
    # stage machine
    # ------------------------------------------------------------------ #
    def _work_kind(self) -> int:
        if self._stage == _STAGE_FINALIZE:
            return WORK_FINALIZE
        if self.meta.protocol == "s_agg":
            return WORK_FOLD
        return WORK_FOLD_PER_GROUP

    def _start_aggregation(self) -> None:
        items: list[Item] = list(self.ssi.covering_result(self.query_id))
        if not items:
            # Nothing was collected: publish an empty result rather than
            # stalling every poller forever.
            self.ssi.publish_result(self.query_id)
            self._stage = _STAGE_DONE
            return
        self._stage = _STAGE_FOLD
        self._open_round(items)

    def _open_round(self, items: list[Item]) -> None:
        if not items:
            # A stage produced nothing to process (e.g. partitions that
            # held only dummies): publish what the SSI has instead of
            # stalling every poller forever.
            self.ssi.publish_result(self.query_id)
            self._stage = _STAGE_DONE
            self._tracker = None
            return
        self._round_items = items
        self._round_outputs = []
        if self._stage == _STAGE_FINALIZE:
            partitioner: RandomPartitioner | TagPartitioner = RandomPartitioner(
                self._filter_size, self._rng
            )
        elif self.meta.protocol == "s_agg":
            partitioner = RandomPartitioner(self._sagg_partition_size, self._rng)
        elif self._stage == _STAGE_FOLD:
            partitioner = TagPartitioner(max_partition_size=self._first_step_size)
        else:  # ed_hist merge step
            partitioner = TagPartitioner()
        partitions = self._renumber(partitioner.partition(items))
        self._tracker = PartitionTracker(partitions, self.partition_timeout)

    def _renumber(self, partitions: list[Partition]) -> list[Partition]:
        """Coordinator-unique partition ids across all rounds, so a stale
        submit from a previous round can never alias a live partition."""
        renumbered = []
        for partition in partitions:
            renumbered.append(Partition(self._next_partition_id, partition.items))
            self._next_partition_id += 1
        return renumbered

    def _advance(self) -> None:
        outputs = list(self._round_outputs)
        self.ssi.take_partials(self.query_id)  # drained into the next stage
        if self._stage == _STAGE_FINALIZE:
            self.ssi.publish_result(self.query_id)
            self._stage = _STAGE_DONE
            self._tracker = None
            return
        self.stats.aggregation_rounds += 1
        if self.meta.protocol == "s_agg":
            if len(outputs) <= 1:
                self._stage = _STAGE_FINALIZE
            self._open_round(list(outputs))
            return
        # ed_hist: fold -> merge -> finalize
        if self._stage == _STAGE_FOLD:
            self._stage = _STAGE_MERGE
        elif self._stage == _STAGE_MERGE:
            self._stage = _STAGE_FINALIZE
        self._open_round(list(outputs))
