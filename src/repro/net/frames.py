"""Wire framing for the repro network runtime.

Every message on the wire is one *frame*::

    +----------------+---------+----------+--------------+---------+
    | length (u32 BE)| version | msg type | corr id (u32)| payload |
    +----------------+---------+----------+--------------+---------+
          4 bytes      1 byte    1 byte       4 bytes     length-6

``length`` covers the version byte, the type byte, the correlation id
and the payload, and is capped by :data:`MAX_FRAME_BYTES` — a peer
declaring more is cut off before a single payload byte is read.  The
*correlation id* (v3) lets one connection carry a window of concurrent
requests: a response echoes the id of the request it answers, so the
transport routes it to the right waiter regardless of completion order.
The id is routing state only — retried requests carry fresh ids while
their idempotency key (the payload-level client-id + sequence) stays
fixed.

The payload encoding is a small hand-rolled struct layer (*not*
:mod:`repro.core.codec`: that codec can express plaintext rows, and this
module sits on the SSI side of the trust boundary — messages here carry
only what the SSI may legitimately see: query envelopes, opaque
ciphertext blobs and partition/query ids).

All malformed input raises :class:`~repro.exceptions.ProtocolError`.
"""

from __future__ import annotations

import asyncio
import struct
from dataclasses import dataclass

from repro.core.messages import (
    Credential,
    EncryptedPartial,
    EncryptedTuple,
    EncryptedTupleBlock,
    QueryEnvelope,
    QueryResult,
)
from repro.exceptions import FrameTooLargeError, ProtocolError

#: protocol version spoken by this build; bumped on incompatible changes
#: (v2: mutating requests carry a client-id + sequence idempotency key;
#: v3: frames carry a correlation id for pipelined RPC, and tuples may
#: travel as columnar MSG_SUBMIT_TUPLES_BATCH blocks;
#: v4: an optional extension block follows the fixed header — currently
#: carrying trace context — plus MSG_HELLO capability negotiation and
#: MSG_GET_STATS)
PROTOCOL_VERSION = 4

#: oldest version this build still accepts; peers speaking it simply
#: never carry extensions.  MSG_HELLO is always encoded at this version
#: so that *any* peer can parse the handshake frame itself.
MIN_PROTOCOL_VERSION = 3

#: bytes of the length prefix preceding every frame body
LENGTH_PREFIX_BYTES = 4

#: fixed body header: version (1) + msg type (1) + correlation id (4).
#: In v4 an extension block (u8 count, then per-extension u8 type +
#: u16 BE length + bytes) sits between this header and the payload; the
#: correlation id stays at a fixed offset so response routing and the
#: transport's in-place corr-id rewrite are version-independent.
BODY_HEADER_BYTES = 6

#: the smallest well-formed frame on the wire (prefix + body header)
MIN_FRAME_BYTES = LENGTH_PREFIX_BYTES + BODY_HEADER_BYTES

#: correlation ids are u32; 0 is reserved for unsolicited/connection-
#: scoped frames (e.g. a framing error answered before the id is known)
MAX_CORRELATION_ID = 0xFFFFFFFF

#: hard ceiling on one frame (version + type + corr id + payload)
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: ceiling on any single variable-length field inside a payload
MAX_FIELD_BYTES = MAX_FRAME_BYTES

#: ceiling on item counts (tuples / partials / rows per message)
MAX_ITEMS = 1_000_000

# --------------------------------------------------------------------- #
# message types
# --------------------------------------------------------------------- #
MSG_POST_QUERY = 0x01
MSG_FETCH_QUERY = 0x02
MSG_ACTIVE_QUERIES = 0x03
MSG_SUBMIT_TUPLES = 0x04
MSG_COLLECTED_COUNT = 0x05
MSG_EVALUATE_SIZE = 0x06
MSG_CLOSE_COLLECTION = 0x07
MSG_COVERING_RESULT = 0x08
MSG_SUBMIT_PARTIALS = 0x09
MSG_TAKE_PARTIALS = 0x0A
MSG_PARTIAL_COUNT = 0x0B
MSG_STORE_RESULT_ROWS = 0x0C
MSG_PUBLISH_RESULT = 0x0D
MSG_RESULT_READY = 0x0E
MSG_FETCH_RESULT = 0x0F
MSG_FETCH_PARTITION = 0x10
MSG_SUBMIT_PARTITION_RESULT = 0x11
MSG_PING = 0x12
MSG_SUBMIT_TUPLES_BATCH = 0x13
MSG_GET_STATS = 0x14
MSG_HELLO = 0x15
MSG_GET_COMMITMENT = 0x16
MSG_GET_HEALTH = 0x17

MSG_OK = 0x40
MSG_ERROR = 0x41

REQUEST_TYPES = frozenset(range(MSG_POST_QUERY, MSG_GET_HEALTH + 1))

# --------------------------------------------------------------------- #
# v4 frame extensions + capability flags
# --------------------------------------------------------------------- #
#: extension carrying a 16-byte trace context (u64 trace id + u64 span
#: id, big-endian); see repro.obs.spans.TraceContext
EXT_TRACE = 0x01

#: extension on MSG_OK acks from a durable server: the commitment-chain
#: position the acked mutation is covered by (u64 record count + 32-byte
#: blake2b chain head; see repro.store.commitment.Commitment.to_wire)
EXT_COMMITMENT = 0x02

#: ceiling on extensions per frame (a routing header, not a data lane)
MAX_EXTENSIONS = 8

#: capability bits exchanged in MSG_HELLO
CAP_TRACE_CONTEXT = 1 << 0
CAP_STATS = 1 << 1
#: server persists state durably and answers MSG_GET_COMMITMENT; acks
#: on mutating requests carry an EXT_COMMITMENT extension
CAP_DURABLE_COMMITMENT = 1 << 2
#: server answers MSG_GET_HEALTH with a rolling-window SLO verdict
CAP_HEALTH = 1 << 3

#: everything this build implements
CAPABILITIES = (
    CAP_TRACE_CONTEXT | CAP_STATS | CAP_DURABLE_COMMITMENT | CAP_HEALTH
)

# --------------------------------------------------------------------- #
# wire-level error codes (satellite: typed errors, no tracebacks)
# --------------------------------------------------------------------- #
ERR_MALFORMED = 1
ERR_UNSUPPORTED_VERSION = 2
ERR_UNKNOWN_OP = 3
ERR_DUPLICATE_QUERY = 4
ERR_UNKNOWN_QUERY = 5
ERR_RESULT_NOT_READY = 6
ERR_BACKPRESSURE = 7
ERR_TOO_LARGE = 8
ERR_INTERNAL = 9
#: a per-querier admission quota (active queries / in-flight bytes) was
#: exhausted; the error payload carries a retry-after hint (f64 seconds)
ERR_ADMISSION = 10

# fetch_partition statuses
STATUS_WAIT = 0
STATUS_WORK = 1
STATUS_DONE = 2

# work-unit kinds (what a fleet TDS should do with the partition)
WORK_FOLD = 1  # S_Agg: fold to a single partial
WORK_FOLD_PER_GROUP = 2  # tagged protocols: fold to per-group partials
WORK_FINALIZE = 3  # filtering: merge, HAVING, re-encrypt under k1

# partition-result kinds
RESULT_PARTIALS = 1
RESULT_ROWS = 2

_ITEM_TUPLE = 0
_ITEM_PARTIAL = 1

Item = EncryptedTuple | EncryptedPartial


@dataclass(frozen=True)
class QueryMeta:
    """Cleartext scheduling metadata riding next to an envelope.

    ``protocol`` names the protocol *shape* so the SSI knows how to
    partition (randomly vs. by tag) — information the paper's SSI holds
    anyway (it executes steps 5/9).  ``params`` are numeric scheduling
    knobs (reduction factor, partition sizes, timeouts); never query
    content."""

    protocol: str = ""
    params: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        # Accept a {key: value} mapping for convenience; store pairs.
        if isinstance(self.params, dict):
            object.__setattr__(
                self,
                "params",
                tuple((str(k), float(v)) for k, v in self.params.items()),
            )

    def param(self, key: str, default: float) -> float:
        for name, value in self.params:
            if name == key:
                return value
        return default


@dataclass(frozen=True)
class WorkUnit:
    """One partition of work handed to a polling TDS."""

    query_id: str
    kind: int
    partition_id: int
    items: tuple[Item, ...]


# --------------------------------------------------------------------- #
# primitive writer / reader
# --------------------------------------------------------------------- #
class Writer:
    """Append-only struct writer over a bytearray."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def u8(self, value: int) -> "Writer":
        self._buf += struct.pack(">B", value)
        return self

    def u32(self, value: int) -> "Writer":
        self._buf += struct.pack(">I", value)
        return self

    def i64(self, value: int) -> "Writer":
        self._buf += struct.pack(">q", value)
        return self

    def f64(self, value: float) -> "Writer":
        self._buf += struct.pack(">d", value)
        return self

    def boolean(self, value: bool) -> "Writer":
        return self.u8(1 if value else 0)

    def blob(self, value: bytes) -> "Writer":
        if len(value) > MAX_FIELD_BYTES:
            raise ProtocolError(f"field of {len(value)} bytes exceeds the frame limit")
        self.u32(len(value))
        self._buf += value
        return self

    def text(self, value: str) -> "Writer":
        return self.blob(value.encode("utf-8"))

    def opt_blob(self, value: bytes | None) -> "Writer":
        if value is None:
            return self.boolean(False)
        self.boolean(True)
        return self.blob(value)

    def opt_text(self, value: str | None) -> "Writer":
        if value is None:
            return self.boolean(False)
        self.boolean(True)
        return self.text(value)

    def getvalue(self) -> bytes:
        return bytes(self._buf)


class Reader:
    """Bounds-checked cursor over a received payload; every violation is a
    :class:`ProtocolError`, never an ``IndexError``/``struct.error``."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def _take(self, n: int) -> bytes:
        if n < 0 or self._pos + n > len(self._data):
            raise ProtocolError("truncated message payload")
        chunk = self._data[self._pos : self._pos + n]
        self._pos += n
        return chunk

    def mark(self) -> int:
        """Current cursor position, for :meth:`since`."""
        return self._pos

    def since(self, mark: int) -> memoryview:
        """The raw bytes consumed since *mark*, as a zero-copy view.
        Lets a handler keep the wire encoding of a span it just decoded
        (the codec is canonical, so these bytes equal a re-encode)
        without paying for a copy; the view pins the request buffer,
        which is immutable for the life of the dispatch."""
        return memoryview(self._data)[mark : self._pos]

    def u8(self) -> int:
        return self._take(1)[0]

    def u32(self) -> int:
        (value,) = struct.unpack(">I", self._take(4))
        return int(value)

    def i64(self) -> int:
        (value,) = struct.unpack(">q", self._take(8))
        return int(value)

    def f64(self) -> float:
        (value,) = struct.unpack(">d", self._take(8))
        return float(value)

    def boolean(self) -> bool:
        flag = self.u8()
        if flag not in (0, 1):
            raise ProtocolError(f"invalid boolean byte 0x{flag:02x}")
        return flag == 1

    def blob(self) -> bytes:
        length = self.u32()
        if length > MAX_FIELD_BYTES:
            raise ProtocolError(
                f"field declares {length} bytes, above the frame limit"
            )
        return self._take(length)

    def text(self) -> str:
        raw = self.blob()
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError:
            raise ProtocolError("text field is not valid UTF-8") from None

    def opt_blob(self) -> bytes | None:
        return self.blob() if self.boolean() else None

    def opt_text(self) -> str | None:
        return self.text() if self.boolean() else None

    def count(self, limit: int = MAX_ITEMS) -> int:
        value = self.u32()
        if value > limit:
            raise ProtocolError(f"count {value} exceeds the limit of {limit}")
        return value

    def remaining(self) -> int:
        """Bytes not yet consumed — lets a decoder probe for optional
        trailing fields (e.g. the retry-after hint on ERR_ADMISSION)."""
        return len(self._data) - self._pos

    def expect_end(self) -> None:
        if self._pos != len(self._data):
            raise ProtocolError(
                f"{len(self._data) - self._pos} trailing bytes after payload"
            )


# --------------------------------------------------------------------- #
# frame layer
# --------------------------------------------------------------------- #
def pack_frame(
    msg_type: int,
    payload: bytes,
    correlation_id: int = 0,
    version: int = PROTOCOL_VERSION,
    extensions: tuple[tuple[int, bytes], ...] | list[tuple[int, bytes]] = (),
) -> bytes:
    """Length-prefixed frame: header + version + type + corr id
    [+ v4 extension block] + payload.

    ``extensions`` is a sequence of ``(ext_type, raw_bytes)`` pairs;
    only encodable at ``version >= 4`` (a v3 frame cannot carry them).
    """
    if not MIN_PROTOCOL_VERSION <= version <= PROTOCOL_VERSION:
        raise ProtocolError(f"cannot encode protocol version {version}")
    if not 0 <= correlation_id <= MAX_CORRELATION_ID:
        raise ProtocolError(f"correlation id {correlation_id} out of range")
    ext_block = b""
    if version >= 4:
        if len(extensions) > MAX_EXTENSIONS:
            raise ProtocolError(
                f"{len(extensions)} extensions exceed the per-frame limit"
            )
        parts = [struct.pack(">B", len(extensions))]
        for ext_type, raw in extensions:
            if not 0 <= ext_type <= 0xFF:
                raise ProtocolError(f"extension type {ext_type} out of range")
            if len(raw) > 0xFFFF:
                raise ProtocolError(
                    f"extension of {len(raw)} bytes exceeds the u16 limit"
                )
            parts.append(struct.pack(">BH", ext_type, len(raw)))
            parts.append(raw)
        ext_block = b"".join(parts)
    elif extensions:
        raise ProtocolError(f"protocol version {version} cannot carry extensions")
    body_len = BODY_HEADER_BYTES + len(ext_block) + len(payload)
    if body_len > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {body_len} bytes exceeds MAX_FRAME_BYTES")
    return (
        struct.pack(">IBBI", body_len, version, msg_type, correlation_id)
        + ext_block
        + payload
    )


#: Shared read-only dict returned for frames with no extension block —
#: the overwhelmingly common case; never mutate it.
_NO_EXTENSIONS: dict[int, bytes] = {}


def unpack_frame_ext(
    body: bytes,
) -> tuple[int, int, int, dict[int, bytes], Reader]:
    """Split a frame body into (version, msg_type, correlation_id,
    extensions, payload reader), checking the protocol version range.

    Unknown extension types are length-validated and ignored (carried in
    the returned dict for the caller to consult); a duplicated extension
    type keeps the first occurrence.
    """
    if len(body) < 2:
        raise ProtocolError("frame body shorter than its fixed header")
    version, msg_type = body[0], body[1]
    if not MIN_PROTOCOL_VERSION <= version <= PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version} (speaking "
            f"{MIN_PROTOCOL_VERSION}..{PROTOCOL_VERSION})",
        )
    if len(body) < BODY_HEADER_BYTES:
        raise ProtocolError("frame body shorter than its fixed header")
    correlation_id = int.from_bytes(body[2:BODY_HEADER_BYTES], "big")
    pos = BODY_HEADER_BYTES
    extensions = _NO_EXTENSIONS
    if version >= 4:
        if len(body) < pos + 1:
            raise ProtocolError("v4 frame body missing its extension count")
        ext_count = body[pos]
        pos += 1
        if ext_count:
            extensions = {}
        if ext_count > MAX_EXTENSIONS:
            raise ProtocolError(
                f"{ext_count} extensions exceed the per-frame limit"
            )
        for _ in range(ext_count):
            if len(body) < pos + 3:
                raise ProtocolError("truncated frame extension header")
            ext_type = body[pos]
            ext_len = int.from_bytes(body[pos + 1 : pos + 3], "big")
            pos += 3
            if len(body) < pos + ext_len:
                raise ProtocolError("truncated frame extension body")
            extensions.setdefault(ext_type, bytes(body[pos : pos + ext_len]))
            pos += ext_len
    return version, msg_type, correlation_id, extensions, Reader(body[pos:])


def unpack_frame_body(body: bytes) -> tuple[int, int, Reader]:
    """Back-compat view of :func:`unpack_frame_ext`: (msg_type,
    correlation_id, payload reader), extensions dropped."""
    _, msg_type, correlation_id, _, reader = unpack_frame_ext(body)
    return msg_type, correlation_id, reader


def peek_correlation_id(body: bytes) -> int:
    """Read a frame body's correlation id without decoding the payload —
    the transport's response-routing fast path.  Returns 0 (the
    connection-scoped id) for bodies too short to carry one."""
    if len(body) < BODY_HEADER_BYTES:
        return 0
    return int.from_bytes(body[2:BODY_HEADER_BYTES], "big")


async def read_frame(
    reader: asyncio.StreamReader, max_bytes: int = MAX_FRAME_BYTES
) -> bytes:
    """Read one frame body from a stream, enforcing the size limit before
    any payload byte is consumed.  Raises ``asyncio.IncompleteReadError``
    on EOF mid-frame, :class:`FrameTooLargeError` on oversized frames and
    :class:`ProtocolError` on undersized ones."""
    header = await reader.readexactly(LENGTH_PREFIX_BYTES)
    (body_len,) = struct.unpack(">I", header)
    if body_len > max_bytes:
        raise FrameTooLargeError(
            f"peer declared a {body_len}-byte frame, above the "
            f"{max_bytes}-byte limit"
        )
    if body_len < BODY_HEADER_BYTES:
        raise ProtocolError("peer declared a frame too short for its header")
    return await reader.readexactly(body_len)


# --------------------------------------------------------------------- #
# composite field encodings
# --------------------------------------------------------------------- #
def write_envelope(w: Writer, envelope: QueryEnvelope) -> None:
    w.text(envelope.query_id)
    w.blob(envelope.encrypted_query)
    w.text(envelope.credential.subject)
    roles = sorted(envelope.credential.roles)
    w.u32(len(roles))
    for role in roles:
        w.text(role)
    w.blob(envelope.credential.signature)
    if envelope.size_tuples is None:
        w.boolean(False)
    else:
        w.boolean(True)
        w.i64(envelope.size_tuples)
    if envelope.size_seconds is None:
        w.boolean(False)
    else:
        w.boolean(True)
        w.f64(envelope.size_seconds)


def read_envelope(r: Reader) -> QueryEnvelope:
    query_id = r.text()
    encrypted_query = r.blob()
    subject = r.text()
    roles = frozenset(r.text() for _ in range(r.count(limit=1024)))
    signature = r.blob()
    size_tuples = r.i64() if r.boolean() else None
    size_seconds = r.f64() if r.boolean() else None
    return QueryEnvelope(
        query_id=query_id,
        encrypted_query=encrypted_query,
        credential=Credential(subject, roles, signature),
        size_tuples=size_tuples,
        size_seconds=size_seconds,
    )


def write_meta(w: Writer, meta: QueryMeta) -> None:
    w.text(meta.protocol)
    w.u32(len(meta.params))
    for key, value in meta.params:
        w.text(key)
        w.f64(value)


def read_meta(r: Reader) -> QueryMeta:
    protocol = r.text()
    params = tuple(
        (r.text(), r.f64()) for _ in range(r.count(limit=256))
    )
    return QueryMeta(protocol=protocol, params=params)


def write_items(w: Writer, items: tuple[Item, ...] | list[Item]) -> None:
    if len(items) > MAX_ITEMS:
        raise ProtocolError(f"{len(items)} items exceed the per-message limit")
    w.u32(len(items))
    for item in items:
        w.u8(_ITEM_PARTIAL if isinstance(item, EncryptedPartial) else _ITEM_TUPLE)
        w.blob(item.payload)
        w.opt_blob(item.group_tag)


def read_items(r: Reader) -> list[Item]:
    items: list[Item] = []
    for _ in range(r.count()):
        item_kind = r.u8()
        payload = r.blob()
        tag = r.opt_blob()
        if item_kind == _ITEM_TUPLE:
            items.append(EncryptedTuple(payload, tag))
        elif item_kind == _ITEM_PARTIAL:
            items.append(EncryptedPartial(payload, tag))
        else:
            raise ProtocolError(f"unknown item kind 0x{item_kind:02x}")
    return items


def read_tuples(r: Reader) -> list[EncryptedTuple]:
    tuples: list[EncryptedTuple] = []
    for item in read_items(r):
        if not isinstance(item, EncryptedTuple):
            raise ProtocolError("expected tuple items, got a partial")
        tuples.append(item)
    return tuples


def read_partials(r: Reader) -> list[EncryptedPartial]:
    partials: list[EncryptedPartial] = []
    for item in read_items(r):
        if not isinstance(item, EncryptedPartial):
            raise ProtocolError("expected partial items, got a tuple")
        partials.append(item)
    return partials


def write_rows(w: Writer, rows: tuple[bytes, ...] | list[bytes]) -> None:
    if len(rows) > MAX_ITEMS:
        raise ProtocolError(f"{len(rows)} rows exceed the per-message limit")
    w.u32(len(rows))
    for row in rows:
        w.blob(row)


def read_rows(r: Reader) -> list[bytes]:
    return [r.blob() for _ in range(r.count())]


def write_work_unit(w: Writer, unit: WorkUnit) -> None:
    w.text(unit.query_id)
    w.u8(unit.kind)
    w.i64(unit.partition_id)
    write_items(w, unit.items)


def read_work_unit(r: Reader) -> WorkUnit:
    query_id = r.text()
    kind = r.u8()
    if kind not in (WORK_FOLD, WORK_FOLD_PER_GROUP, WORK_FINALIZE):
        raise ProtocolError(f"unknown work-unit kind 0x{kind:02x}")
    partition_id = r.i64()
    items = tuple(read_items(r))
    return WorkUnit(query_id, kind, partition_id, items)


def write_result(w: Writer, result: QueryResult) -> None:
    w.text(result.query_id)
    write_rows(w, result.encrypted_rows)


def read_result(r: Reader) -> QueryResult:
    query_id = r.text()
    rows = read_rows(r)
    return QueryResult(query_id, tuple(rows))


# --------------------------------------------------------------------- #
# batched tuple submission (v3)
# --------------------------------------------------------------------- #
#: tag-length sentinel marking "no group tag" in the tag-lengths vector
_NO_TAG = 0xFFFFFFFF


def write_tuple_block(w: Writer, block: EncryptedTupleBlock) -> None:
    """Columnar encoding of a tuple batch: one lengths vector, one tag-
    lengths vector (``0xFFFFFFFF`` = no tag), one payload buffer and one
    tag buffer — four blobs total, independent of the tuple count."""
    count = len(block)
    if count > MAX_ITEMS:
        raise ProtocolError(f"{count} tuples exceed the per-message limit")
    offsets = block.offsets
    lengths = [offsets[i + 1] - offsets[i] for i in range(count)]
    tag_lengths = [
        _NO_TAG if tag is None else len(tag) for tag in block.tags
    ]
    w.u32(count)
    w.blob(struct.pack(f">{count}I", *lengths))
    w.blob(struct.pack(f">{count}I", *tag_lengths))
    w.blob(block.payloads)
    w.blob(b"".join(tag for tag in block.tags if tag is not None))


def read_tuple_block(r: Reader) -> EncryptedTupleBlock:
    """Decode a columnar tuple batch.  The payload buffer is kept whole
    (no per-tuple copies); only the small tag buffer is sliced."""
    count = r.count()
    lengths_raw = r.blob()
    if len(lengths_raw) != 4 * count:
        raise ProtocolError(
            f"lengths vector of {len(lengths_raw)} bytes does not match "
            f"{count} tuples"
        )
    tag_lengths_raw = r.blob()
    if len(tag_lengths_raw) != 4 * count:
        raise ProtocolError(
            f"tag-lengths vector of {len(tag_lengths_raw)} bytes does not "
            f"match {count} tuples"
        )
    lengths = struct.unpack(f">{count}I", lengths_raw)
    tag_lengths = struct.unpack(f">{count}I", tag_lengths_raw)
    payloads = r.blob()
    tags_raw = r.blob()
    offsets = [0] * (count + 1)
    total = 0
    for i, length in enumerate(lengths):
        total += length
        offsets[i + 1] = total
    if total != len(payloads):
        raise ProtocolError(
            f"payload buffer of {len(payloads)} bytes does not match the "
            f"declared {total}"
        )
    tags: list[bytes | None] = [None] * count
    tag_view = memoryview(tags_raw)
    tag_pos = 0
    for i, tag_length in enumerate(tag_lengths):
        if tag_length == _NO_TAG:
            continue
        if tag_pos + tag_length > len(tags_raw):
            raise ProtocolError("tag buffer shorter than its declared lengths")
        tags[i] = bytes(tag_view[tag_pos : tag_pos + tag_length])
        tag_pos += tag_length
    if tag_pos != len(tags_raw):
        raise ProtocolError(
            f"{len(tags_raw) - tag_pos} trailing bytes in the tag buffer"
        )
    return EncryptedTupleBlock(
        payloads=payloads, offsets=tuple(offsets), tags=tuple(tags)
    )


def pack_error(
    code: int,
    message: str,
    correlation_id: int = 0,
    retry_after: float | None = None,
) -> bytes:
    w = Writer()
    w.u8(code)
    w.text(message)
    if retry_after is not None:
        # Optional trailing hint (currently only on ERR_ADMISSION).
        # Trailing-field extension is safe here: error payloads are the
        # one message clients never expect_end() on.
        w.f64(retry_after)
    # Errors are encoded at the floor version: every peer must be able
    # to parse a rejection, whatever version its request spoke.
    return pack_frame(
        MSG_ERROR, w.getvalue(), correlation_id, version=MIN_PROTOCOL_VERSION
    )


# --------------------------------------------------------------------- #
# capability handshake (v4)
# --------------------------------------------------------------------- #
def write_hello(w: Writer, max_version: int, capabilities: int) -> None:
    """HELLO payload: the sender's best version + capability bitmask.

    The HELLO *frame* is always packed at :data:`MIN_PROTOCOL_VERSION`
    so a peer of any supported vintage can parse it; a pre-v4 peer
    answers ``ERR_UNKNOWN_OP`` for the unknown msg type, which the
    client treats as "settle on v3, no capabilities"."""
    w.u8(max_version)
    w.u32(capabilities)


def read_hello(r: Reader) -> tuple[int, int]:
    max_version = r.u8()
    capabilities = r.u32()
    return max_version, capabilities
