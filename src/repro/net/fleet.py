"""An async fleet of TDS clients serving the SSI over the wire.

Each :class:`TrustedDataServer` gets its own :class:`TDSClient` (own
transport, own connection) and runs the paper's device loop: poll the
global querybox, contribute encrypted tuples for new queries, then poll
``fetch_partition`` and fold/finalize whatever work the SSI assigns —
exactly the connect/contribute/disconnect cycle of §3.2, but concurrent
and over real sockets.  A semaphore caps how many devices do heavy work
simultaneously.

Failure injection reuses the shapes in :mod:`repro.simulation.failures`:
the same ``(tds_id, partition) -> bool`` injectors drive *network*
faults here — a firing injector makes the client drop its connection (or
stall past the partition timeout) instead of submitting, so the SSI-side
tracker must detect the timeout and reassign, end-to-end.
"""

from __future__ import annotations

import asyncio
import logging
import random
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Sequence

from repro.core.messages import Partition, QueryEnvelope
from repro.exceptions import ProtocolError, TransportError, UnknownQueryError
from repro.net import frames
from repro.net.client import RetryPolicy, TDSClient
from repro.net.coordinator import SUPPORTED_PROTOCOLS
from repro.net.frames import QueryMeta, WorkUnit
from repro.net.transport import TCPTransport, Transport
from repro.simulation.failures import FailureInjector
from repro.sql.ast import SelectStatement
from repro.tds.histogram import EquiDepthHistogram
from repro.tds.node import TrustedDataServer

logger = logging.getLogger(__name__)


@dataclass
class FaultPlan:
    """How a firing injector manifests on the wire.

    * ``drop`` — close the connection without submitting (the tracker
      times the partition out and reassigns it);
    * ``stall`` — hold the response past ``stall_seconds`` first, then
      drop (a hung device rather than a dead one)."""

    injector: FailureInjector
    mode: str = "drop"
    stall_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in ("drop", "stall"):
            raise ProtocolError(f"unknown fault mode {self.mode!r}")


@dataclass
class FleetStats:
    """Aggregate observability for one fleet run."""

    contributions: int = 0
    tuples_submitted: int = 0
    partitions_processed: int = 0
    injected_faults: int = 0
    queries_completed: set[str] = field(default_factory=set)
    participants: set[str] = field(default_factory=set)


class FleetRunner:
    """Drive N TDS clients concurrently against one SSI endpoint."""

    def __init__(
        self,
        tds_list: Sequence[TrustedDataServer],
        transport_factory: Callable[[], Transport],
        *,
        histogram: EquiDepthHistogram | None = None,
        fault_plan: FaultPlan | None = None,
        policy: RetryPolicy | None = None,
        concurrency: int = 8,
        poll_interval: float = 0.02,
        rng: random.Random | None = None,
        sleep: Callable[[float], Awaitable[None]] = asyncio.sleep,
    ) -> None:
        if not tds_list:
            raise ProtocolError("a fleet needs at least one TDS")
        if concurrency < 1:
            raise ProtocolError("concurrency must be >= 1")
        self.tds_list = list(tds_list)
        self.transport_factory = transport_factory
        self.histogram = histogram
        self.fault_plan = fault_plan
        self.policy = policy if policy is not None else RetryPolicy()
        self.concurrency = concurrency
        self.poll_interval = poll_interval
        self.stats = FleetStats()
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep
        self._stop = asyncio.Event()
        self._semaphore: asyncio.Semaphore | None = None
        self._until: int | None = None
        # shared across workers
        self._known: dict[str, tuple[QueryEnvelope, QueryMeta]] = {}
        self._contributed: dict[str, set[str]] = {}
        self._done: set[str] = set()
        self._closed: set[str] = set()

    # ------------------------------------------------------------------ #
    def stop(self) -> None:
        self._stop.set()

    async def run(self, until_queries_done: int | None = None) -> FleetStats:
        """Run every TDS worker until :meth:`stop` (or until
        *until_queries_done* queries have completed)."""
        self._semaphore = asyncio.Semaphore(self.concurrency)
        self._until = until_queries_done
        workers = [
            asyncio.create_task(self._serve_tds(tds)) for tds in self.tds_list
        ]
        closer = asyncio.create_task(self._close_collections())
        try:
            await self._stop.wait()
        finally:
            for task in [closer, *workers]:
                task.cancel()
            await asyncio.gather(closer, *workers, return_exceptions=True)
        return self.stats

    # ------------------------------------------------------------------ #
    # per-device loop
    # ------------------------------------------------------------------ #
    async def _serve_tds(self, tds: TrustedDataServer) -> None:
        client = TDSClient(
            self.transport_factory(),
            self.policy,
            rng=random.Random(self._rng.getrandbits(64)),
            sleep=self._sleep,
        )
        statements: dict[str, SelectStatement] = {}
        contributed: set[str] = set()
        try:
            while not self._stop.is_set():
                try:
                    await self._poll_once(tds, client, statements, contributed)
                except (TransportError, asyncio.TimeoutError):
                    pass  # server briefly unreachable: back off and retry
                except ProtocolError as exc:
                    # e.g. a typed server error outside the handled set;
                    # log and keep polling — one bad exchange must not
                    # silently retire the worker for the whole run.
                    logger.warning(
                        "tds %s: protocol error (continuing): %s",
                        tds.tds_id,
                        exc,
                    )
                await self._sleep(self.poll_interval)
        finally:
            await client.close()

    async def _poll_once(
        self,
        tds: TrustedDataServer,
        client: TDSClient,
        statements: dict[str, SelectStatement],
        contributed: set[str],
    ) -> None:
        for envelope, meta in await client.active_queries():
            query_id = envelope.query_id
            if meta.protocol not in SUPPORTED_PROTOCOLS:
                continue
            self._known.setdefault(query_id, (envelope, meta))
            if query_id not in contributed:
                # Marked contributed only once the submission succeeded:
                # if retries are exhausted mid-submit, the next poll must
                # try again, or a no-SIZE query would never close.
                await self._contribute(tds, client, envelope, meta)
                contributed.add(query_id)
        for query_id in list(self._known):
            if query_id in self._done:
                continue
            try:
                status, unit = await client.fetch_partition(query_id, tds.tds_id)
            except UnknownQueryError:
                self._done.add(query_id)
                continue
            if status == frames.STATUS_DONE:
                self._done.add(query_id)
                self.stats.queries_completed.add(query_id)
                if self._until is not None and len(
                    self.stats.queries_completed
                ) >= self._until:
                    self.stop()
            elif status == frames.STATUS_WORK and unit is not None:
                await self._process_unit(tds, client, unit, statements)

    async def _contribute(
        self,
        tds: TrustedDataServer,
        client: TDSClient,
        envelope: QueryEnvelope,
        meta: QueryMeta,
    ) -> None:
        assert self._semaphore is not None
        async with self._semaphore:
            if meta.protocol == "s_agg":
                tuples = tds.collect_for_sagg(envelope)
            elif meta.protocol == "ed_hist":
                if self.histogram is None:
                    raise ProtocolError(
                        "fleet has no histogram; ed_hist queries need one"
                    )
                tuples = tds.collect_for_histogram(envelope, self.histogram)
            else:  # pragma: no cover - filtered by SUPPORTED_PROTOCOLS
                return
            await client.submit_tuples(envelope.query_id, tuples)
        self.stats.contributions += 1
        self.stats.tuples_submitted += len(tuples)
        self.stats.participants.add(tds.tds_id)
        self._contributed.setdefault(envelope.query_id, set()).add(tds.tds_id)

    async def _process_unit(
        self,
        tds: TrustedDataServer,
        client: TDSClient,
        unit: WorkUnit,
        statements: dict[str, SelectStatement],
    ) -> None:
        assert self._semaphore is not None
        partition = Partition(unit.partition_id, unit.items)
        if self.fault_plan is not None and self.fault_plan.injector(
            tds.tds_id, partition
        ):
            await self._inject_fault(client)
            return
        envelope, _meta = self._known[unit.query_id]
        statement = statements.get(unit.query_id)
        if statement is None:
            statement = tds.open_query(envelope)
            statements[unit.query_id] = statement
        async with self._semaphore:
            if unit.kind == frames.WORK_FOLD:
                partials = [tds.aggregate_partition(statement, partition)]
                rows = None
            elif unit.kind == frames.WORK_FOLD_PER_GROUP:
                partials = tds.aggregate_partition_per_group(statement, partition)
                rows = None
            elif unit.kind == frames.WORK_FINALIZE:
                partials = None
                rows = tds.finalize_partition(statement, partition)
            else:  # pragma: no cover - validated at decode time
                raise ProtocolError(f"unknown work kind {unit.kind}")
            await client.submit_partition_result(
                unit.query_id,
                unit.partition_id,
                tds.tds_id,
                partials=partials,
                rows=rows,
            )
        self.stats.partitions_processed += 1
        self.stats.participants.add(tds.tds_id)

    async def _inject_fault(self, client: TDSClient) -> None:
        """The §3.2 failure, on a real wire: go silent mid-partition."""
        self.stats.injected_faults += 1
        plan = self.fault_plan
        assert plan is not None
        if plan.mode == "stall":
            await self._sleep(plan.stall_seconds)
        transport = client.transport
        if isinstance(transport, TCPTransport):
            await transport.drop()

    # ------------------------------------------------------------------ #
    # collection closing (queries without a SIZE clause)
    # ------------------------------------------------------------------ #
    async def _close_collections(self) -> None:
        """The drivers stop collection after their collector list; the
        fleet analogue closes a no-SIZE query once every device has
        contributed (the SSI closes SIZE-clause queries itself)."""
        client = TDSClient(
            self.transport_factory(), self.policy, sleep=self._sleep
        )
        all_ids = {tds.tds_id for tds in self.tds_list}
        try:
            while not self._stop.is_set():
                for query_id, (envelope, _meta) in list(self._known.items()):
                    if query_id in self._closed or query_id in self._done:
                        continue
                    if envelope.size_tuples is not None:
                        continue
                    if envelope.size_seconds is not None:
                        continue
                    if self._contributed.get(query_id) == all_ids:
                        try:
                            await client.close_collection(query_id)
                            self._closed.add(query_id)
                        except (TransportError, asyncio.TimeoutError):
                            pass
                await self._sleep(self.poll_interval)
        finally:
            await client.close()
