"""An async fleet of TDS clients serving the SSI over the wire.

Each :class:`TrustedDataServer` gets its own :class:`TDSClient` (own
transport, own connection) and runs the paper's device loop: poll the
global querybox, contribute encrypted tuples for new queries, then poll
``fetch_partition`` and fold/finalize whatever work the SSI assigns —
exactly the connect/contribute/disconnect cycle of §3.2, but concurrent
and over real sockets.  A semaphore caps how many devices do heavy work
simultaneously.

Failure injection reuses the shapes in :mod:`repro.simulation.failures`:
the same ``(tds_id, partition) -> bool`` injectors drive *network*
faults here — a firing injector makes the client drop its connection (or
stall past the partition timeout) instead of submitting, so the SSI-side
tracker must detect the timeout and reassign, end-to-end.
"""

from __future__ import annotations

import asyncio
import importlib
import logging
import multiprocessing
import os
import random
import time
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Sequence

from repro.core.messages import Partition, QueryEnvelope
from repro.crypto.pool import CryptoPool
from repro.exceptions import ProtocolError, TransportError, UnknownQueryError
from repro.net import frames
from repro.net.batch import TupleBatcher
from repro.net.client import RetryPolicy, TDSClient
from repro.net.coordinator import SUPPORTED_PROTOCOLS
from repro.net.frames import QueryMeta, WorkUnit
from repro.net.transport import TCPTransport, Transport
from repro.obs import logs as obs_logs
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.simulation.failures import FailureInjector
from repro.sql.ast import SelectStatement
from repro.tds.histogram import EquiDepthHistogram
from repro.tds.node import TrustedDataServer

logger = logging.getLogger(__name__)

_CONTRIBUTIONS = obs_metrics.REGISTRY.counter(
    "repro_fleet_contributions_total",
    "Successful per-device tuple contributions, by shard.",
    ("shard",),
)
_TUPLES_SUBMITTED = obs_metrics.REGISTRY.counter(
    "repro_fleet_tuples_submitted_total",
    "Encrypted tuples submitted by fleet devices, by shard.",
    ("shard",),
)
_PARTITIONS = obs_metrics.REGISTRY.counter(
    "repro_fleet_partitions_total",
    "Partition work units processed by fleet devices, by shard.",
    ("shard",),
)
_PROTOCOL_ERRORS = obs_metrics.REGISTRY.counter(
    "repro_fleet_protocol_errors_total",
    "ProtocolErrors absorbed by the per-device poll loop, by shard.",
    ("shard",),
)


@dataclass
class FaultPlan:
    """How a firing injector manifests on the wire.

    * ``drop`` — close the connection without submitting (the tracker
      times the partition out and reassigns it);
    * ``stall`` — hold the response past ``stall_seconds`` first, then
      drop (a hung device rather than a dead one)."""

    injector: FailureInjector
    mode: str = "drop"
    stall_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in ("drop", "stall"):
            raise ProtocolError(f"unknown fault mode {self.mode!r}")


@dataclass
class FleetStats:
    """Aggregate observability for one fleet run."""

    contributions: int = 0
    tuples_submitted: int = 0
    partitions_processed: int = 0
    injected_faults: int = 0
    queries_completed: set[str] = field(default_factory=set)
    participants: set[str] = field(default_factory=set)


class FleetRunner:
    """Drive N TDS clients concurrently against one SSI endpoint."""

    def __init__(
        self,
        tds_list: Sequence[TrustedDataServer],
        transport_factory: Callable[[], Transport],
        *,
        histogram: EquiDepthHistogram | None = None,
        fault_plan: FaultPlan | None = None,
        policy: RetryPolicy | None = None,
        concurrency: int = 8,
        poll_interval: float = 0.02,
        batch_size: int = 0,
        batch_flush_interval: float = 0.02,
        crypto_pool: CryptoPool | None = None,
        close_no_size_queries: bool = True,
        shard_label: str = "local",
        health_check_interval: float = 0.0,
        health_backoff: float = 4.0,
        rng: random.Random | None = None,
        sleep: Callable[[float], Awaitable[None]] = asyncio.sleep,
    ) -> None:
        if not tds_list:
            raise ProtocolError("a fleet needs at least one TDS")
        if concurrency < 1:
            raise ProtocolError("concurrency must be >= 1")
        if batch_size < 0:
            raise ProtocolError("batch size must be >= 0 (0 disables batching)")
        if batch_flush_interval <= 0:
            raise ProtocolError("batch flush interval must be > 0")
        self.tds_list = list(tds_list)
        self.transport_factory = transport_factory
        self.histogram = histogram
        self.fault_plan = fault_plan
        self.policy = policy if policy is not None else RetryPolicy()
        self.concurrency = concurrency
        self.poll_interval = poll_interval
        #: > 0 coalesces contributions into MSG_SUBMIT_TUPLES_BATCH frames
        self.batch_size = batch_size
        self.batch_flush_interval = batch_flush_interval
        #: block encryption runs on this pool's workers (overlapped with
        #: socket I/O); None seals blocks inline on the event loop
        self.crypto_pool = crypto_pool
        #: shard workers set this False: their device subset must not close
        #: a no-SIZE collection other shards are still contributing to
        self.close_no_size_queries = close_no_size_queries
        #: labels this runner's samples in the per-shard metric families
        self.shard_label = shard_label
        #: > 0 polls MSG_GET_HEALTH on this cadence and, while the SSI
        #: reports a degraded/critical verdict, stretches every worker's
        #: poll interval by ``health_backoff`` — the fleet routes load
        #: away from a struggling node instead of piling on.  0 (the
        #: default) skips the probe entirely.
        self.health_check_interval = health_check_interval
        self.health_backoff = max(1.0, health_backoff)
        self._degraded = False
        self._c_contributions = _CONTRIBUTIONS.labels(shard=shard_label)
        self._c_tuples = _TUPLES_SUBMITTED.labels(shard=shard_label)
        self._c_partitions = _PARTITIONS.labels(shard=shard_label)
        self._c_protocol_errors = _PROTOCOL_ERRORS.labels(shard=shard_label)
        self.stats = FleetStats()
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep
        self._stop = asyncio.Event()
        self._semaphore: asyncio.Semaphore | None = None
        self._until: int | None = None
        self._batcher: TupleBatcher | None = None
        # shared across workers
        self._known: dict[str, tuple[QueryEnvelope, QueryMeta]] = {}
        self._contributed: dict[str, set[str]] = {}
        self._done: set[str] = set()
        self._closed: set[str] = set()

    # ------------------------------------------------------------------ #
    def stop(self) -> None:
        self._stop.set()

    async def run(self, until_queries_done: int | None = None) -> FleetStats:
        """Run every TDS worker until :meth:`stop` (or until
        *until_queries_done* queries have completed)."""
        self._semaphore = asyncio.Semaphore(self.concurrency)
        self._until = until_queries_done
        batch_client: TDSClient | None = None
        flusher: asyncio.Task[None] | None = None
        if self.batch_size > 0:
            # The batcher gets its own client (own connection and
            # idempotency identity) so batch frames never interleave
            # with a worker's request stream mid-retry.
            batch_client = TDSClient(
                self.transport_factory(), self.policy, sleep=self._sleep
            )
            self._batcher = TupleBatcher(
                batch_client,
                max_tuples=self.batch_size,
                max_delay=self.batch_flush_interval,
                sleep=self._sleep,
            )
            flusher = asyncio.create_task(self._batcher.run(self._stop))
        workers = [
            asyncio.create_task(self._serve_tds(tds)) for tds in self.tds_list
        ]
        closer = asyncio.create_task(self._close_collections())
        prober: asyncio.Task[None] | None = None
        if self.health_check_interval > 0:
            prober = asyncio.create_task(self._health_loop())
        try:
            await self._stop.wait()
        finally:
            self._stop.set()
            tasks = [closer, *workers]
            if flusher is not None:
                tasks.append(flusher)
            if prober is not None:
                tasks.append(prober)
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            if batch_client is not None:
                await batch_client.close()
        return self.stats

    # ------------------------------------------------------------------ #
    # per-device loop
    # ------------------------------------------------------------------ #
    async def _serve_tds(self, tds: TrustedDataServer) -> None:
        client = TDSClient(
            self.transport_factory(),
            self.policy,
            rng=random.Random(self._rng.getrandbits(64)),
            sleep=self._sleep,
        )
        statements: dict[str, SelectStatement] = {}
        contributed: set[str] = set()
        try:
            while not self._stop.is_set():
                try:
                    await self._poll_once(tds, client, statements, contributed)
                except (TransportError, asyncio.TimeoutError):
                    pass  # server briefly unreachable: back off and retry
                except ProtocolError as exc:
                    # e.g. a typed server error outside the handled set;
                    # log and keep polling — one bad exchange must not
                    # silently retire the worker for the whole run.  The
                    # structured fields (tds_id, cumulative retry count,
                    # shard) make a stalled shard diagnosable from one
                    # line; str(exc) is a typed wire-error message, never
                    # payload bytes.
                    self._c_protocol_errors.inc()
                    obs_logs.log_event(
                        logger,
                        "fleet_protocol_error",
                        level=logging.WARNING,
                        tds_id=tds.tds_id,
                        shard=self.shard_label,
                        retries=client.retries,
                        error=str(exc),
                    )
                interval = self.poll_interval
                if self._degraded:
                    # Back off while the SSI self-reports degraded: the
                    # probe loop clears the flag when the verdict heals.
                    interval *= self.health_backoff
                await self._sleep(interval)
        finally:
            await client.close()

    async def _health_loop(self) -> None:
        """Poll MSG_GET_HEALTH; flag workers off a degraded node."""
        client = TDSClient(
            self.transport_factory(), self.policy, sleep=self._sleep
        )
        try:
            while not self._stop.is_set():
                try:
                    verdict = await client.get_health()
                    degraded = verdict["status"] != "ok"
                    status = str(verdict["status"])
                except (TransportError, ProtocolError, asyncio.TimeoutError):
                    # Unreachable or pre-CAP_HEALTH peer: treat as
                    # degraded-unknown rather than hammering it.
                    degraded = True
                    status = "unreachable"
                if degraded != self._degraded:
                    self._degraded = degraded
                    obs_logs.log_event(
                        logger,
                        "fleet_health_transition",
                        level=logging.WARNING if degraded else logging.INFO,
                        shard=self.shard_label,
                        status=status,
                    )
                await self._sleep(self.health_check_interval)
        finally:
            await client.close()

    async def _poll_once(
        self,
        tds: TrustedDataServer,
        client: TDSClient,
        statements: dict[str, SelectStatement],
        contributed: set[str],
    ) -> None:
        fresh: list[tuple[QueryEnvelope, QueryMeta]] = []
        for envelope, meta in await client.active_queries():
            query_id = envelope.query_id
            if meta.protocol not in SUPPORTED_PROTOCOLS:
                continue
            self._known.setdefault(query_id, (envelope, meta))
            if query_id not in contributed:
                fresh.append((envelope, meta))
        if fresh:
            # One contribution pass serves every new query concurrently:
            # the submissions interleave on the multiplexed connection
            # (bounded by the semaphore), so N overlapping queries cost
            # about one round trip instead of N.  Each query is marked
            # contributed only once its own submission succeeded — if
            # retries are exhausted mid-submit, the next poll must try
            # again, or a no-SIZE query would never close.
            outcomes = await asyncio.gather(
                *(
                    self._contribute(tds, client, envelope, meta)
                    for envelope, meta in fresh
                ),
                return_exceptions=True,
            )
            failure: BaseException | None = None
            for (envelope, _meta), outcome in zip(fresh, outcomes):
                if isinstance(outcome, BaseException):
                    if failure is None:
                        failure = outcome
                else:
                    contributed.add(envelope.query_id)
            if failure is not None:
                raise failure
        pending = [qid for qid in list(self._known) if qid not in self._done]
        if not pending:
            return
        # Likewise one partition poll per round across all live queries.
        polls = await asyncio.gather(
            *(client.fetch_partition(qid, tds.tds_id) for qid in pending),
            return_exceptions=True,
        )
        failure = None
        for query_id, outcome in zip(pending, polls):
            if isinstance(outcome, UnknownQueryError):
                self._done.add(query_id)
                continue
            if isinstance(outcome, BaseException):
                if failure is None:
                    failure = outcome
                continue
            status, unit = outcome
            if status == frames.STATUS_DONE:
                self._done.add(query_id)
                self.stats.queries_completed.add(query_id)
                if self._until is not None and len(
                    self.stats.queries_completed
                ) >= self._until:
                    self.stop()
            elif status == frames.STATUS_WORK and unit is not None:
                await self._process_unit(tds, client, unit, statements)
        if failure is not None:
            raise failure

    async def _contribute(
        self,
        tds: TrustedDataServer,
        client: TDSClient,
        envelope: QueryEnvelope,
        meta: QueryMeta,
    ) -> None:
        assert self._semaphore is not None
        span = obs_spans.RECORDER.start(
            "contribution",
            trace_id=obs_spans.derive_trace_id(envelope.query_id),
            tds_id=tds.tds_id,
            shard=self.shard_label,
        )
        queued = time.perf_counter()
        async with self._semaphore:
            queue_seconds = time.perf_counter() - queued
            crypto_started = time.perf_counter()
            if meta.protocol == "s_agg":
                frame_block = tds.collect_frames(envelope, "s_agg")
            elif meta.protocol == "ed_hist":
                if self.histogram is None:
                    raise ProtocolError(
                        "fleet has no histogram; ed_hist queries need one"
                    )
                frame_block = tds.collect_frames(
                    envelope, "ed_hist", histogram=self.histogram
                )
            else:  # pragma: no cover - filtered by SUPPORTED_PROTOCOLS
                span.finish()
                return
            if self.crypto_pool is not None:
                # The event loop services other devices' sockets while a
                # worker process encrypts this block.
                block = await tds.seal_frames_async(frame_block, self.crypto_pool)
            else:
                block = tds.seal_frames(frame_block)
            crypto_seconds = time.perf_counter() - crypto_started
            wire_started = time.perf_counter()
            if self._batcher is None:
                await client.submit_tuples(
                    envelope.query_id, list(block.tuples())
                )
        if self._batcher is not None:
            # Awaited outside the semaphore: a waiter parked on a batch
            # ack must not pin a concurrency slot for up to max_delay.
            await self._batcher.submit_block(envelope.query_id, block)
        span.annotate(
            count=len(block),
            queue_seconds=round(queue_seconds, 6),
            crypto_seconds=round(crypto_seconds, 6),
            wire_seconds=round(time.perf_counter() - wire_started, 6),
        )
        span.finish()
        self.stats.contributions += 1
        self.stats.tuples_submitted += len(block)
        self.stats.participants.add(tds.tds_id)
        self._c_contributions.inc()
        self._c_tuples.inc(len(block))
        self._contributed.setdefault(envelope.query_id, set()).add(tds.tds_id)

    async def _process_unit(
        self,
        tds: TrustedDataServer,
        client: TDSClient,
        unit: WorkUnit,
        statements: dict[str, SelectStatement],
    ) -> None:
        assert self._semaphore is not None
        partition = Partition(unit.partition_id, unit.items)
        if self.fault_plan is not None and self.fault_plan.injector(
            tds.tds_id, partition
        ):
            await self._inject_fault(client)
            return
        envelope, _meta = self._known[unit.query_id]
        statement = statements.get(unit.query_id)
        if statement is None:
            statement = tds.open_query(envelope)
            statements[unit.query_id] = statement
        span = obs_spans.RECORDER.start(
            "partition",
            trace_id=obs_spans.derive_trace_id(unit.query_id),
            tds_id=tds.tds_id,
            shard=self.shard_label,
            partition_id=unit.partition_id,
            kind=unit.kind,
        )
        queued = time.perf_counter()
        async with self._semaphore:
            queue_seconds = time.perf_counter() - queued
            crypto_started = time.perf_counter()
            if unit.kind == frames.WORK_FOLD:
                partials = [tds.aggregate_partition(statement, partition)]
                rows = None
            elif unit.kind == frames.WORK_FOLD_PER_GROUP:
                partials = tds.aggregate_partition_per_group(statement, partition)
                rows = None
            elif unit.kind == frames.WORK_FINALIZE:
                partials = None
                rows = tds.finalize_partition(statement, partition)
            else:  # pragma: no cover - validated at decode time
                span.finish()
                raise ProtocolError(f"unknown work kind {unit.kind}")
            crypto_seconds = time.perf_counter() - crypto_started
            wire_started = time.perf_counter()
            await client.submit_partition_result(
                unit.query_id,
                unit.partition_id,
                tds.tds_id,
                partials=partials,
                rows=rows,
            )
        span.annotate(
            count=len(partition.items),
            queue_seconds=round(queue_seconds, 6),
            crypto_seconds=round(crypto_seconds, 6),
            wire_seconds=round(time.perf_counter() - wire_started, 6),
        )
        span.finish()
        self.stats.partitions_processed += 1
        self.stats.participants.add(tds.tds_id)
        self._c_partitions.inc()

    async def _inject_fault(self, client: TDSClient) -> None:
        """The §3.2 failure, on a real wire: go silent mid-partition."""
        self.stats.injected_faults += 1
        plan = self.fault_plan
        assert plan is not None
        if plan.mode == "stall":
            await self._sleep(plan.stall_seconds)
        transport = client.transport
        if isinstance(transport, TCPTransport):
            await transport.drop()

    # ------------------------------------------------------------------ #
    # collection closing (queries without a SIZE clause)
    # ------------------------------------------------------------------ #
    async def _close_collections(self) -> None:
        """The drivers stop collection after their collector list; the
        fleet analogue closes a no-SIZE query once every device has
        contributed (the SSI closes SIZE-clause queries itself)."""
        if not self.close_no_size_queries:
            return
        client = TDSClient(
            self.transport_factory(), self.policy, sleep=self._sleep
        )
        all_ids = {tds.tds_id for tds in self.tds_list}
        try:
            while not self._stop.is_set():
                for query_id, (envelope, _meta) in list(self._known.items()):
                    if query_id in self._closed or query_id in self._done:
                        continue
                    if envelope.size_tuples is not None:
                        continue
                    if envelope.size_seconds is not None:
                        continue
                    if self._contributed.get(query_id) == all_ids:
                        try:
                            await client.close_collection(query_id)
                            self._closed.add(query_id)
                        except (TransportError, asyncio.TimeoutError):
                            pass
                await self._sleep(self.poll_interval)
        finally:
            await client.close()


# ---------------------------------------------------------------------- #
# sharded multiprocess fleet
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShardSpec:
    """Picklable description of one shard worker process.

    ``builder`` is a ``"module:function"`` string; the resolved function
    is called with ``*builder_args`` in the worker and must return
    ``(tds_list, histogram_or_None)`` for the *full* population — every
    worker builds the same deployment (same seed, same keys) and serves
    the slice ``tds_list[shard_index::shard_count]``.  Strings rather
    than callables because spawn workers re-import rather than fork."""

    host: str
    port: int
    shard_index: int
    shard_count: int
    builder: str
    builder_args: tuple
    seed: int
    batch_size: int = 0
    batch_flush_interval: float = 0.02
    #: > 0 gives the shard a CryptoPool with that many worker processes
    crypto_workers: int = 0
    window: int = 32
    concurrency: int = 8
    poll_interval: float = 0.02
    until_queries_done: int | None = None
    #: when set, the worker writes its span log to
    #: ``{span_export}.shard{index}.jsonl`` on exit (spans otherwise die
    #: with the process)
    span_export: str | None = None


def resolve_builder(spec: str) -> Callable[..., tuple]:
    """Resolve a ``"module:function"`` builder string."""
    module_name, sep, func_name = spec.partition(":")
    if not sep or not module_name or not func_name:
        raise ProtocolError(
            f"builder must be a 'module:function' string, got {spec!r}"
        )
    try:
        module = importlib.import_module(module_name)
        builder = getattr(module, func_name)
    except (ImportError, AttributeError) as exc:
        raise ProtocolError(f"cannot resolve builder {spec!r}: {exc}") from exc
    if not callable(builder):
        raise ProtocolError(f"builder {spec!r} is not callable")
    return builder


def run_shard(spec: ShardSpec) -> dict[str, object]:
    """Entry point of one shard worker process (module-level so spawn
    can pickle it).  Returns the shard's stats as primitives."""
    builder = resolve_builder(spec.builder)
    tds_list, histogram = builder(*spec.builder_args)
    shard = list(tds_list)[spec.shard_index :: spec.shard_count]
    if not shard:
        return _stats_to_dict(FleetStats())
    obs_spans.set_process_label(f"fleet-{spec.shard_index}")
    pool = CryptoPool(spec.crypto_workers) if spec.crypto_workers > 0 else None

    async def main() -> FleetStats:
        runner = FleetRunner(
            shard,
            lambda: TCPTransport(spec.host, spec.port, window=spec.window),
            histogram=histogram,
            concurrency=spec.concurrency,
            poll_interval=spec.poll_interval,
            batch_size=spec.batch_size,
            batch_flush_interval=spec.batch_flush_interval,
            crypto_pool=pool,
            # One shard seeing "all my devices contributed" says nothing
            # about the other shards; only the SSI (SIZE clause) may
            # close a sharded collection.
            close_no_size_queries=False,
            shard_label=f"shard{spec.shard_index}",
            rng=random.Random(spec.seed),
        )
        return await runner.run(spec.until_queries_done)

    try:
        stats = _stats_to_dict(asyncio.run(main()))
    finally:
        if pool is not None:
            pool.close()
    if spec.span_export is not None:
        path = f"{spec.span_export}.shard{spec.shard_index}.jsonl"
        with open(path, "w", encoding="utf-8") as fp:
            obs_spans.RECORDER.export_jsonl(fp)
    return stats


def _stats_to_dict(stats: FleetStats) -> dict[str, object]:
    return {
        "contributions": stats.contributions,
        "tuples_submitted": stats.tuples_submitted,
        "partitions_processed": stats.partitions_processed,
        "injected_faults": stats.injected_faults,
        "queries_completed": sorted(stats.queries_completed),
        "participants": sorted(stats.participants),
    }


class ShardedFleetRunner:
    """Partition the TDS population across spawn worker processes.

    Each worker rebuilds the deployment from the shared seed (so keys
    and credentials agree), takes the strided slice of the population
    for its shard index, and runs a :class:`FleetRunner` against the
    same SSI endpoint with its own deterministic per-shard rng seed.

    ``shards=None`` sizes the pool to ``os.cpu_count()``; an explicit
    count is honored as given (useful for tests and for oversubscribing
    I/O-bound runs on small machines).  Sharded runs rely on the SSI to
    close collections — give queries a SIZE clause."""

    def __init__(
        self,
        host: str,
        port: int,
        builder: str,
        builder_args: tuple = (),
        *,
        shards: int | None = None,
        seed: int = 0,
        batch_size: int = 0,
        batch_flush_interval: float = 0.02,
        crypto_workers: int = 0,
        window: int = 32,
        concurrency: int = 8,
        poll_interval: float = 0.02,
        span_export: str | None = None,
    ) -> None:
        if shards is None:
            shards = os.cpu_count() or 1
        if shards < 1:
            raise ProtocolError("shard count must be >= 1")
        resolve_builder(builder)  # fail fast, before any process spawns
        self.host = host
        self.port = port
        self.builder = builder
        self.builder_args = tuple(builder_args)
        self.shards = shards
        self.seed = seed
        self.batch_size = batch_size
        self.batch_flush_interval = batch_flush_interval
        self.crypto_workers = crypto_workers
        self.window = window
        self.concurrency = concurrency
        self.poll_interval = poll_interval
        self.span_export = span_export

    def specs(self, until_queries_done: int | None = None) -> list[ShardSpec]:
        rng = random.Random(self.seed)
        return [
            ShardSpec(
                host=self.host,
                port=self.port,
                shard_index=index,
                shard_count=self.shards,
                builder=self.builder,
                builder_args=self.builder_args,
                seed=rng.getrandbits(64),
                batch_size=self.batch_size,
                batch_flush_interval=self.batch_flush_interval,
                crypto_workers=self.crypto_workers,
                window=self.window,
                concurrency=self.concurrency,
                poll_interval=self.poll_interval,
                until_queries_done=until_queries_done,
                span_export=self.span_export,
            )
            for index in range(self.shards)
        ]

    async def run(self, until_queries_done: int | None = None) -> FleetStats:
        """Run every shard worker to completion and merge their stats.

        Workers stop on their own once *until_queries_done* queries have
        reported ``STATUS_DONE`` (every shard observes the same terminal
        status from the SSI), so no cross-process signalling is needed."""
        from concurrent.futures import ProcessPoolExecutor

        loop = asyncio.get_running_loop()
        ctx = multiprocessing.get_context("spawn")
        specs = self.specs(until_queries_done)
        with ProcessPoolExecutor(
            max_workers=self.shards, mp_context=ctx
        ) as pool:
            results = await asyncio.gather(
                *(loop.run_in_executor(pool, run_shard, spec) for spec in specs)
            )
        return self.merge(results)

    @staticmethod
    def merge(shard_stats: Sequence[dict[str, object]]) -> FleetStats:
        merged = FleetStats()
        for entry in shard_stats:
            merged.contributions += int(entry["contributions"])  # type: ignore[call-overload]
            merged.tuples_submitted += int(entry["tuples_submitted"])  # type: ignore[call-overload]
            merged.partitions_processed += int(entry["partitions_processed"])  # type: ignore[call-overload]
            merged.injected_faults += int(entry["injected_faults"])  # type: ignore[call-overload]
            merged.queries_completed.update(entry["queries_completed"])  # type: ignore[arg-type]
            merged.participants.update(entry["participants"])  # type: ignore[arg-type]
        return merged
