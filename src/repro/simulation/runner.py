"""One-call simulated protocol execution.

:func:`run_simulated` glues a :class:`~repro.protocols.deployment.Deployment`
to a protocol driver and a connectivity schedule: it runs the protocol for
real (real crypto, real partials), then replays the execution trace on the
simulated timeline.  The answer rows come from the actual run; the timing
comes from the replay.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.protocols.base import ProtocolDriver, ProtocolStats
from repro.protocols.deployment import Deployment
from repro.simulation.availability import ConnectivitySchedule, always_on
from repro.simulation.network import NetworkModel
from repro.simulation.replay import SimulationReport, TraceScheduler
from repro.sql.schema import Row


@dataclass
class SimulatedRun:
    """Everything one simulated query yields."""

    rows: list[Row]
    stats: ProtocolStats
    report: SimulationReport


def run_simulated(
    deployment: Deployment,
    driver_cls: type[ProtocolDriver],
    sql: str,
    schedule: ConnectivitySchedule | None = None,
    worker_fraction: float = 1.0,
    network: NetworkModel | None = None,
    timeout: float = 60.0,
    seed: int = 0,
    roles: tuple[str, ...] = ("public",),
    **driver_kwargs,
) -> SimulatedRun:
    """Execute *sql* with *driver_cls* and replay it on the timeline."""
    querier = deployment.make_querier(roles=roles)
    envelope = querier.make_envelope(sql)
    deployment.ssi.post_query(envelope)
    driver = driver_cls(
        deployment.ssi,
        collectors=deployment.tds_list,
        workers=deployment.connected_tds(worker_fraction),
        rng=random.Random(seed),
        **driver_kwargs,
    )
    driver.execute(envelope)
    rows = querier.decrypt_result(deployment.ssi.fetch_result(envelope.query_id))

    if schedule is None:
        schedule = always_on([tds.tds_id for tds in deployment.tds_list])
    device_for = {tds.tds_id: tds.device for tds in deployment.tds_list}
    scheduler = TraceScheduler(
        schedule, network=network, device_for=device_for, timeout=timeout
    )
    report = scheduler.replay(driver.trace)
    return SimulatedRun(rows=rows, stats=driver.stats, report=report)
