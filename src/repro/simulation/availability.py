"""Connectivity schedules: when is each TDS online?

The paper distinguishes always-connected smart meters from seldom-
connected personal tokens ("individuals are likely to connect their TDS
seldom, for short periods of time", §6.4).  A
:class:`ConnectivitySchedule` assigns each TDS a list of [connect,
disconnect) intervals over the simulation horizon; the trace scheduler
only lets a TDS work inside its intervals and interrupts tasks that
overrun them (triggering the SSI's timeout/reassignment machinery).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.exceptions import ConfigurationError

Interval = tuple[float, float]


@dataclass
class ConnectivitySchedule:
    """Per-TDS connection intervals (sorted, non-overlapping)."""

    intervals: dict[str, list[Interval]]
    horizon: float

    def is_connected(self, tds_id: str, at: float) -> bool:
        return any(start <= at < end for start, end in self.intervals.get(tds_id, ()))

    def first_connection_after(self, tds_id: str, at: float) -> Interval | None:
        """The interval in which the TDS is (or next becomes) connected at
        or after *at* — None if it never reconnects within the horizon."""
        for start, end in self.intervals.get(tds_id, ()):
            if end > at:
                return (max(start, at), end)
        return None

    def online_fraction(self, tds_id: str) -> float:
        total = sum(end - start for start, end in self.intervals.get(tds_id, ()))
        return total / self.horizon if self.horizon else 0.0


def always_on(tds_ids: list[str], horizon: float = 1e9) -> ConnectivitySchedule:
    """Smart-meter style: connected for the whole horizon."""
    return ConnectivitySchedule(
        {tds_id: [(0.0, horizon)] for tds_id in tds_ids}, horizon
    )


def duty_cycle(
    tds_ids: list[str],
    rng: random.Random,
    horizon: float = 3600.0,
    duty: float = 0.3,
    session_length: float = 120.0,
) -> ConnectivitySchedule:
    """Token-style intermittent connectivity: sessions of roughly
    *session_length* seconds, online *duty* fraction of the time, with
    per-TDS random phase so the population connects in a staggered way."""
    if not 0 < duty <= 1:
        raise ConfigurationError("duty must be in (0, 1]")
    if session_length <= 0 or horizon <= 0:
        raise ConfigurationError("session_length and horizon must be positive")
    period = session_length / duty
    schedule: dict[str, list[Interval]] = {}
    for tds_id in tds_ids:
        phase = rng.uniform(0, period)
        intervals = []
        start = phase
        while start < horizon:
            jitter = rng.uniform(0.5, 1.5)
            end = min(start + session_length * jitter, horizon)
            intervals.append((start, end))
            start += period * jitter
        if not intervals:  # phase landed beyond the horizon: one session
            intervals.append((0.0, min(session_length, horizon)))
        schedule[tds_id] = intervals
    return ConnectivitySchedule(schedule, horizon)
