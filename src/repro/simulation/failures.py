"""Failure-injection helpers for protocol drivers.

Drivers accept a ``failure_injector(tds_id, partition) -> bool`` callable
(returning True = the worker "goes offline mid-partition", §3.2).  These
factories build the common shapes:

* :func:`random_failures` — every (worker, partition) fails independently
  with probability p;
* :func:`flaky_workers` — a fixed subset of TDSs always fails;
* :func:`failure_budget` — the first k attempts fail, then everything
  succeeds (deterministic tests);
* :func:`combined` — OR-composition of injectors.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable

from repro.core.messages import Partition
from repro.exceptions import ConfigurationError

FailureInjector = Callable[[str, Partition], bool]


def random_failures(probability: float, rng: random.Random) -> FailureInjector:
    """Independent per-attempt failures with the given probability."""
    if not 0.0 <= probability < 1.0:
        raise ConfigurationError("probability must be in [0, 1)")

    def inject(tds_id: str, partition: Partition) -> bool:
        return rng.random() < probability

    return inject


def flaky_workers(tds_ids: Iterable[str]) -> FailureInjector:
    """The listed workers always drop their partitions (they will be
    reassigned to others — if no healthy worker exists the driver aborts)."""
    flaky = frozenset(tds_ids)

    def inject(tds_id: str, partition: Partition) -> bool:
        return tds_id in flaky

    return inject


def failure_budget(count: int) -> FailureInjector:
    """Fail exactly the first *count* attempts, then behave."""
    if count < 0:
        raise ConfigurationError("count must be >= 0")
    remaining = {"budget": count}

    def inject(tds_id: str, partition: Partition) -> bool:
        if remaining["budget"] > 0:
            remaining["budget"] -= 1
            return True
        return False

    return inject


def combined(*injectors: FailureInjector) -> FailureInjector:
    """Fail when any component injector fails."""

    def inject(tds_id: str, partition: Partition) -> bool:
        return any(injector(tds_id, partition) for injector in injectors)

    return inject
