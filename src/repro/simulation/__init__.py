"""Discrete-time simulation: connectivity, network, timed trace replay."""

from repro.simulation.availability import (
    ConnectivitySchedule,
    always_on,
    duty_cycle,
)
from repro.simulation.failures import (
    combined,
    failure_budget,
    flaky_workers,
    random_failures,
)
from repro.simulation.network import NetworkModel
from repro.simulation.replay import SimulationReport, TraceScheduler
from repro.simulation.runner import SimulatedRun, run_simulated

__all__ = [
    "ConnectivitySchedule",
    "NetworkModel",
    "SimulatedRun",
    "SimulationReport",
    "TraceScheduler",
    "always_on",
    "combined",
    "duty_cycle",
    "failure_budget",
    "flaky_workers",
    "random_failures",
    "run_simulated",
]
