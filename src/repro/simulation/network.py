"""Network model: per-transfer latency on top of the device link speed.

The device's measured link throughput (7.9 Mbps on the paper's board)
lives in :class:`~repro.tds.device.DeviceProfile`; this model adds the
round-trip latency of talking to the SSI, which dominates for tiny
transfers and explains why the paper manages partitions "in streaming".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.tds.device import DeviceProfile


@dataclass(frozen=True)
class NetworkModel:
    """Latency + device-limited throughput."""

    round_trip_latency: float = 0.02  # seconds, a WAN-ish RTT to the SSI

    def __post_init__(self) -> None:
        if self.round_trip_latency < 0:
            raise ConfigurationError("latency cannot be negative")

    def transfer_time(self, num_bytes: int, device: DeviceProfile) -> float:
        """One logical transfer (download or upload) of *num_bytes*."""
        if num_bytes <= 0:
            return 0.0
        return self.round_trip_latency + device.transfer_time(num_bytes)

    def task_time(
        self, bytes_down: int, bytes_up: int, device: DeviceProfile
    ) -> float:
        """Full processing of one work item: download, decrypt+CPU the
        input, encrypt the output, upload."""
        return (
            self.transfer_time(bytes_down, device)
            + device.crypto_time(bytes_down)
            + device.cpu_time(bytes_down)
            + device.crypto_time(bytes_up)
            + self.transfer_time(bytes_up, device)
        )
