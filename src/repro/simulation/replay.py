"""Timed replay of an execution trace against a connectivity schedule.

The protocol drivers decide *what* work happens (see
:mod:`repro.core.trace`); this module decides *when*:

* collection events are independent arrivals — each collector contributes
  at its first connection after the query is posted;
* aggregation/filtering rounds are barriers — round r starts when round
  r−1 (or collection) finished; inside a round each worker processes its
  assigned items serially within its connectivity windows;
* a task that overruns its window is interrupted; the SSI notices after
  ``timeout`` seconds and the task restarts in the worker's next window
  (the §3.2 reassignment discipline, here charged to the same logical
  worker for scheduling simplicity).  Each interrupted attempt still kept
  the device busy until the disconnection, so that partial-window work is
  charged to busy time (and reported separately as wasted time).

The output :class:`SimulationReport` carries the timed counterparts of
the cost-model metrics: phase durations (TQ), per-TDS busy time (Tlocal)
and participant counts (PTDS).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.trace import ExecutionTrace, TraceEvent
from repro.exceptions import QueryAbortedError
from repro.simulation.availability import ConnectivitySchedule
from repro.simulation.network import NetworkModel
from repro.tds.device import SECURE_TOKEN, DeviceProfile


@dataclass
class SimulationReport:
    """Timing produced by one trace replay (all values in seconds)."""

    collection_duration: float = 0.0
    aggregation_duration: float = 0.0
    filtering_duration: float = 0.0
    #: total seconds each TDS spent working, including partial attempts
    #: that a disconnection threw away
    busy_time: dict[str, float] = field(default_factory=dict)
    #: the thrown-away part alone: seconds of work lost to interruptions
    wasted_time: dict[str, float] = field(default_factory=dict)
    interruptions: int = 0

    @property
    def total_duration(self) -> float:
        return (
            self.collection_duration
            + self.aggregation_duration
            + self.filtering_duration
        )

    @property
    def t_q(self) -> float:
        """The paper's TQ: the aggregation phase only (§6.1)."""
        return self.aggregation_duration

    def t_local_mean(self) -> float:
        if not self.busy_time:
            return 0.0
        return sum(self.busy_time.values()) / len(self.busy_time)

    def t_local_max(self) -> float:
        return max(self.busy_time.values(), default=0.0)

    def participants(self) -> int:
        return len(self.busy_time)


class TraceScheduler:
    """Replays traces; see the module docstring for the model."""

    def __init__(
        self,
        schedule: ConnectivitySchedule,
        network: NetworkModel | None = None,
        device_for: dict[str, DeviceProfile] | None = None,
        default_device: DeviceProfile = SECURE_TOKEN,
        timeout: float = 60.0,
        max_retries: int = 25,
    ) -> None:
        self.schedule = schedule
        self.network = network if network is not None else NetworkModel()
        self.device_for = device_for or {}
        self.default_device = default_device
        self.timeout = timeout
        self.max_retries = max_retries

    # ------------------------------------------------------------------ #
    def replay(self, trace: ExecutionTrace, query_posted_at: float = 0.0) -> SimulationReport:
        report = SimulationReport()
        clock = query_posted_at

        collection_events = trace.events_in("collection")
        if collection_events:
            clock = self._replay_collection(collection_events, clock, report)
            report.collection_duration = clock - query_posted_at

        aggregation_start = clock
        for round_index in trace.rounds("aggregation"):
            clock = self._replay_round(
                trace.events_in("aggregation", round_index), clock, report
            )
        report.aggregation_duration = clock - aggregation_start

        filtering_start = clock
        for round_index in trace.rounds("filtering"):
            clock = self._replay_round(
                trace.events_in("filtering", round_index), clock, report
            )
        report.filtering_duration = clock - filtering_start
        return report

    # ------------------------------------------------------------------ #
    def _device(self, tds_id: str) -> DeviceProfile:
        return self.device_for.get(tds_id, self.default_device)

    def _charge(self, report: SimulationReport, tds_id: str, seconds: float) -> None:
        report.busy_time[tds_id] = report.busy_time.get(tds_id, 0.0) + seconds

    def _replay_collection(
        self, events: list[TraceEvent], start: float, report: SimulationReport
    ) -> float:
        """Each collector uploads at its first connection ≥ start; the
        phase ends at the last contribution."""
        phase_end = start
        for event in events:
            device = self._device(event.tds_id)
            duration = self.network.task_time(
                event.bytes_down, event.bytes_up, device
            )
            finished = self._run_in_windows(
                event.tds_id, start, duration, report
            )
            self._charge(report, event.tds_id, duration)
            phase_end = max(phase_end, finished)
        return phase_end

    def _replay_round(
        self, events: list[TraceEvent], round_start: float, report: SimulationReport
    ) -> float:
        """Barrier round: every worker processes its items serially from
        *round_start*; the round ends at the slowest worker."""
        worker_clock: dict[str, float] = {}
        round_end = round_start
        for event in events:
            device = self._device(event.tds_id)
            duration = self.network.task_time(
                event.bytes_down, event.bytes_up, device
            )
            begin = worker_clock.get(event.tds_id, round_start)
            finished = self._run_in_windows(event.tds_id, begin, duration, report)
            worker_clock[event.tds_id] = finished
            self._charge(report, event.tds_id, duration)
            round_end = max(round_end, finished)
        return round_end

    def _run_in_windows(
        self, tds_id: str, earliest: float, duration: float, report: SimulationReport
    ) -> float:
        """Find when a task of *duration* completes, restarting it in the
        next window whenever a disconnection interrupts it."""
        at = earliest
        for __ in range(self.max_retries):
            window = self.schedule.first_connection_after(tds_id, at)
            if window is None:
                raise QueryAbortedError(
                    f"TDS {tds_id!r} never reconnects within the simulation "
                    f"horizon; partition cannot complete"
                )
            begin, end = window
            if begin + duration <= end:
                return begin + duration
            # Interrupted: SSI notices after `timeout` and reassigns; the
            # work restarts in the next window.  The partial attempt kept
            # the device busy from `begin` until the disconnection — that
            # work is real (and lost), so it must show up in Tlocal.
            wasted = end - begin
            self._charge(report, tds_id, wasted)
            report.wasted_time[tds_id] = (
                report.wasted_time.get(tds_id, 0.0) + wasted
            )
            report.interruptions += 1
            at = end + self.timeout
        raise QueryAbortedError(
            f"task on TDS {tds_id!r} exceeded {self.max_retries} reassignments"
        )
