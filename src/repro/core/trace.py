"""Execution traces: the bridge between protocol logic and timed simulation.

Protocol drivers record *what* happened (who moved how many bytes in which
phase/round); the simulator (:mod:`repro.simulation.replay`) replays the
trace against a connectivity schedule and a device/network model to
compute *when* — collection duration, aggregation makespan, per-TDS busy
time.  Keeping logic and timing separate means the protocol code is the
single source of truth and the simulator cannot diverge from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceEvent:
    """One unit of TDS work.

    ``round_index`` orders barrier-synchronized aggregation rounds; all
    collection events share round −1 (they are independent arrivals), and
    filtering events share the last round + 1.
    """

    phase: str  # "collection" | "aggregation" | "filtering"
    round_index: int
    tds_id: str
    bytes_down: int
    bytes_up: int

    def total_bytes(self) -> int:
        return self.bytes_down + self.bytes_up


@dataclass
class ExecutionTrace:
    """Ordered record of every TDS work item in one query execution."""

    events: list[TraceEvent] = field(default_factory=list)

    def record(
        self,
        phase: str,
        round_index: int,
        tds_id: str,
        bytes_down: int,
        bytes_up: int,
    ) -> None:
        self.events.append(
            TraceEvent(phase, round_index, tds_id, bytes_down, bytes_up)
        )

    def phases(self) -> list[str]:
        seen: list[str] = []
        for event in self.events:
            if event.phase not in seen:
                seen.append(event.phase)
        return seen

    def rounds(self, phase: str) -> list[int]:
        return sorted({e.round_index for e in self.events if e.phase == phase})

    def events_in(self, phase: str, round_index: int | None = None) -> list[TraceEvent]:
        return [
            e
            for e in self.events
            if e.phase == phase
            and (round_index is None or e.round_index == round_index)
        ]

    def participants(self) -> set[str]:
        return {e.tds_id for e in self.events}

    def total_bytes(self) -> int:
        return sum(e.total_bytes() for e in self.events)
