"""Core shared infrastructure: codec, message envelopes, wire frames, traces."""

from repro.core.codec import CodecError, decode, encode
from repro.core.messages import (
    Credential,
    EncryptedPartial,
    EncryptedTuple,
    Partition,
    QueryEnvelope,
    QueryResult,
    TupleContent,
    fresh_query_id,
)
from repro.core.trace import ExecutionTrace, TraceEvent
from repro.core.wire import (
    SIZE_QUANTUM,
    TUPLE_FRAME_QUANTUM,
    decode_frame,
    encode_partial_frame,
    encode_tuple_frame,
)

__all__ = [
    "CodecError",
    "Credential",
    "EncryptedPartial",
    "EncryptedTuple",
    "ExecutionTrace",
    "Partition",
    "QueryEnvelope",
    "QueryResult",
    "SIZE_QUANTUM",
    "TUPLE_FRAME_QUANTUM",
    "TraceEvent",
    "TupleContent",
    "decode",
    "decode_frame",
    "encode",
    "encode_partial_frame",
    "encode_tuple_frame",
    "fresh_query_id",
]
