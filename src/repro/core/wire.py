"""Wire format of encrypted payloads: framing + length padding.

Inside every nDet_Enc payload lives one of two frames:

* a **tuple frame** — one :class:`~repro.core.messages.TupleContent`
  (collection phase);
* a **partial frame** — the portable form of a
  :class:`~repro.sql.partial.PartialAggregation` (aggregation phase).

Payloads are padded to a size quantum before encryption.  nDet_Enc hides
content but not length; without padding the SSI could distinguish dummy
tuples from data tuples (or small partials from large ones) by size alone,
re-opening the inference channel the dummies exist to close.
"""

from __future__ import annotations

from typing import Any

from repro.core.codec import CodecError, decode, encode
from repro.core.messages import TupleContent
from repro.exceptions import ProtocolError

#: payload sizes are rounded up to a multiple of this many bytes
SIZE_QUANTUM = 64

#: ceiling on the *declared* inner length of a padded frame.  The length
#: field is attacker-controlled once frames travel over a real transport;
#: anything beyond this is rejected before interpretation rather than
#: trusted into allocations.
MAX_INNER_LENGTH = 16 * 1024 * 1024

#: tuple frames use a larger quantum so a dummy tuple (empty row) and a
#: typical data tuple land in the *same* size class — otherwise the SSI
#: could tell them apart by length and dummies would be pointless
TUPLE_FRAME_QUANTUM = 256

_FRAME_TUPLE = "t"
_FRAME_PARTIAL = "p"


def _pad(data: bytes, quantum: int = SIZE_QUANTUM) -> bytes:
    """Length-prefix then zero-pad *data* to a quantum multiple."""
    framed = len(data).to_bytes(4, "big") + data
    remainder = len(framed) % quantum
    if remainder:
        framed += bytes(quantum - remainder)
    return framed


def _unpad(data: bytes) -> bytes:
    if len(data) < 4:
        raise ProtocolError("padded frame too short")
    length = int.from_bytes(data[:4], "big")
    if length > MAX_INNER_LENGTH:
        raise ProtocolError(
            f"padded frame declares {length} bytes, above the "
            f"{MAX_INNER_LENGTH}-byte limit"
        )
    if 4 + length > len(data):
        raise ProtocolError("padded frame length field corrupt")
    if any(data[4 + length :]):
        raise ProtocolError("padded frame has nonzero padding bytes")
    return data[4 : 4 + length]


def encode_tuple_frame(content: TupleContent, quantum: int = TUPLE_FRAME_QUANTUM) -> bytes:
    """Serialize one tuple content, padded to the tuple-frame quantum."""
    return _pad(encode([_FRAME_TUPLE, content.to_portable()]), quantum)


def encode_partial_frame(portable: list[Any], quantum: int = SIZE_QUANTUM) -> bytes:
    """Serialize one partial-aggregation portable structure, padded."""
    return _pad(encode([_FRAME_PARTIAL, portable]), quantum)


def decode_frame(data: bytes) -> tuple[str, Any]:
    """Decode a frame into ``("tuple", TupleContent)`` or
    ``("partial", portable)``.

    Every malformation — truncated or oversized length prefixes, codec
    corruption, invalid UTF-8, structurally wrong bodies, unknown frame
    kinds — surfaces as :class:`ProtocolError`; nothing from the byte
    level (``IndexError``, ``UnicodeDecodeError``, ``TypeError``...) may
    cross this boundary, because frames arrive from the network."""
    try:
        decoded = decode(_unpad(data))
    except ProtocolError:
        raise
    except (CodecError, UnicodeDecodeError, ValueError, TypeError) as exc:
        raise ProtocolError(f"malformed frame: {exc}") from None
    try:
        kind, body = decoded
    except (TypeError, ValueError):
        raise ProtocolError("frame body is not a [kind, body] pair") from None
    if kind == _FRAME_TUPLE:
        try:
            return "tuple", TupleContent.from_portable(body)
        except (KeyError, TypeError, AttributeError):
            raise ProtocolError("malformed tuple frame body") from None
    if kind == _FRAME_PARTIAL:
        return "partial", body
    raise ProtocolError(f"unknown frame kind {kind!r}")
