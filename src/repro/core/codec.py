"""Compact, deterministic binary codec for tuples and aggregate states.

Everything that travels between TDSs and the SSI is encrypted *bytes*; this
codec is the canonical serialization underneath.  It is:

* **self-describing** — a one-byte tag per value, so heterogeneous rows
  round-trip without a schema;
* **deterministic** — the same value always encodes to the same bytes,
  which matters because ``Det_Enc`` equality (and therefore SSI-side
  grouping) is defined on the *encoding* of the grouping value;
* **dependency-free** — no pickle (unsafe across trust boundaries), no
  JSON (not deterministic for floats / dict ordering).

Supported types: ``None``, ``bool``, ``int``, ``float``, ``str``,
``bytes``, ``list``, ``tuple`` (decoded as list), ``dict`` (sorted by
encoded key) and ``frozenset``/``set`` (sorted by encoded element).
"""

from __future__ import annotations

import struct
from typing import Any

from repro.exceptions import ReproError


class CodecError(ReproError):
    """Raised on malformed input or unsupported types."""


_TAG_NONE = 0x00
_TAG_FALSE = 0x01
_TAG_TRUE = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_STR = 0x05
_TAG_BYTES = 0x06
_TAG_LIST = 0x07
_TAG_DICT = 0x08
_TAG_SET = 0x09


def _encode_varlen(payload: bytes) -> bytes:
    return struct.pack(">I", len(payload)) + payload


def _encode_into(value: Any, out: bytearray) -> None:
    if value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif isinstance(value, int):
        payload = value.to_bytes((value.bit_length() + 8) // 8 or 1, "big", signed=True)
        out.append(_TAG_INT)
        out += _encode_varlen(payload)
    elif isinstance(value, float):
        out.append(_TAG_FLOAT)
        out += struct.pack(">d", value)
    elif isinstance(value, str):
        out.append(_TAG_STR)
        out += _encode_varlen(value.encode("utf-8"))
    elif isinstance(value, (bytes, bytearray)):
        out.append(_TAG_BYTES)
        out += _encode_varlen(bytes(value))
    elif isinstance(value, (list, tuple)):
        out.append(_TAG_LIST)
        out += struct.pack(">I", len(value))
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, dict):
        out.append(_TAG_DICT)
        out += struct.pack(">I", len(value))
        entries = sorted((encode(k), v) for k, v in value.items())
        for encoded_key, item in entries:
            out += encoded_key
            _encode_into(item, out)
    elif isinstance(value, (set, frozenset)):
        out.append(_TAG_SET)
        out += struct.pack(">I", len(value))
        for encoded in sorted(encode(item) for item in value):
            out += encoded
    else:
        raise CodecError(f"unsupported type for codec: {type(value).__name__}")


def encode(value: Any) -> bytes:
    """Encode *value* to its canonical byte representation."""
    out = bytearray()
    _encode_into(value, out)
    return bytes(out)


def encode_many(values: list[Any]) -> list[bytes]:
    """Encode a batch of values (companion to the batched cipher APIs).

    Vectorized: all values are encoded into *one* growing buffer with an
    offsets table, then sliced out in a single pass — one large
    allocation instead of a bytearray + bytes copy per value."""
    out = bytearray()
    offsets = [0]
    for value in values:
        _encode_into(value, out)
        offsets.append(len(out))
    view = memoryview(out)
    return [
        bytes(view[offsets[i] : offsets[i + 1]]) for i in range(len(values))
    ]


def encode_packed(values: list[Any]) -> tuple[bytes, list[int]]:
    """Encode a batch into one contiguous buffer, returning the buffer
    and its offsets table (``len(values) + 1`` entries) — the zero-copy
    companion for columnar batch framing."""
    out = bytearray()
    offsets = [0]
    for value in values:
        _encode_into(value, out)
        offsets.append(len(out))
    return bytes(out), offsets


class _Reader:
    """Cursor over an encoded buffer."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise CodecError("truncated codec payload")
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def take_varlen(self) -> bytes:
        (length,) = struct.unpack(">I", self.take(4))
        return self.take(length)


def _decode_from(reader: _Reader) -> Any:
    tag = reader.take(1)[0]
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_FALSE:
        return False
    if tag == _TAG_INT:
        return int.from_bytes(reader.take_varlen(), "big", signed=True)
    if tag == _TAG_FLOAT:
        (value,) = struct.unpack(">d", reader.take(8))
        return value
    if tag == _TAG_STR:
        return reader.take_varlen().decode("utf-8")
    if tag == _TAG_BYTES:
        return reader.take_varlen()
    if tag == _TAG_LIST:
        (count,) = struct.unpack(">I", reader.take(4))
        return [_decode_from(reader) for __ in range(count)]
    if tag == _TAG_DICT:
        (count,) = struct.unpack(">I", reader.take(4))
        result = {}
        for __ in range(count):
            key = _decode_from(reader)
            result[key] = _decode_from(reader)
        return result
    if tag == _TAG_SET:
        (count,) = struct.unpack(">I", reader.take(4))
        return frozenset(_decode_from(reader) for __ in range(count))
    raise CodecError(f"unknown codec tag 0x{tag:02x}")


def decode(data: bytes) -> Any:
    """Decode a value previously produced by :func:`encode`.

    Raises :class:`CodecError` if trailing bytes remain (a sign of
    corruption or framing mistakes)."""
    reader = _Reader(data)
    value = _decode_from(reader)
    if reader.pos != len(data):
        raise CodecError(f"{len(data) - reader.pos} trailing bytes after codec payload")
    return value


def decode_many(blobs: list[bytes]) -> list[Any]:
    """Decode a batch of independently-encoded payloads.

    Vectorized: the blobs are joined into one buffer and decoded with a
    single cursor, checking each value lands exactly on its segment
    boundary — one reader for the whole batch instead of one per blob."""
    reader = _Reader(b"".join(blobs))
    values = []
    boundary = 0
    for blob in blobs:
        boundary += len(blob)
        values.append(_decode_from(reader))
        if reader.pos > boundary:
            raise CodecError("codec payload crossed its segment boundary")
        if reader.pos < boundary:
            raise CodecError(
                f"{boundary - reader.pos} trailing bytes after codec payload"
            )
    return values


def decode_packed(buffer: bytes, offsets: list[int]) -> list[Any]:
    """Decode values packed by :func:`encode_packed` (or sliced by an
    offsets table) without materializing per-value byte strings."""
    reader = _Reader(buffer)
    values = []
    for boundary in offsets[1:]:
        values.append(_decode_from(reader))
        if reader.pos > boundary:
            raise CodecError("codec payload crossed its segment boundary")
        if reader.pos < boundary:
            raise CodecError(
                f"{boundary - reader.pos} trailing bytes after codec payload"
            )
    return values
