"""Message envelopes exchanged between querier, SSI and TDSs.

Everything the SSI stores or forwards is one of these frozen dataclasses.
The invariant maintained throughout: any field the SSI can read is either
ciphertext/opaque bytes, or data the paper explicitly allows in cleartext
(the SIZE clause, §3.2 step 1; credentials are signed but public).

``group_tag`` is the only protocol-visible routing handle:

* ``None``           — S_Agg and the basic protocol (fully nDet-encrypted,
                        SSI partitions blindly);
* ``Det_Enc(AG)``    — noise-based protocols (SSI groups equal tags);
* ``h(bucketId)``    — ED_Hist (SSI groups by bucket).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence


@dataclass(frozen=True, slots=True)
class Credential:
    """A querier credential signed by an authority (§3.1: "its credential C
    signed by an authority")."""

    subject: str
    roles: frozenset[str]
    signature: bytes

    def signing_payload(self) -> bytes:
        roles = ",".join(sorted(self.roles))
        return f"{self.subject}|{roles}".encode("utf-8")


@dataclass(frozen=True, slots=True)
class QueryEnvelope:
    """What the querier posts to a querybox (step 1 of Fig. 2).

    * ``encrypted_query`` — the SQL text under k1 (SSI cannot read it);
    * ``credential``      — cleartext but signed;
    * ``size_tuples`` / ``size_seconds`` — the SIZE clause in cleartext so
      the SSI can evaluate it (§3.1);
    * ``query_id``        — opaque correlation handle.
    """

    query_id: str
    encrypted_query: bytes
    credential: Credential
    size_tuples: int | None = None
    size_seconds: float | None = None


@dataclass(frozen=True, slots=True)
class EncryptedTuple:
    """One collected tuple as stored by the SSI (steps 4/4' of Fig. 2).

    ``payload`` is always nDet_Enc ciphertext.  ``group_tag`` is the
    protocol-dependent routing handle described in the module docstring.
    """

    payload: bytes
    group_tag: bytes | None = None


@dataclass(frozen=True, slots=True)
class EncryptedTupleBlock:
    """A columnar batch of encrypted tuples: one shared payload buffer
    plus an offsets table, instead of one object per tuple.

    This is the storage/wire shape of the batched collection path: the
    fleet packs many contributions into one block, the SSI stores the
    block as-is and only materializes individual
    :class:`EncryptedTuple` objects when the aggregation phase needs
    them.  The SSI's legitimate view is unchanged — payload *sizes* and
    cleartext group tags are still derivable (and observed), the payload
    bytes stay opaque ciphertext.

    ``offsets`` has ``count + 1`` entries; tuple *i*'s payload is
    ``payloads[offsets[i]:offsets[i + 1]]``.  ``tags`` has ``count``
    entries (``None`` for fully nDet-encrypted dataflows).
    """

    payloads: bytes
    offsets: tuple[int, ...]
    tags: tuple[bytes | None, ...]

    def __post_init__(self) -> None:
        if len(self.offsets) != len(self.tags) + 1:
            raise ValueError(
                f"offsets table of {len(self.offsets)} entries does not "
                f"match {len(self.tags)} tags"
            )
        if self.offsets[0] != 0 or self.offsets[-1] != len(self.payloads):
            raise ValueError("offsets table does not span the payload buffer")
        if any(a > b for a, b in zip(self.offsets, self.offsets[1:])):
            raise ValueError("offsets table is not monotonically increasing")

    def __len__(self) -> int:
        return len(self.tags)

    def payload_sizes(self) -> list[int]:
        return [b - a for a, b in zip(self.offsets, self.offsets[1:])]

    def tuples(self) -> Iterator[EncryptedTuple]:
        """Materialize per-tuple objects (the aggregation-phase view)."""
        view = memoryview(self.payloads)
        offsets = self.offsets
        for i, tag in enumerate(self.tags):
            yield EncryptedTuple(bytes(view[offsets[i] : offsets[i + 1]]), tag)

    @classmethod
    def from_tuples(cls, tuples: Sequence[EncryptedTuple]) -> "EncryptedTupleBlock":
        offsets = [0]
        total = 0
        for item in tuples:
            total += len(item.payload)
            offsets.append(total)
        return cls(
            payloads=b"".join(item.payload for item in tuples),
            offsets=tuple(offsets),
            tags=tuple(item.group_tag for item in tuples),
        )

    @classmethod
    def concat(cls, blocks: Sequence["EncryptedTupleBlock"]) -> "EncryptedTupleBlock":
        """Merge blocks into one without re-framing any payload bytes —
        how the batcher coalesces per-contribution blocks into one
        wire frame."""
        if len(blocks) == 1:
            return blocks[0]
        offsets = [0]
        tags: list[bytes | None] = []
        base = 0
        for block in blocks:
            offsets.extend(base + offset for offset in block.offsets[1:])
            tags.extend(block.tags)
            base += len(block.payloads)
        return cls(
            payloads=b"".join(block.payloads for block in blocks),
            offsets=tuple(offsets),
            tags=tuple(tags),
        )


@dataclass(frozen=True, slots=True)
class EncryptedPartial:
    """One encrypted partial aggregation Ω travelling back to the SSI
    during the aggregation phase (step 8 of Fig. 2)."""

    payload: bytes
    group_tag: bytes | None = None


@dataclass(frozen=True, slots=True)
class Partition:
    """A chunk of work the SSI hands to a connected TDS (steps 5/9).

    To the SSI the items are uninterpreted bytes; the ``partition_id``
    exists so a timed-out partition can be reassigned (§3.2 Correctness).
    """

    partition_id: int
    items: tuple[EncryptedTuple | EncryptedPartial, ...]

    def byte_size(self) -> int:
        return sum(len(item.payload) for item in self.items)


@dataclass(slots=True)
class QueryResult:
    """What the querier finally downloads (step 13): result rows under k1."""

    query_id: str
    encrypted_rows: tuple[bytes, ...]


_COUNTER = itertools.count(1)


def fresh_query_id(prefix: str = "q") -> str:
    """Process-unique query identifier."""
    return f"{prefix}{next(_COUNTER)}"


@dataclass(frozen=True, slots=True)
class TupleContent:
    """The *plaintext* structure inside an :class:`EncryptedTuple` payload.

    ``kind`` distinguishes true data from the dummy tuples of the basic
    protocol (§3.2 step 4': emitted when the WHERE clause selects nothing
    or access is denied, so the SSI cannot learn query selectivity) and
    from the fake tuples of the noise-based protocols (§4.3).
    """

    kind: str  # "data" | "dummy" | "fake"
    row: dict[str, Any] = field(default_factory=dict)

    KIND_DATA = "data"
    KIND_DUMMY = "dummy"
    KIND_FAKE = "fake"

    def is_real(self) -> bool:
        return self.kind == self.KIND_DATA

    def to_portable(self) -> dict[str, Any]:
        return {"kind": self.kind, "row": self.row}

    @classmethod
    def from_portable(cls, portable: dict[str, Any]) -> "TupleContent":
        return cls(kind=portable["kind"], row=dict(portable["row"]))
