"""SSI temporary storage and partition lifecycle tracking.

The SSI stores (a) the Covering Result of the collection phase, (b) the
encrypted partial aggregations flowing through the aggregation phase and
(c) the final k1-encrypted result rows.  It also tracks which partition is
assigned to which TDS so that "if a TDS goes offline in the middle of
processing a partition, SSI resends that partition to another available
TDS after a given timeout" (§3.2, Correctness).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.messages import (
    EncryptedPartial,
    EncryptedTuple,
    EncryptedTupleBlock,
    Partition,
)
from repro.exceptions import ProtocolError


class PartitionState(enum.Enum):
    PENDING = "pending"
    ASSIGNED = "assigned"
    DONE = "done"


@dataclass
class _TrackedPartition:
    partition: Partition
    state: PartitionState = PartitionState.PENDING
    assignee: str | None = None
    deadline: float | None = None


class PartitionTracker:
    """Assignment + timeout bookkeeping for one batch of partitions."""

    def __init__(self, partitions: list[Partition], timeout: float = 60.0) -> None:
        self.timeout = timeout
        self._tracked = {p.partition_id: _TrackedPartition(p) for p in partitions}
        # Maintained on every state transition so pending_count /
        # done_count / all_done are O(1) — the dispatcher consults them
        # on every fetch_partition poll.
        self._pending = len(self._tracked)
        self._done = 0

    def assign_next(self, tds_id: str, now: float = 0.0) -> Partition | None:
        """Hand the next pending partition to *tds_id* (None when all are
        assigned or done)."""
        if self._pending == 0:
            return None
        for tracked in self._tracked.values():
            if tracked.state is PartitionState.PENDING:
                tracked.state = PartitionState.ASSIGNED
                tracked.assignee = tds_id
                tracked.deadline = now + self.timeout
                self._pending -= 1
                return tracked.partition
        return None

    def complete(self, partition_id: int, tds_id: str) -> None:
        tracked = self._tracked.get(partition_id)
        if tracked is None:
            raise ProtocolError(f"unknown partition {partition_id}")
        if tracked.state is PartitionState.DONE:
            return  # duplicate completion after a reassignment race: ignore
        if tracked.assignee != tds_id and tracked.state is PartitionState.ASSIGNED:
            # A reassigned partition may legitimately complete from either
            # assignee; accept the work (results are idempotent).
            pass
        if tracked.state is PartitionState.PENDING:
            # Completed by a worker whose assignment already expired.
            self._pending -= 1
        tracked.state = PartitionState.DONE
        self._done += 1

    def expire(self, now: float) -> list[Partition]:
        """Return partitions whose assignee timed out, flipping them back
        to pending (they will be handed to another TDS)."""
        expired = []
        for tracked in self._tracked.values():
            if (
                tracked.state is PartitionState.ASSIGNED
                and tracked.deadline is not None
                and now >= tracked.deadline
            ):
                tracked.state = PartitionState.PENDING
                tracked.assignee = None
                tracked.deadline = None
                self._pending += 1
                expired.append(tracked.partition)
        return expired

    def fail(self, partition_id: int) -> None:
        """Explicitly mark an assigned partition as abandoned (the
        simulator calls this when it kills a TDS mid-partition)."""
        tracked = self._tracked.get(partition_id)
        if tracked is None:
            raise ProtocolError(f"unknown partition {partition_id}")
        if tracked.state is PartitionState.ASSIGNED:
            tracked.state = PartitionState.PENDING
            tracked.assignee = None
            tracked.deadline = None
            self._pending += 1

    def knows(self, partition_id: int) -> bool:
        """Whether this tracker ever issued *partition_id* — false for
        stale ids from a previous round's tracker."""
        return partition_id in self._tracked

    def is_done(self, partition_id: int) -> bool:
        """Whether a specific partition has completed (used to drop the
        duplicate results a reassignment race can produce)."""
        tracked = self._tracked.get(partition_id)
        if tracked is None:
            raise ProtocolError(f"unknown partition {partition_id}")
        return tracked.state is PartitionState.DONE

    def all_done(self) -> bool:
        return self._done == len(self._tracked)

    def pending_count(self) -> int:
        return self._pending

    def done_count(self) -> int:
        return self._done


@dataclass
class QueryStorage:
    """All SSI-side state for one query.

    Collected tuples arrive either as individual :class:`EncryptedTuple`
    objects (``collected``) or as columnar :class:`EncryptedTupleBlock`
    batches (``collected_blocks``); the batched path defers per-tuple
    materialization until the aggregation phase reads the covering
    result."""

    collected: list[EncryptedTuple] = field(default_factory=list)
    collected_blocks: list[EncryptedTupleBlock] = field(default_factory=list)
    partials: list[EncryptedPartial] = field(default_factory=list)
    result_rows: list[bytes] = field(default_factory=list)
    collection_closed: bool = False
    result_ready: bool = False
    #: memoized flattened covering result; append_tuple/append_block
    #: invalidate it, so repeated all_collected() calls during the
    #: aggregation phase stop re-materializing every block
    _flat: list[EncryptedTuple] | None = field(
        default=None, repr=False, compare=False
    )

    def append_tuple(self, item: EncryptedTuple) -> None:
        self.collected.append(item)
        self._flat = None

    def append_block(self, block: EncryptedTupleBlock) -> None:
        self.collected_blocks.append(block)
        self._flat = None

    def collected_count(self) -> int:
        return len(self.collected) + sum(len(b) for b in self.collected_blocks)

    def all_collected(self) -> list[EncryptedTuple]:
        """Materialize the full covering result (per-tuple objects first,
        then blocks, each in arrival order).  The flattened view is
        cached until the next append; callers get a fresh list each time
        (copying references is cheap — decoding blocks is not)."""
        if self._flat is None:
            items = list(self.collected)
            for block in self.collected_blocks:
                items.extend(block.tuples())
            self._flat = items
        return list(self._flat)
