"""The Supporting Server Infrastructure facade.

"A powerful, highly available but untrusted" server (§2.1): it moves
ciphertext around, evaluates the cleartext SIZE clause, partitions opaque
items and notifies the querier — and secretly logs everything it sees into
its :class:`~repro.ssi.observer.Observer` (the honest-but-curious half).

Nothing in this module ever holds a key or a plaintext tuple; the test
suite asserts this boundary by attacking the observer log.
"""

from __future__ import annotations

from typing import Iterable, Protocol, Sequence

from repro.core.messages import (
    EncryptedPartial,
    EncryptedTuple,
    EncryptedTupleBlock,
    Partition,
    QueryEnvelope,
    QueryResult,
)
from repro.exceptions import (
    DuplicateQueryError,
    ResultNotReadyError,
    UnknownQueryError,
)
from repro.obs.spans import QueryLifecycle
from repro.ssi.observer import Observer
from repro.ssi.querybox import GlobalQuerybox, PersonalQuerybox
from repro.ssi.storage import PartitionTracker, QueryStorage


class StateJournal(Protocol):
    """What the SSI needs from a durability journal.

    Structural typing on purpose: the concrete implementation lives in
    :mod:`repro.store` (which imports the wire codec), and this module
    must stay import-light on the SSI side of the trust boundary.  Every
    method persists one mutation record and returns its WAL sequence.
    """

    def submit_tuples(
        self,
        query_id: str,
        tuples: Sequence[EncryptedTuple],
        *,
        wire: bytes | memoryview | None = None,
    ) -> int: ...

    def submit_tuple_block(
        self,
        query_id: str,
        block: EncryptedTupleBlock,
        *,
        wire: bytes | memoryview | None = None,
    ) -> int: ...

    def submit_partials(
        self,
        query_id: str,
        partials: Sequence[EncryptedPartial],
        *,
        wire: bytes | memoryview | None = None,
    ) -> int: ...

    def close_collection(self, query_id: str) -> int: ...

    def take_partials(self, query_id: str) -> int: ...

    def store_result_rows(self, query_id: str, rows: Iterable[bytes]) -> int: ...

    def publish_result(self, query_id: str) -> int: ...


class SupportingServerInfrastructure:
    """SSI: queryboxes + temporary storage + partitioning services."""

    def __init__(self, observer: Observer | None = None) -> None:
        self.global_querybox = GlobalQuerybox()
        self.personal_querybox = PersonalQuerybox()
        self.observer = observer if observer is not None else Observer()
        self._storage: dict[str, QueryStorage] = {}
        self._envelopes: dict[str, QueryEnvelope] = {}
        # Phase spans hang off the facade because both the dispatcher
        # and the server-side coordinator call these methods directly —
        # this is the one choke point that sees every phase transition.
        # A lifecycle transition may record spans, never raise.
        self.lifecycle = QueryLifecycle()
        #: durability journal (see :class:`StateJournal`); when set,
        #: every state mutation is written *ahead* of being applied.
        #: post_query is journaled by the dispatcher instead — the
        #: record needs the scheduling meta this facade never sees.
        self.journal: StateJournal | None = None

    # ------------------------------------------------------------------ #
    # query posting / download (steps 1-2)
    # ------------------------------------------------------------------ #
    def post_query(self, envelope: QueryEnvelope, tds_id: str | None = None) -> None:
        """Post to the global querybox, or to one personal querybox when
        *tds_id* is given."""
        if envelope.query_id in self._envelopes:
            raise DuplicateQueryError(f"duplicate query id {envelope.query_id!r}")
        self._envelopes[envelope.query_id] = envelope
        self._storage[envelope.query_id] = QueryStorage()
        if tds_id is None:
            self.global_querybox.post(envelope)
        else:
            self.personal_querybox.post(tds_id, envelope)
        self.lifecycle.opened(envelope.query_id)

    def active_queries(self) -> list[QueryEnvelope]:
        return self.global_querybox.active()

    def envelope(self, query_id: str) -> QueryEnvelope:
        try:
            return self._envelopes[query_id]
        except KeyError:
            raise UnknownQueryError(f"unknown query {query_id!r}") from None

    # ------------------------------------------------------------------ #
    # collection phase (step 4, SIZE evaluation)
    # ------------------------------------------------------------------ #
    def submit_tuples(
        self,
        query_id: str,
        tuples: Iterable[EncryptedTuple],
        *,
        wire: bytes | memoryview | None = None,
    ) -> None:
        storage = self._require(query_id)
        if storage.collection_closed:
            return  # late arrivals after the SIZE clause closed: dropped
        items = list(tuples)
        if self.journal is not None:
            self.journal.submit_tuples(query_id, items, wire=wire)
        for item in items:
            storage.append_tuple(item)
            self.observer.record(
                query_id, "collection", len(item.payload), item.group_tag
            )

    def submit_tuple_block(
        self,
        query_id: str,
        block: EncryptedTupleBlock,
        *,
        wire: bytes | memoryview | None = None,
    ) -> None:
        """Batched collection (the v3 wire path): store one columnar
        block as-is — O(1) per block, no per-tuple objects until the
        aggregation phase materializes the covering result.  The
        observer still sees exactly the per-tuple sizes and tags it
        would have seen item-by-item."""
        storage = self._require(query_id)
        if storage.collection_closed:
            return  # late arrivals after the SIZE clause closed: dropped
        if self.journal is not None:
            self.journal.submit_tuple_block(query_id, block, wire=wire)
        storage.append_block(block)
        self.observer.record_block(
            query_id, "collection", block.offsets, block.tags
        )

    def collected_count(self, query_id: str) -> int:
        return self._require(query_id).collected_count()

    def evaluate_size_clause(self, query_id: str, elapsed_seconds: float = 0.0) -> bool:
        """Cleartext SIZE evaluation (§3.1); closes collection when met."""
        envelope = self.envelope(query_id)
        storage = self._require(query_id)
        count = storage.collected_count()
        met = False
        if envelope.size_tuples is not None and count >= envelope.size_tuples:
            met = True
        if envelope.size_seconds is not None and elapsed_seconds >= envelope.size_seconds:
            met = True
        # With no SIZE clause the query stays active until every targeted
        # TDS has answered (the drivers stop after their collector list).
        if met:
            if self.journal is not None:
                self.journal.close_collection(query_id)
            storage.collection_closed = True
            self.global_querybox.close(query_id)
            self.lifecycle.collection_closed(query_id, collected=count)
        return met

    def close_collection(self, query_id: str) -> None:
        storage = self._require(query_id)
        if storage.collection_closed:
            return  # transition already happened; double-close is a no-op
        if self.journal is not None:
            self.journal.close_collection(query_id)
        storage.collection_closed = True
        self.global_querybox.close(query_id)
        self.lifecycle.collection_closed(
            query_id, collected=storage.collected_count()
        )

    def collection_closed(self, query_id: str) -> bool:
        return self._require(query_id).collection_closed

    def covering_result(self, query_id: str) -> list[EncryptedTuple]:
        return self._require(query_id).all_collected()

    # ------------------------------------------------------------------ #
    # aggregation phase storage (steps 5-8)
    # ------------------------------------------------------------------ #
    def submit_partials(
        self,
        query_id: str,
        partials: Iterable[EncryptedPartial],
        *,
        wire: bytes | memoryview | None = None,
    ) -> None:
        storage = self._require(query_id)
        items = list(partials)
        if self.journal is not None:
            self.journal.submit_partials(query_id, items, wire=wire)
        self.lifecycle.partials_submitted(query_id)
        for item in items:
            storage.partials.append(item)
            self.observer.record(
                query_id, "aggregation", len(item.payload), item.group_tag
            )

    def take_partials(self, query_id: str) -> list[EncryptedPartial]:
        """Drain the partial store (the next aggregation step re-partitions
        them)."""
        storage = self._require(query_id)
        if not storage.partials:
            return []
        if self.journal is not None:
            self.journal.take_partials(query_id)
        partials, storage.partials = storage.partials, []
        self.lifecycle.partials_taken(query_id, count=len(partials))
        return partials

    def partial_count(self, query_id: str) -> int:
        return len(self._require(query_id).partials)

    # ------------------------------------------------------------------ #
    # partition tracking
    # ------------------------------------------------------------------ #
    def track(
        self, partitions: Sequence[Partition], timeout: float = 60.0
    ) -> PartitionTracker:
        return PartitionTracker(list(partitions), timeout)

    # ------------------------------------------------------------------ #
    # result delivery (step 13)
    # ------------------------------------------------------------------ #
    def store_result_rows(self, query_id: str, rows: Iterable[bytes]) -> None:
        storage = self._require(query_id)
        items = list(rows)
        if self.journal is not None:
            self.journal.store_result_rows(query_id, items)
        for row in items:
            storage.result_rows.append(row)
            self.observer.record(query_id, "filtering", len(row), None)
        self.lifecycle.result_stored(query_id, rows=len(items))

    def publish_result(self, query_id: str) -> None:
        storage = self._require(query_id)
        if storage.result_ready:
            return  # transition already happened; republish is a no-op
        if self.journal is not None:
            self.journal.publish_result(query_id)
        storage.result_ready = True
        self.lifecycle.published(query_id)

    def result_ready(self, query_id: str) -> bool:
        return self._require(query_id).result_ready

    def fetch_result(self, query_id: str) -> QueryResult:
        storage = self._require(query_id)
        if not storage.result_ready:
            raise ResultNotReadyError(f"result of {query_id!r} not ready")
        return QueryResult(query_id, tuple(storage.result_rows))

    # ------------------------------------------------------------------ #
    # durability surface (repro.store snapshot/recovery)
    # ------------------------------------------------------------------ #
    def storage_map(self) -> dict[str, QueryStorage]:
        """The live per-query storage, keyed by query id.  Exposed for
        the durable store's snapshot capture and recovery restore — not
        a mutation API for request handlers."""
        return self._storage

    def envelope_map(self) -> dict[str, QueryEnvelope]:
        return self._envelopes

    def _require(self, query_id: str) -> QueryStorage:
        try:
            return self._storage[query_id]
        except KeyError:
            raise UnknownQueryError(f"unknown query {query_id!r}") from None
