"""Supporting Server Infrastructure: untrusted but highly available.

Queryboxes, temporary storage, partitioning strategies, partition lifecycle
tracking and the honest-but-curious observation log.
"""

from repro.ssi.observer import Observation, Observer
from repro.ssi.partitioner import RandomPartitioner, TagPartitioner
from repro.ssi.querybox import GlobalQuerybox, PersonalQuerybox
from repro.ssi.server import SupportingServerInfrastructure
from repro.ssi.storage import PartitionState, PartitionTracker, QueryStorage

__all__ = [
    "GlobalQuerybox",
    "Observation",
    "Observer",
    "PartitionState",
    "PartitionTracker",
    "PersonalQuerybox",
    "QueryStorage",
    "RandomPartitioner",
    "SupportingServerInfrastructure",
    "TagPartitioner",
]
