"""Queryboxes: how queries reach TDSs (§3.1, "Query and result delivery").

Queries are executed in **pull mode**: the querier posts to the SSI, TDSs
download at connection time.  The SSI maintains

* a **global querybox** for queries directed to the crowd, and
* **personal queryboxes** for queries directed to one individual.

TDSs remember which query ids they have already served so reconnecting
does not double-count contributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.messages import QueryEnvelope


@dataclass
class GlobalQuerybox:
    """Crowd-directed queries, newest last."""

    _queries: list[QueryEnvelope] = field(default_factory=list)
    _closed: set[str] = field(default_factory=set)

    def post(self, envelope: QueryEnvelope) -> None:
        self._queries.append(envelope)

    def active(self) -> list[QueryEnvelope]:
        """Queries still collecting (not closed by the SIZE clause)."""
        return [q for q in self._queries if q.query_id not in self._closed]

    def close(self, query_id: str) -> None:
        """Stop advertising a query whose SIZE clause is satisfied."""
        self._closed.add(query_id)

    def is_closed(self, query_id: str) -> bool:
        return query_id in self._closed


@dataclass
class PersonalQuerybox:
    """Per-TDS mailbox for identifying queries (e.g. a doctor querying the
    embedded healthcare folder of one patient)."""

    _boxes: dict[str, list[QueryEnvelope]] = field(default_factory=dict)

    def post(self, tds_id: str, envelope: QueryEnvelope) -> None:
        self._boxes.setdefault(tds_id, []).append(envelope)

    def fetch(self, tds_id: str) -> list[QueryEnvelope]:
        """Drain the mailbox of *tds_id*."""
        return self._boxes.pop(tds_id, [])

    def pending_count(self, tds_id: str) -> int:
        return len(self._boxes.get(tds_id, ()))
