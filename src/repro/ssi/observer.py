"""The honest-but-curious adversary's notebook.

Everything the SSI can legitimately see while following the protocol is
recorded here: opaque payload sizes and group tags.  The attack module
(:mod:`repro.exposure.attack`) then tries to exploit these observations —
exactly the frequency-based attack of §3.1/§5 — and the tests assert the
attack succeeds against Det_Enc-style tags but fails against nDet_Enc /
flattened distributions.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class Observation:
    """One stored item as seen by the SSI."""

    query_id: str
    phase: str  # "collection" | "aggregation" | "filtering"
    payload_size: int
    group_tag: bytes | None


@dataclass
class Observer:
    """Accumulates what the SSI sees; query-able by the attack simulator."""

    observations: list[Observation] = field(default_factory=list)

    def record(
        self,
        query_id: str,
        phase: str,
        payload_size: int,
        group_tag: bytes | None,
    ) -> None:
        self.observations.append(
            Observation(query_id, phase, payload_size, group_tag)
        )

    # ------------------------------------------------------------------ #
    # what an attacker computes from the log
    # ------------------------------------------------------------------ #
    def tag_frequencies(self, query_id: str, phase: str = "collection") -> Counter:
        """Frequency of each distinct group tag — the input of a
        frequency-based attack.  ``None`` tags (fully nDet-encrypted
        dataflows) are excluded: each ciphertext is unique by construction
        so no frequency signal exists."""
        counter: Counter = Counter()
        for obs in self.observations:
            if obs.query_id == query_id and obs.phase == phase and obs.group_tag:
                counter[obs.group_tag] += 1
        return counter

    def payload_size_frequencies(
        self, query_id: str, phase: str | None = "collection"
    ) -> Counter:
        """Distribution of payload sizes within *phase* (None = all phases).
        A single size class means the padding discipline leaks no lengths."""
        return Counter(
            obs.payload_size
            for obs in self.observations
            if obs.query_id == query_id and (phase is None or obs.phase == phase)
        )

    def distinct_payloads_seen(self, query_id: str) -> int:
        return sum(1 for obs in self.observations if obs.query_id == query_id)
