"""The honest-but-curious adversary's notebook.

Everything the SSI can legitimately see while following the protocol is
recorded here: opaque payload sizes and group tags.  The attack module
(:mod:`repro.exposure.attack`) then tries to exploit these observations —
exactly the frequency-based attack of §3.1/§5 — and the tests assert the
attack succeeds against Det_Enc-style tags but fails against nDet_Enc /
flattened distributions.

The log is *lazy*: the batched collection path records a whole tuple
block as one O(1) entry (its sizes stay implicit in the offsets table),
and per-:class:`Observation` objects are only materialized when an
analysis method (or the :attr:`Observer.observations` property) reads
the log.  What the adversary can see is unchanged — only when the
notebook is transcribed.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence


@dataclass
class Observation:
    """One stored item as seen by the SSI."""

    query_id: str
    phase: str  # "collection" | "aggregation" | "filtering"
    payload_size: int
    group_tag: bytes | None


@dataclass(frozen=True, slots=True)
class _BatchEntry:
    """A not-yet-expanded block of observations (one per stored block)."""

    query_id: str
    phase: str
    offsets: Sequence[int]  # count + 1 entries; sizes are the diffs
    tags: Sequence[bytes | None]


class Observer:
    """Accumulates what the SSI sees; query-able by the attack simulator."""

    def __init__(self) -> None:
        self._entries: list[Observation | _BatchEntry] = []
        self._flat: list[Observation] | None = []

    @property
    def observations(self) -> list[Observation]:
        """The fully-transcribed log, in arrival order.  Batch entries
        are expanded on first read and the result cached until the next
        record."""
        if self._flat is None:
            flat: list[Observation] = []
            for entry in self._entries:
                if isinstance(entry, Observation):
                    flat.append(entry)
                    continue
                offsets = entry.offsets
                flat.extend(
                    Observation(
                        entry.query_id,
                        entry.phase,
                        offsets[i + 1] - offsets[i],
                        tag,
                    )
                    for i, tag in enumerate(entry.tags)
                )
            self._flat = flat
        return self._flat

    def record(
        self,
        query_id: str,
        phase: str,
        payload_size: int,
        group_tag: bytes | None,
    ) -> None:
        self._entries.append(
            Observation(query_id, phase, payload_size, group_tag)
        )
        self._flat = None

    def record_block(
        self,
        query_id: str,
        phase: str,
        offsets: Sequence[int],
        tags: Sequence[bytes | None],
    ) -> None:
        """Record a whole columnar block in O(1): payload sizes stay
        implicit in *offsets* (``count + 1`` entries) until the log is
        read."""
        self._entries.append(_BatchEntry(query_id, phase, offsets, tags))
        self._flat = None

    # ------------------------------------------------------------------ #
    # what an attacker computes from the log
    # ------------------------------------------------------------------ #
    def tag_frequencies(self, query_id: str, phase: str = "collection") -> Counter:
        """Frequency of each distinct group tag — the input of a
        frequency-based attack.  ``None`` tags (fully nDet-encrypted
        dataflows) are excluded: each ciphertext is unique by construction
        so no frequency signal exists."""
        counter: Counter = Counter()
        for obs in self.observations:
            if obs.query_id == query_id and obs.phase == phase and obs.group_tag:
                counter[obs.group_tag] += 1
        return counter

    def payload_size_frequencies(
        self, query_id: str, phase: str | None = "collection"
    ) -> Counter:
        """Distribution of payload sizes within *phase* (None = all phases).
        A single size class means the padding discipline leaks no lengths."""
        return Counter(
            obs.payload_size
            for obs in self.observations
            if obs.query_id == query_id and (phase is None or obs.phase == phase)
        )

    def distinct_payloads_seen(self, query_id: str) -> int:
        return sum(1 for obs in self.observations if obs.query_id == query_id)
