"""Per-querier admission control and fair drain scheduling for the SSI.

The paper's SSI serves *many* queriers at once (§2.1, §6); nothing in the
protocols bounds how much of the SSI one querier may occupy.  This module
adds that bound, on exactly the cleartext the SSI legitimately holds: the
credential subject on every query envelope and the *sizes* of the opaque
submissions queued for each query.  Two quotas per querier:

* **active queries** — posted and not yet published.  A post over quota
  answers ``ERR_ADMISSION`` with a retry-after hint; nothing is applied,
  so the client's retry (same idempotency key) is executed, not dropped.
* **in-flight bytes** — ciphertext bytes sitting in the bounded
  submission queues of that querier's queries, charged at enqueue and
  released at apply.  This caps the *memory* one tenant can pin, where
  the per-query queue depth (``ERR_BACKPRESSURE``) only caps one query.

:class:`FairDrain` is the scheduling half: a weighted round-robin cursor
over the queriers that currently have pending submissions, so the
dispatcher drains entry budgets fairly instead of letting one heavy
querier's flood delay everyone else's applies.

Trust boundary: this module is ssi-role.  It sees subjects (sanctioned
envelope cleartext), query ids, byte counts and weights — never payload
bytes or plaintext.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.exceptions import AdmissionError
from repro.obs import metrics as obs_metrics

# --------------------------------------------------------------------- #
# instruments (per-querier label children; children are resolved once per
# subject and cached, PR 5's pre-resolved-child hot-path pattern)
# --------------------------------------------------------------------- #
_ACTIVE_QUERIES = obs_metrics.REGISTRY.gauge(
    "repro_ssi_active_queries",
    "Queries posted and not yet published, by querier subject.",
    ("querier",),
)
_REJECTIONS = obs_metrics.REGISTRY.counter(
    "repro_ssi_admission_rejections_total",
    "Requests refused by admission control, by querier subject and quota.",
    ("querier", "reason"),
)
_PENDING_BYTES = obs_metrics.REGISTRY.gauge(
    "repro_ssi_admission_pending_bytes",
    "Ciphertext bytes currently queued across a querier's queries.",
    ("querier",),
)


@dataclass(frozen=True)
class AdmissionPolicy:
    """Quotas and scheduling weights, per querier subject.

    ``0`` disables a quota (unlimited) — the default, so an SSI without
    an explicit policy behaves exactly as before this module existed.
    ``weights`` gives specific subjects a larger share of each fair-drain
    round; everyone else drains ``default_weight`` entries per turn."""

    max_active_queries: int = 0
    max_pending_bytes: int = 0
    retry_after: float = 0.05
    default_weight: int = 1
    weights: Mapping[str, int] = field(default_factory=dict)

    def weight(self, subject: str) -> int:
        return max(1, int(self.weights.get(subject, self.default_weight)))

    @property
    def enforcing(self) -> bool:
        return self.max_active_queries > 0 or self.max_pending_bytes > 0


class AdmissionController:
    """Track per-querier occupancy and enforce an :class:`AdmissionPolicy`.

    Active-query accounting is *lazy*: rather than hooking every path
    that can publish a result (the coordinator publishes internally), the
    controller re-counts a subject's registered queries against a
    ``result_ready`` predicate at the next admission decision and prunes
    the finished ones.  post_query is rare, so the O(queries-per-subject)
    recount never touches the submission hot path."""

    def __init__(self, policy: AdmissionPolicy | None = None) -> None:
        self.policy = policy if policy is not None else AdmissionPolicy()
        #: query id -> posting querier's subject
        self._subjects: dict[str, str] = {}
        #: subject -> ids of its not-yet-pruned queries
        self._queries: dict[str, set[str]] = {}
        #: subject -> bytes currently queued (charged, not yet applied)
        self._pending_bytes: dict[str, int] = {}
        # pre-resolved metric children, one per subject seen
        self._g_active: dict[str, obs_metrics.GaugeChild] = {}
        self._g_bytes: dict[str, obs_metrics.GaugeChild] = {}
        self._c_rejected: dict[tuple[str, str], obs_metrics.CounterChild] = {}

    # ------------------------------------------------------------------ #
    # metric children
    # ------------------------------------------------------------------ #
    def _active_gauge(self, subject: str) -> obs_metrics.GaugeChild:
        child = self._g_active.get(subject)
        if child is None:
            child = self._g_active[subject] = _ACTIVE_QUERIES.labels(
                querier=subject
            )
        return child

    def _bytes_gauge(self, subject: str) -> obs_metrics.GaugeChild:
        child = self._g_bytes.get(subject)
        if child is None:
            child = self._g_bytes[subject] = _PENDING_BYTES.labels(
                querier=subject
            )
        return child

    def _rejected(self, subject: str, reason: str) -> obs_metrics.CounterChild:
        key = (subject, reason)
        child = self._c_rejected.get(key)
        if child is None:
            child = self._c_rejected[key] = _REJECTIONS.labels(
                querier=subject, reason=reason
            )
        return child

    # ------------------------------------------------------------------ #
    # active-query quota
    # ------------------------------------------------------------------ #
    def subject_of(self, query_id: str) -> str:
        return self._subjects.get(query_id, "")

    def admit_query(
        self, subject: str, result_ready: Callable[[str], bool]
    ) -> None:
        """Gate one post_query by *subject*.  Raises
        :class:`AdmissionError` when the subject already holds
        ``max_active_queries`` unfinished queries; *result_ready* is the
        predicate used to prune finished ones first."""
        limit = self.policy.max_active_queries
        if limit <= 0:
            return
        active = self._prune(subject, result_ready)
        if active >= limit:
            self._rejected(subject, "query_quota").inc()
            raise AdmissionError(
                f"querier {subject!r} has {active} active queries "
                f"(quota {limit}); retry after a result publishes",
                retry_after=self.policy.retry_after,
            )

    def register_query(self, query_id: str, subject: str) -> None:
        """Record *query_id* as owned by *subject* (post succeeded)."""
        self._subjects[query_id] = subject
        queries = self._queries.setdefault(subject, set())
        queries.add(query_id)
        self._active_gauge(subject).set(len(queries))

    def _prune(
        self, subject: str, result_ready: Callable[[str], bool]
    ) -> int:
        queries = self._queries.get(subject)
        if not queries:
            return 0
        finished = {qid for qid in queries if result_ready(qid)}
        queries -= finished
        self._active_gauge(subject).set(len(queries))
        return len(queries)

    # ------------------------------------------------------------------ #
    # in-flight-bytes quota (submission enqueue/apply)
    # ------------------------------------------------------------------ #
    def charge(self, query_id: str, nbytes: int) -> None:
        """Charge *nbytes* of queued ciphertext to the query's poster.
        Raises :class:`AdmissionError` when the charge would push the
        subject past ``max_pending_bytes`` (nothing is charged then)."""
        subject = self.subject_of(query_id)
        limit = self.policy.max_pending_bytes
        held = self._pending_bytes.get(subject, 0)
        if limit > 0 and held + nbytes > limit:
            self._rejected(subject, "byte_quota").inc()
            raise AdmissionError(
                f"querier {subject!r} has {held} submission bytes queued "
                f"(+{nbytes} would exceed quota {limit}); back off",
                retry_after=self.policy.retry_after,
            )
        self._pending_bytes[subject] = held + nbytes
        self._bytes_gauge(subject).set(held + nbytes)

    def release(self, query_id: str, nbytes: int) -> None:
        """Return *nbytes* of quota after the queued entry was applied
        (or rejected after a successful charge)."""
        subject = self.subject_of(query_id)
        held = max(0, self._pending_bytes.get(subject, 0) - nbytes)
        self._pending_bytes[subject] = held
        self._bytes_gauge(subject).set(held)

    def pending_bytes(self, subject: str) -> int:
        return self._pending_bytes.get(subject, 0)


class FairDrain:
    """Weighted round-robin cursor over queriers with pending work.

    :meth:`order` returns the subjects of *buckets* starting just past
    the subject served first last time, so repeated drain rounds rotate
    who goes first; within a round each subject may apply up to its
    policy weight before the turn passes on.  The cursor is the only
    state — the dispatcher owns the queues."""

    def __init__(self, policy: AdmissionPolicy | None = None) -> None:
        self.policy = policy if policy is not None else AdmissionPolicy()
        self._last_first: str | None = None

    def order(self, subjects: Iterable[str]) -> list[str]:
        ordered = sorted(set(subjects))
        if not ordered:
            return ordered
        if self._last_first is not None:
            # rotate: start just past last round's first subject
            idx = 0
            for i, subject in enumerate(ordered):
                if subject > self._last_first:
                    idx = i
                    break
            else:
                idx = 0
            ordered = ordered[idx:] + ordered[:idx]
        self._last_first = ordered[0]
        return ordered

    def weight(self, subject: str) -> int:
        return self.policy.weight(subject)
