"""SSI-side partitioning strategies (steps 5 and 9 of Fig. 2).

The SSI cannot decrypt anything, so the only information a partitioner may
use is (a) item order/count and (b) the cleartext ``group_tag`` when the
protocol provides one:

* :class:`RandomPartitioner` — S_Agg & basic protocol: "the Covering
  Result being fully encrypted, SSI sees partitions as uninterpreted
  chunks of bytes" — tuples from the same group land in random partitions.
* :class:`TagPartitioner` — noise-based & ED_Hist: "SSI groups tup with
  the same E(AG)" — one partition per distinct tag, optionally splitting
  oversized tag groups and packing small ones together.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.messages import EncryptedPartial, EncryptedTuple, Partition
from repro.exceptions import ConfigurationError

Item = EncryptedTuple | EncryptedPartial


class RandomPartitioner:
    """Shuffle items and cut into fixed-size chunks."""

    def __init__(self, partition_size: int, rng: random.Random) -> None:
        if partition_size < 1:
            raise ConfigurationError("partition_size must be >= 1")
        self.partition_size = partition_size
        self._rng = rng
        self._next_id = 0

    def partition(self, items: Sequence[Item]) -> list[Partition]:
        shuffled = list(items)
        self._rng.shuffle(shuffled)
        partitions = []
        for start in range(0, len(shuffled), self.partition_size):
            chunk = tuple(shuffled[start : start + self.partition_size])
            partitions.append(Partition(self._next_id, chunk))
            self._next_id += 1
        return partitions


class TagPartitioner:
    """Group items by their cleartext tag.

    ``max_partition_size`` splits very popular tags across several
    partitions (they will be re-merged by the next aggregation step);
    ``pack_small`` bins several rare tags into one partition to avoid a
    long tail of tiny downloads.  Both knobs only touch *which* encrypted
    items travel together — never their content.
    """

    def __init__(
        self,
        max_partition_size: int | None = None,
        pack_small: bool = False,
        pack_target: int | None = None,
    ) -> None:
        if max_partition_size is not None and max_partition_size < 1:
            raise ConfigurationError("max_partition_size must be >= 1")
        self.max_partition_size = max_partition_size
        self.pack_small = pack_small
        self.pack_target = pack_target or (max_partition_size or 0)
        self._next_id = 0

    def partition(self, items: Sequence[Item]) -> list[Partition]:
        by_tag: dict[bytes, list[Item]] = {}
        untagged: list[Item] = []
        for item in items:
            if item.group_tag is None:
                untagged.append(item)
            else:
                by_tag.setdefault(item.group_tag, []).append(item)
        if untagged:
            raise ConfigurationError(
                "TagPartitioner received untagged items; use RandomPartitioner"
            )

        partitions: list[Partition] = []
        small_buffer: list[Item] = []
        for tag in sorted(by_tag):  # deterministic order
            group = by_tag[tag]
            if self.max_partition_size is None:
                partitions.append(self._emit(group))
                continue
            if self.pack_small and len(group) < self.max_partition_size:
                small_buffer.extend(group)
                if len(small_buffer) >= self.pack_target:
                    partitions.append(self._emit(small_buffer))
                    small_buffer = []
                continue
            for start in range(0, len(group), self.max_partition_size):
                partitions.append(
                    self._emit(group[start : start + self.max_partition_size])
                )
        if small_buffer:
            partitions.append(self._emit(small_buffer))
        return partitions

    def _emit(self, items: Sequence[Item]) -> Partition:
        partition = Partition(self._next_id, tuple(items))
        self._next_id += 1
        return partition
