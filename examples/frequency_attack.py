"""The honest-but-curious SSI turns attacker (§3.1 / §5), live.

Runs the same skewed GROUP BY query under three protocols and lets the
SSI mount a frequency-based attack on whatever it observed:

* Det_Enc with no noise (Rnf, nf = 0)  -> the attack recovers the groups;
* C_Noise                              -> flat tags, attack = guessing;
* S_Agg                                -> no tags at all, nothing to attack.

Run with:  python examples/frequency_attack.py
"""

import random

from repro import CNoiseProtocol, Deployment, RnfNoiseProtocol, SAggProtocol
from repro.core.codec import encode
from repro.crypto.det import DeterministicCipher
from repro.exposure import FrequencyAttacker
from repro.sql.schema import Database, schema

# a deliberately skewed population: frequency attacks need skew
DISTRICT_WEIGHTS = {"center": 12, "north": 6, "south": 3, "east": 2, "west": 1}
SQL = "SELECT district, COUNT(*) AS n FROM Consumer GROUP BY district"


def skewed_factory():
    assignment = [d for d, w in DISTRICT_WEIGHTS.items() for __ in range(w)]

    def factory(index, rng):
        db = Database()
        table = db.create_table(schema("Consumer", cid="INTEGER", district="TEXT"))
        table.insert({"cid": index, "district": assignment[index % len(assignment)]})
        return db

    return factory


def run(deployment, cls, **kwargs):
    querier = deployment.make_querier()
    envelope = querier.make_envelope(SQL)
    deployment.ssi.post_query(envelope)
    cls(
        deployment.ssi, deployment.tds_list, deployment.tds_list,
        random.Random(5), **kwargs,
    ).execute(envelope)
    return envelope.query_id


def main() -> None:
    deployment = Deployment.build(
        48, skewed_factory(), tables=["Consumer"], seed=21
    )
    domain = [(d,) for d in DISTRICT_WEIGHTS]

    # the attacker's prior: published census-like district frequencies
    prior = {
        row["district"]: row["n"] for row in deployment.reference_answer(SQL)
    }
    attacker = FrequencyAttacker(prior)

    # scoring oracle (uses k2 — the real SSI does NOT have this)
    k2 = deployment.provisioner.bundle_for_tds().k2.current.material
    det = DeterministicCipher(k2)
    truth = {det.encrypt(encode([d])): d for d in DISTRICT_WEIGHTS}

    print(f"population: 48 TDSs, district skew {dict(DISTRICT_WEIGHTS)}\n")
    print(f"{'protocol':>22} | {'tags seen':>9} | {'attack accuracy':>15}")
    print("-" * 54)

    for label, cls, kwargs in [
        ("Det_Enc (R0_Noise)", RnfNoiseProtocol, {"domain": domain, "nf": 0}),
        ("R10_Noise", RnfNoiseProtocol, {"domain": domain, "nf": 10}),
        ("C_Noise", CNoiseProtocol, {"domain": domain}),
        ("S_Agg", SAggProtocol, {}),
    ]:
        query_id = run(deployment, cls, **kwargs)
        outcome = attacker.evaluate(deployment.ssi.observer, query_id, truth)
        print(f"{label:>22} | {outcome.attack_surface:>9} | "
              f"{outcome.accuracy:>14.0%}")

    print("\nReading: with bare Det_Enc the SSI matches ciphertext frequencies")
    print("to its prior and wins; injected noise flattens the observable")
    print("distribution; S_Agg removes the attack surface entirely.")


if __name__ == "__main__":
    main()
