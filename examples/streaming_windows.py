"""Stream-relational windows (§2.3): mean consumption per period & district.

The paper's canonical deployment pushes smart-meter data "in the form of
windows": the same aggregate query re-executes every period over freshly
acquired readings.  This example runs four windows; each window is a full
independent protocol execution (collection → aggregation → filtering)
with its own query id and covering result, so every window enjoys the
same security guarantees.

Run with:  python examples/streaming_windows.py
"""

import random

from repro import Deployment, SAggProtocol
from repro.exposure import audit_query
from repro.protocols import WindowedQueryRunner, append_feed
from repro.sql.schema import Database, schema

NUM_METERS = 16
NUM_WINDOWS = 4
SQL = "SELECT district, AVG(cons) AS mean_cons, COUNT(*) AS readings " \
      "FROM Power GROUP BY district"

DISTRICTS = ["north", "south", "east"]


def empty_meter_factory():
    def factory(index, rng):
        db = Database()
        db.create_table(schema("Power", district="TEXT", cons="REAL"))
        return db

    return factory


def reading_feed():
    """Each window, every meter acquires one reading; a morning/evening
    pattern makes the running means drift as windows accumulate."""
    base_by_window = [300.0, 450.0, 820.0, 500.0]  # night/morning/evening/day

    def row(window_index, tds_index, rng):
        base = base_by_window[window_index % len(base_by_window)]
        return {
            "district": DISTRICTS[tds_index % len(DISTRICTS)],
            "cons": round(base + rng.uniform(-40, 40), 1),
        }

    return append_feed("Power", row)


def main() -> None:
    deployment = Deployment.build(
        NUM_METERS, empty_meter_factory(), tables=["Power"], seed=6
    )
    runner = WindowedQueryRunner(
        deployment,
        lambda dep, rng: SAggProtocol(dep.ssi, dep.tds_list, dep.tds_list, rng),
        SQL,
        data_feed=reading_feed(),
        seed=10,
    )

    print(f"{SQL}\n")
    print(f"{'window':>6} | {'district':>8} | {'mean (kWh)':>10} | {'readings':>8}")
    print("-" * 44)
    for result in runner.run(NUM_WINDOWS):
        for row in sorted(result.rows, key=lambda r: r["district"]):
            print(
                f"{result.window_index:>6} | {row['district']:>8} | "
                f"{row['mean_cons']:>10.1f} | {row['readings']:>8}"
            )

    # every window's dataflow honoured the S_Agg contract
    clean = 0
    for query_id in list(deployment.ssi._storage):
        if audit_query(deployment.ssi.observer, query_id, "s_agg").ok():
            clean += 1
    print(f"\n✓ {clean}/{NUM_WINDOWS} window executions pass the security audit "
          f"(uniform sizes, zero grouping tags)")


if __name__ == "__main__":
    main()
