"""The paper's smart-metering scenario (§2.3), full pipeline.

The energy distribution company wants the mean consumption of detached
houses per district, only for districts with enough respondents, stopping
after a bounded number of answers:

    SELECT AVG(Cons) FROM Power P, Consumer C
    WHERE C.accomodation='detached house' AND C.cid = P.cid
    GROUP BY C.district
    HAVING COUNT(DISTINCT C.cid) > <threshold>
    SIZE <bound>

The company must never see raw readings (at 1 Hz granularity, appliance
signatures reveal the inhabitants' activities — paper footnote 6), so the
TDS policy grants it *aggregate-only* access.  This example runs the
query with ED_Hist — the protocol §6.4 recommends for this setting — and
demonstrates that a raw SELECT by the same company is refused by every
meter.

Run with:  python examples/smart_metering.py
"""

import random

from repro import Deployment, EDHistProtocol, build_histogram, smart_meter_factory
from repro.exceptions import AccessDeniedError
from repro.protocols import SMART_METER_PRIORITIES, recommend_protocol
from repro.tds.access_control import AccessPolicy

NUM_METERS = 60
THRESHOLD = 3

AGGREGATE_SQL = (
    "SELECT AVG(P.cons) AS avg_cons FROM Power P, Consumer C "
    "WHERE C.accomodation = 'detached house' AND C.cid = P.cid "
    f"GROUP BY C.district HAVING COUNT(DISTINCT C.cid) > {THRESHOLD} "
    "SIZE 50000"
)
RAW_SQL = "SELECT cons FROM Power"


def main() -> None:
    # The distributor's policy: aggregate-only on both tables.
    policy = (
        AccessPolicy()
        .grant("energy-provider", "Power", aggregate_only=True)
        .grant("energy-provider", "Consumer", aggregate_only=True)
    )
    deployment = Deployment.build(
        NUM_METERS,
        smart_meter_factory(num_districts=5, readings_per_meter=3),
        tables=["Power", "Consumer"],
        seed=99,
        policy=policy,
    )
    company = deployment.make_querier(
        subject="distribution-company", roles=["energy-provider"]
    )

    # §6.4's decision procedure, for the record: an always-on metering
    # platform weights global computation capacity highest -> S_Agg;
    # this example still runs ED_Hist to showcase the histogram pipeline.
    recommendation = recommend_protocol(SMART_METER_PRIORITIES)
    print(f"(§6.4 selector would recommend {recommendation.protocol} "
          f"for a metering platform)\n")

    # --- pre-protocol: discover the district distribution (ED_Hist) ----
    # In production this is refreshed rarely; it is itself a private
    # S_Agg count query (§4.4).  The discovery querier uses the company's
    # aggregate-only role.
    histogram = build_histogram(
        deployment, "Consumer", "district", num_buckets=2,
        roles=["energy-provider"],
    )
    print(f"discovered distribution -> {histogram.bucket_count()} equi-depth "
          f"buckets, collision factor h = {histogram.collision_factor():.1f}, "
          f"skew = {histogram.skew():.2f}")

    # --- the aggregate query, allowed ----------------------------------
    envelope = company.make_envelope(AGGREGATE_SQL)
    deployment.ssi.post_query(envelope)
    driver = EDHistProtocol(
        deployment.ssi,
        collectors=deployment.tds_list,
        workers=deployment.connected_tds(0.3),
        rng=random.Random(1),
        histogram=histogram,
    )
    driver.execute(envelope)
    rows = company.decrypt_result(deployment.ssi.fetch_result(envelope.query_id))
    rows.sort(key=lambda r: str(r))

    print(f"\n{AGGREGATE_SQL}\n")
    if rows:
        for row in rows:
            print(f"  avg detached-house consumption: {row['avg_cons']:.1f} kWh")
    reference = deployment.reference_answer(AGGREGATE_SQL)
    got = sorted(row["avg_cons"] for row in rows)
    want = sorted(row["avg_cons"] for row in reference)
    assert len(got) == len(want)
    assert all(abs(a - b) < 1e-9 * max(1.0, abs(b)) for a, b in zip(got, want))
    print(f"\n✓ {len(rows)} district(s) passed the HAVING threshold "
          f"(> {THRESHOLD} distinct respondents); result matches plaintext oracle")

    # --- the raw query, refused by every meter -------------------------
    raw_envelope = company.make_envelope(RAW_SQL)
    refused = 0
    for meter in deployment.tds_list[:10]:
        try:
            meter.open_query(raw_envelope)
        except AccessDeniedError:
            refused += 1
    print(f"✓ raw 'SELECT cons FROM Power' refused by {refused}/10 meters "
          f"(aggregate-only policy enforced inside the secure hardware)")

    # --- what the SSI learned -------------------------------------------
    tags = deployment.ssi.observer.tag_frequencies(envelope.query_id)
    counts = sorted(tags.values())
    print(f"✓ SSI saw {len(tags)} opaque bucket tags (counts {counts}); the "
          f"buckets are equi-depth w.r.t. the *population* distribution, so "
          f"individual district frequencies stay hidden behind h = "
          f"{histogram.collision_factor():.1f} colliding districts per tag")


if __name__ == "__main__":
    main()
