"""Threat-model extension (§8): detect a cheating TDS, revoke it, rotate k2.

The paper's trust story assumes tamper-resistant TDSs; its future work
asks what happens when "a small number of compromised TDSs" exist.  This
example runs the full remediation pipeline this library implements:

1. a compromised worker returns a *tampered* partial aggregation
   (dropping half its partition);
2. randomized spot-check verification recomputes the partition on an
   honest TDS and flags the cheater;
3. the key provider revokes the cheater and broadcasts a fresh k2 to the
   surviving devices — whatever the cheater exfiltrated no longer
   decrypts anything from the new epoch;
4. the leakage analyzer quantifies what the cheater saw before detection.

Run with:  python examples/compromise_remediation.py
"""

import random

from repro import Deployment, SAggProtocol, smart_meter_factory
from repro.core.messages import Partition
from repro.crypto.broadcast import (
    BroadcastKeyDistributor,
    DeviceKeyStore,
    receive_broadcast,
)
from repro.exceptions import CryptoError
from repro.exposure import analyze_trace_leakage, expected_leak_fraction
from repro.protocols import SpotChecker

SQL = "SELECT district, SUM(cons) AS s FROM Power P, Consumer C " \
      "WHERE C.cid = P.cid GROUP BY district"


def main() -> None:
    deployment = Deployment.build(
        20, smart_meter_factory(num_districts=3),
        tables=["Power", "Consumer"], seed=12,
    )
    querier = deployment.make_querier()
    envelope = querier.make_envelope(SQL)
    deployment.ssi.post_query(envelope)
    statement = deployment.tds_list[0].open_query(envelope)

    # --- 1. a compromised worker tampers with a partition ---------------
    tuples = []
    for tds in deployment.tds_list:
        tuples.extend(tds.collect_for_sagg(envelope))
    partition = Partition(0, tuple(tuples))
    cheater = deployment.tds_list[7]
    tampered = cheater.aggregate_partition(
        statement, Partition(0, partition.items[: len(partition.items) // 2])
    )
    print(f"worker {cheater.tds_id} returned a partial over only "
          f"{len(partition.items) // 2}/{len(partition.items)} tuples")

    # --- 2. spot-check verification flags it ----------------------------
    verifier = deployment.tds_list[2]
    checker = SpotChecker(verifier, audit_rate=1.0, rng=random.Random(0))
    verdict = checker.maybe_audit(statement, partition, tampered, cheater.tds_id)
    print(f"spot check by {verifier.tds_id}: "
          f"{'TAMPERING DETECTED' if verdict is False else 'ok'}; "
          f"flagged = {checker.flagged}")
    print(f"  (a worker tampering 30% of the time survives 10 audits with "
          f"probability {1 - checker.detection_probability(0.3, 10):.1%})")

    # --- 3. revoke + rotate via broadcast -------------------------------
    rng = random.Random(1)
    store = DeviceKeyStore(rng)
    for tds in deployment.tds_list:
        store.enroll(tds.tds_id)
    distributor = BroadcastKeyDistributor(store, rng)
    for flagged in checker.flagged:
        distributor.revoke(flagged)
    new_k2, broadcast = distributor.broadcast_new_key()
    received = 0
    locked_out = 0
    for tds in deployment.tds_list:
        try:
            key = receive_broadcast(tds.tds_id, store.device_key(tds.tds_id), broadcast)
            assert key == new_k2
            received += 1
        except CryptoError:
            locked_out += 1
    print(f"k2 rotated (epoch {broadcast.epoch}): {received} devices updated, "
          f"{locked_out} revoked device locked out of the new epoch")

    # --- 4. what did the cheater see before detection? ------------------
    driver = SAggProtocol(
        deployment.ssi, deployment.tds_list, deployment.tds_list,
        random.Random(3),
    )
    envelope2 = querier.make_envelope(SQL)
    deployment.ssi.post_query(envelope2)
    driver.execute(envelope2)
    workers = sorted({e.tds_id for e in driver.trace.events_in("aggregation", 0)})
    compromised_worker = workers[0]  # suppose the cheater landed in round 0
    report = analyze_trace_leakage(driver.trace, [compromised_worker])
    print(f"\nbefore detection, one compromised worker among {len(workers)} "
          f"decrypted {report.raw_fraction:.1%} of the covering result "
          f"(uniform-assignment expectation "
          f"{expected_leak_fraction(1, len(workers)):.1%})")
    print("after revocation its key material is dead weight.")


if __name__ == "__main__":
    main()
