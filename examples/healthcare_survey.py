"""Healthcare scenario (§2.3): PCEHRs in seldom-connected secure tokens.

Two-stage epidemic alert, exactly the paper's motivating example:

1. a privacy-preserving surveillance query counts flu cases per state
   (Group By, no individual ever identified);
2. if Tennessee crosses the threshold, an *identifying* query — allowed
   because the concerned individuals consented (role-based policy) —
   selects who should receive the alert (older than 80, in Memphis).

Tokens are rarely online, so the run is replayed on a simulated timeline
with a 5 % duty cycle: the answer is identical, only the latency grows —
"the challenge is not on the overall response time, but rather to show
that the query computation is tractable" (§2.3).

Run with:  python examples/healthcare_survey.py
"""

import random

from repro import Deployment, SAggProtocol, SelectWhereProtocol, pcehr_factory
from repro.simulation import duty_cycle, run_simulated
from repro.tds.access_control import AccessPolicy
from repro.workloads import ALERT_QUERY, FLU_SURVEILLANCE_QUERY

NUM_PATIENTS = 80
FLU_THRESHOLD = 5


def main() -> None:
    # Health-ministry policy: surveillance role may aggregate over any
    # column; the alert service may only read pid/age/city of consenting
    # patients (modelled as the alert role's column grant).
    policy = (
        AccessPolicy()
        .grant("surveillance", "Patient", aggregate_only=True)
        .grant("alert-service", "Patient", columns=["pid", "age", "city"])
    )
    deployment = Deployment.build(
        NUM_PATIENTS,
        pcehr_factory(elderly_fraction=0.3),
        tables=["Patient"],
        seed=4,
        policy=policy,
    )

    # ---- stage 1: anonymous surveillance (S_Agg) -----------------------
    ministry = deployment.make_querier(
        subject="health-ministry", roles=["surveillance"]
    )
    envelope = ministry.make_envelope(FLU_SURVEILLANCE_QUERY)
    deployment.ssi.post_query(envelope)
    SAggProtocol(
        deployment.ssi, deployment.tds_list, deployment.tds_list,
        random.Random(0),
    ).execute(envelope)
    counts = ministry.decrypt_result(
        deployment.ssi.fetch_result(envelope.query_id)
    )
    print(FLU_SURVEILLANCE_QUERY)
    tennessee_cases = 0
    for row in sorted(counts, key=lambda r: r["state"]):
        print(f"  {row['state']:>10}: {row['flu_cases']} flu cases")
        if row["state"] == "Tennessee":
            tennessee_cases = row["flu_cases"]

    # ---- stage 2: consent-based identifying alert ----------------------
    if tennessee_cases >= FLU_THRESHOLD:
        print(f"\nTennessee ≥ {FLU_THRESHOLD} cases -> issuing alert query")
        alert_service = deployment.make_querier(
            subject="alert-service", roles=["alert-service"]
        )
        alert_envelope = alert_service.make_envelope(ALERT_QUERY)
        deployment.ssi.post_query(alert_envelope)
        SelectWhereProtocol(
            deployment.ssi, deployment.tds_list, deployment.tds_list,
            random.Random(1),
        ).execute(alert_envelope)
        recipients = alert_service.decrypt_result(
            deployment.ssi.fetch_result(alert_envelope.query_id)
        )
        pids = sorted(r["pid"] for r in recipients)
        print(f"  alert recipients (consenting, >80, Memphis): {pids}")
    else:
        print(f"\nTennessee below threshold ({tennessee_cases} < {FLU_THRESHOLD}); "
              f"no identifying query issued")

    # ---- the same surveillance on seldom-connected tokens --------------
    deployment2 = Deployment.build(
        NUM_PATIENTS, pcehr_factory(elderly_fraction=0.3),
        tables=["Patient"], seed=4, policy=policy,
    )
    schedule = duty_cycle(
        [tds.tds_id for tds in deployment2.tds_list],
        random.Random(3),
        horizon=7 * 24 * 3600,  # a week
        duty=0.05,              # online 5% of the time (doctor visits)
        session_length=600,     # ten-minute sessions
    )
    run = run_simulated(
        deployment2, SAggProtocol, FLU_SURVEILLANCE_QUERY,
        schedule=schedule, seed=0, roles=["surveillance"],
    )
    assert sorted(map(str, run.rows)) == sorted(map(str, counts))
    print(f"\nWith tokens online 5% of the time (simulated):")
    print(f"  collection phase : {run.report.collection_duration / 3600:8.2f} h")
    print(f"  aggregation (TQ) : {run.report.t_q / 3600:8.2f} h")
    print(f"  mean TDS busy    : {run.report.t_local_mean():8.4f} s")
    print("  -> identical answer; latency, not tractability, is the cost")


if __name__ == "__main__":
    main()
