"""Quickstart: a private GROUP BY over 30 Trusted Data Servers.

Builds a small smart-meter population, runs the paper's most secure
protocol (S_Agg) end-to-end — real encryption, untrusted SSI in the
middle — and shows that the querier gets the right answer while the SSI
saw nothing but ciphertext.

Run with:  python examples/quickstart.py
"""

import random

from repro import Deployment, SAggProtocol, smart_meter_factory

NUM_TDS = 30
SQL = "SELECT district, AVG(cons) AS avg_cons, COUNT(*) AS meters " \
      "FROM Power P, Consumer C WHERE C.cid = P.cid GROUP BY district"


def main() -> None:
    # 1. Provision a population: 30 secure tokens, one household each.
    deployment = Deployment.build(
        NUM_TDS,
        smart_meter_factory(num_districts=4),
        tables=["Power", "Consumer"],
        seed=2024,
    )

    # 2. The querier holds k1 only; its credential is signed by the
    #    authority; the SSI holds no keys at all.
    querier = deployment.make_querier(subject="energy-provider")

    # 3. Post the encrypted query to the SSI's global querybox.
    envelope = querier.make_envelope(SQL)
    deployment.ssi.post_query(envelope)

    # 4. Run S_Agg: collection -> iterative aggregation -> filtering.
    driver = SAggProtocol(
        deployment.ssi,
        collectors=deployment.tds_list,
        workers=deployment.connected_tds(0.5),  # 50% of TDSs online
        rng=random.Random(7),
    )
    driver.execute(envelope)

    # 5. Download and decrypt the result.
    rows = querier.decrypt_result(deployment.ssi.fetch_result(envelope.query_id))
    rows.sort(key=lambda r: r["district"])

    print(f"Query: {SQL}\n")
    print(f"{'district':>14} | {'avg cons (kWh)':>14} | {'meters':>6}")
    print("-" * 42)
    for row in rows:
        print(f"{row['district']:>14} | {row['avg_cons']:>14.1f} | {row['meters']:>6}")

    # 6. Verify against the plaintext ground truth (test-only oracle).
    #    AVG is merged as (sum, count) partials; summation order differs
    #    from the centralized run, so compare floats with a tolerance.
    reference = sorted(
        deployment.reference_answer(SQL), key=lambda r: r["district"]
    )
    for got, want in zip(rows, reference):
        assert got["district"] == want["district"]
        assert got["meters"] == want["meters"]
        assert abs(got["avg_cons"] - want["avg_cons"]) < 1e-9 * want["avg_cons"]
    print("\n✓ matches the plaintext reference answer")

    # 7. What did the untrusted SSI actually see?
    observer = deployment.ssi.observer
    tags = observer.tag_frequencies(envelope.query_id)
    sizes = observer.payload_size_frequencies(envelope.query_id)
    print(f"✓ SSI observed {observer.distinct_payloads_seen(envelope.query_id)} "
          f"opaque payloads, {len(tags)} grouping tags (S_Agg: zero), "
          f"{len(sizes)} payload size class(es)")
    print(f"✓ {driver.stats.aggregation_rounds} aggregation rounds, "
          f"{len(driver.stats.participants)} TDSs participated")


if __name__ == "__main__":
    main()
