"""Scrape a repro SSI /metrics endpoint and assert it is healthy.

CI gate for the observability surface: after the three-process
serve-demo has run real queries, the Prometheus endpoint must expose
every required metric family (``# TYPE`` lines render even for
families with no samples yet, so absence means the instrument was
never declared — i.e. someone broke the wiring) and the request
counter must show actual traffic.

Usage::

    python tools/check_metrics_endpoint.py --port 9464 [--host 127.0.0.1]
        [--require family ...] [--min-requests N]

Exit status 0 iff every check passes.  Stdlib only.
"""

from __future__ import annotations

import argparse
import re
import sys
import urllib.error
import urllib.request

#: Families the serve path must always declare, traffic or not.
REQUIRED_FAMILIES = (
    "repro_ssi_requests_total",
    "repro_ssi_request_seconds",
    "repro_ssi_backpressure_total",
    "repro_ssi_replays_total",
    "server_internal_errors_total",
    "repro_ssi_connections_open",
    "repro_ssi_frames_total",
    "repro_ssi_bytes_total",
    # health monitor (PR 10): declared by repro.obs.health at serve time
    "repro_health_status",
    "repro_eventloop_lag_seconds",
    "repro_obs_spans_dropped_total",
)


def scrape(host: str, port: int, timeout: float) -> str:
    url = f"http://{host}:{port}/metrics"
    with urllib.request.urlopen(url, timeout=timeout) as response:
        content_type = response.headers.get("Content-Type", "")
        if not content_type.startswith("text/plain"):
            raise SystemExit(f"FAIL: unexpected content type {content_type!r}")
        return response.read().decode("utf-8")


def check_healthz(host: str, port: int, timeout: float) -> list[str]:
    """Scrape /healthz and assert it serves a well-formed JSON verdict."""
    import json

    url = f"http://{host}:{port}/healthz"
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            body = response.read().decode("utf-8")
            status_code = response.status
    except urllib.error.HTTPError as exc:  # 503 = degraded, still JSON
        body = exc.read().decode("utf-8")
        status_code = exc.code
    except (urllib.error.URLError, OSError) as exc:
        return [f"cannot scrape {url}: {exc}"]
    try:
        verdict = json.loads(body)
    except ValueError:
        return [f"/healthz body is not JSON (monitor not wired?): {body[:80]!r}"]
    failures = []
    if verdict.get("status") not in ("ok", "degraded", "critical"):
        failures.append(f"/healthz has invalid status {verdict.get('status')!r}")
    if not isinstance(verdict.get("reasons"), list):
        failures.append("/healthz verdict lacks a reasons list")
    expect_503 = verdict.get("status") != "ok"
    if expect_503 != (status_code == 503):
        failures.append(
            f"/healthz status code {status_code} inconsistent with "
            f"verdict {verdict.get('status')!r}"
        )
    if not failures:
        print(f"ok: /healthz verdict {verdict.get('status')!r} "
              f"(reasons={verdict.get('reasons')})")
    return failures


def check(text: str, required: tuple[str, ...], min_requests: int) -> list[str]:
    failures = []
    for family in required:
        if f"# TYPE {family} " not in text:
            failures.append(f"missing metric family {family}")
    total = 0.0
    for line in text.splitlines():
        match = re.match(r'repro_ssi_requests_total\{[^}]*\} ([0-9.e+-]+)$', line)
        if match:
            total += float(match.group(1))
    if total < min_requests:
        failures.append(
            f"repro_ssi_requests_total sums to {total:g}, "
            f"expected >= {min_requests} after the demo queries"
        )
    return failures


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--timeout", type=float, default=5.0)
    parser.add_argument(
        "--require",
        nargs="*",
        default=list(REQUIRED_FAMILIES),
        help="metric families that must be present",
    )
    parser.add_argument(
        "--min-requests",
        type=int,
        default=1,
        help="minimum total across repro_ssi_requests_total series",
    )
    parser.add_argument(
        "--check-healthz",
        action="store_true",
        help="also scrape /healthz and assert a well-formed JSON verdict",
    )
    args = parser.parse_args(argv)
    try:
        text = scrape(args.host, args.port, args.timeout)
    except (urllib.error.URLError, OSError) as exc:
        print(f"FAIL: cannot scrape {args.host}:{args.port}/metrics: {exc}")
        return 1
    failures = check(text, tuple(args.require), args.min_requests)
    if args.check_healthz:
        failures.extend(check_healthz(args.host, args.port, args.timeout))
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    families = len(re.findall(r"(?m)^# TYPE ", text))
    print(
        f"ok: {args.host}:{args.port}/metrics exposes {families} families, "
        f"all {len(args.require)} required ones present"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
