"""Perf-regression gate: diff BENCH_*.json candidates against baselines.

Every benchmark in this repo publishes a ``BENCH_<name>.json`` at the
repo root — a nested dict of named scalars (seconds, rows/s, speedups)
plus an ``environment`` section.  This tool makes those files act as a
*gate* instead of a diary: run the benchmark at HEAD, then

    python tools/bench_check.py --baseline BENCH_net.json \\
        --candidate /tmp/BENCH_net.json --tolerance 0.25

fails (exit 1) when any metric regressed beyond the tolerance band.

Mechanics:

* **flattening** — numeric leaves become dotted paths
  (``after.tuples_per_s_tcp``); the ``environment`` / ``notes`` /
  ``description`` / ``methodology`` subtrees are informational and
  skipped.
* **direction** — inferred from the leaf name: throughput-ish names
  (``per_s``, ``speedup``, ``mb_s``, ``rps``, ``throughput``) must not
  drop; latency-ish names (``_s``, ``seconds``, ``p50/p95/p99``,
  ``wall``, ``elapsed``) must not rise; shape/config names (``batch``,
  ``window``, ``cpu_count``, counts) are informational and never gate.
  A name matching neither vocabulary is compared both ways and only
  *warned* about, never failed — an unknown metric must not brick CI.
* **machine-class awareness** — when the candidate's
  ``environment.cpu_count`` differs from the baseline's, every failure
  downgrades to a warning unless ``--strict``: the committed baselines
  come from 1-core CI boxes (see the PR 8/9 caveats in the files), and
  cross-class comparisons are noise.
* **noise floor** — values below ``--min-value`` (default 1 ms /
  1 unit-per-s) are skipped; a 0.2 ms phase doubling is measurement
  jitter, not a regression.

``--smoke`` (the CI entry) self-checks every committed ``BENCH_*.json``
against itself — exercising the full parse/flatten/compare path and
guaranteeing a later format change can't silently disable the gate.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import Dict, Iterator, List, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SKIP_SUBTREES = ("environment", "notes", "description", "methodology")

HIGHER_IS_BETTER = (
    "per_s", "_rps", "rps_", "speedup", "throughput", "mb_s", "per_second",
    "hits",
)
LOWER_IS_BETTER = (
    "_s", "seconds", "p50", "p95", "p99", "wall", "elapsed", "latency",
    "overhead", "misses",
)
INFORMATIONAL = (
    "cpu_count", "batch", "window", "shards", "concurrency", "num_tds",
    "queries", "count", "bytes", "size", "repeats", "buckets", "alpha",
)


def flatten(tree: object, prefix: str = "") -> Iterator[Tuple[str, float]]:
    if isinstance(tree, dict):
        for key in sorted(tree):
            name = str(key)
            if not prefix and name in SKIP_SUBTREES:
                continue
            yield from flatten(tree[key], f"{prefix}{name}.")
    elif isinstance(tree, list):
        for index, item in enumerate(tree):
            yield from flatten(item, f"{prefix}{index}.")
    elif isinstance(tree, bool):
        return
    elif isinstance(tree, (int, float)):
        yield prefix.rstrip("."), float(tree)
    # strings (statuses like "skipped_single_core") are not metrics


def _matches(path: str, vocabulary: Tuple[str, ...]) -> bool:
    """Match a vocabulary token against the leaf name.

    A token with a leading underscore (``_s``, ``_rps``) must end the
    leaf — plain containment would drag ``batch_size`` into the latency
    vocabulary via ``_s``.  A trailing underscore (``rps_``) anchors the
    start; anything else matches anywhere (``per_s`` inside
    ``tuples_per_s_tcp``).
    """
    leaf = path.rsplit(".", 1)[-1]
    for token in vocabulary:
        if token.startswith("_") and leaf.endswith(token):
            return True
        if token.endswith("_") and leaf.startswith(token):
            return True
        if not token.startswith("_") and not token.endswith("_") and token in leaf:
            return True
    return False


def classify(path: str) -> str:
    """'higher' | 'lower' | 'info' | 'unknown' for a dotted metric path.

    Direction vocabularies win over the informational one so that e.g.
    ``queries_per_s`` gates (throughput) while a bare ``queries`` count
    stays informational.
    """
    if _matches(path, HIGHER_IS_BETTER):
        return "higher"
    if _matches(path, LOWER_IS_BETTER):
        return "lower"
    if _matches(path, INFORMATIONAL):
        return "info"
    return "unknown"


def compare(
    baseline: Dict[str, object],
    candidate: Dict[str, object],
    tolerance: float,
    min_value: float,
) -> Tuple[List[str], List[str]]:
    """Returns (failures, warnings) as human-readable lines."""
    base = dict(flatten(baseline))
    cand = dict(flatten(candidate))
    failures: List[str] = []
    warnings: List[str] = []

    for path in sorted(base.keys() & cand.keys()):
        direction = classify(path)
        if direction == "info":
            continue
        b, c = base[path], cand[path]
        if abs(b) < min_value and abs(c) < min_value:
            continue
        worse_low = c < b * (1.0 - tolerance)  # bad if higher-is-better
        worse_high = c > b * (1.0 + tolerance)  # bad if lower-is-better
        if direction == "higher" and worse_low:
            failures.append(
                f"{path}: {c:g} fell below baseline {b:g} "
                f"(-{100 * (1 - c / b):.1f}%, tolerance {100 * tolerance:.0f}%)"
            )
        elif direction == "lower" and worse_high:
            failures.append(
                f"{path}: {c:g} rose above baseline {b:g} "
                f"(+{100 * (c / b - 1):.1f}%, tolerance {100 * tolerance:.0f}%)"
            )
        elif direction == "unknown" and (worse_low or worse_high):
            warnings.append(
                f"{path}: moved {b:g} -> {c:g} (direction unknown, not gated)"
            )

    for path in sorted(base.keys() - cand.keys()):
        if classify(path) != "info":
            warnings.append(f"{path}: present in baseline, missing in candidate")
    return failures, warnings


def machine_class_differs(
    baseline: Dict[str, object], candidate: Dict[str, object]
) -> bool:
    def _cpus(tree: Dict[str, object]) -> object:
        env = tree.get("environment")
        return env.get("cpu_count") if isinstance(env, dict) else None

    b, c = _cpus(baseline), _cpus(candidate)
    return b is not None and c is not None and b != c


def check_pair(
    baseline_path: str,
    candidate_path: str,
    tolerance: float,
    min_value: float,
    strict: bool,
) -> int:
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    with open(candidate_path) as fh:
        candidate = json.load(fh)
    failures, warnings = compare(baseline, candidate, tolerance, min_value)
    cross_class = machine_class_differs(baseline, candidate)
    if cross_class and not strict:
        warnings = [f"(cross-machine-class, downgraded) {f}" for f in failures] + warnings
        failures = []
    label = os.path.basename(baseline_path)
    for line in warnings:
        print(f"WARN  {label}: {line}")
    for line in failures:
        print(f"FAIL  {label}: {line}")
    if failures:
        return 1
    gated = "cross-class: warnings only" if cross_class and not strict else (
        f"tolerance {100 * tolerance:.0f}%"
    )
    print(f"ok    {label}: no regression vs {os.path.basename(candidate_path)} "
          f"({gated})")
    return 0


def smoke(tolerance: float, min_value: float) -> int:
    """Self-check every committed baseline against itself."""
    paths = sorted(glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json")))
    if not paths:
        print("FAIL  --smoke found no BENCH_*.json at the repo root")
        return 1
    status = 0
    for path in paths:
        status |= check_pair(path, path, tolerance, min_value, strict=True)
        with open(path) as fh:
            metrics = [
                p for p, _ in flatten(json.load(fh)) if classify(p) != "info"
            ]
        if not metrics:
            print(f"FAIL  {os.path.basename(path)}: no gated metrics found "
                  "(format change disabled the gate?)")
            status = 1
    return status


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        description="diff BENCH_*.json results against committed baselines"
    )
    parser.add_argument("--baseline", help="committed baseline JSON")
    parser.add_argument("--candidate", help="freshly measured JSON")
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed relative regression before failing (default 0.25)",
    )
    parser.add_argument(
        "--min-value", type=float, default=0.001,
        help="ignore metrics where both sides are below this magnitude",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="gate even when environment.cpu_count differs",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="self-check every committed BENCH_*.json against itself",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke(args.tolerance, args.min_value)
    if not args.baseline or not args.candidate:
        parser.error("--baseline and --candidate are required (or --smoke)")
    return check_pair(
        args.baseline, args.candidate, args.tolerance, args.min_value, args.strict
    )


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
