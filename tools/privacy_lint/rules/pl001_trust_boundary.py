"""PL001 — trust-boundary imports.

The SSI is "powerful, highly available but untrusted" (§2.1): it stores
and routes ciphertext, evaluates the cleartext SIZE clause, and nothing
more.  An ``ssi``-role module importing TDS internals, master-key APIs or
the plaintext tuple codec would let SSI-side code *name* secrets, which is
one refactor away from holding them.  The manifest lists the forbidden
module prefixes / names together with the reason each is off-limits.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from tools.privacy_lint.diagnostics import Finding
from tools.privacy_lint.rules.context import ModuleContext


class TrustBoundaryImports:
    code = "PL001"
    name = "trust-boundary-imports"
    rationale = "SSI-role modules must not import TDS/key/plaintext APIs (§2.1, §3.1)"

    def __init__(self, context: ModuleContext) -> None:
        self.context = context

    def run(self) -> Iterator[Finding]:
        if self.context.role != "ssi":
            return
        manifest = self.context.manifest
        for node in ast.walk(self.context.tree):  # type: ignore[arg-type]
            if isinstance(node, ast.Import):
                for alias in node.names:
                    yield from self._check_module(node, alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports stay inside the package
                yield from self._check_module(node, node.module)
                for alias in node.names:
                    # "from repro import tds" names the package too.
                    yield from self._check_module(
                        node, f"{node.module}.{alias.name}"
                    )
                    reason = manifest.forbidden_names.get(
                        (node.module, alias.name)
                    )
                    if reason is not None:
                        yield self._finding(
                            node,
                            f"ssi-role module imports {node.module}.{alias.name}"
                            f" — {reason}",
                        )

    def _check_module(self, node: ast.stmt, module: str) -> Iterator[Finding]:
        for prefix, reason in self.context.manifest.forbidden_modules.items():
            if module == prefix or module.startswith(prefix + "."):
                yield self._finding(
                    node,
                    f"ssi-role module imports {module} — {reason}",
                )
                return

    def _finding(self, node: ast.stmt, message: str) -> Finding:
        return Finding(
            path=self.context.path,
            line=node.lineno,
            col=node.col_offset + 1,
            rule=self.code,
            message=message,
            source_line=self.context.line_text(node.lineno),
        )
