"""PL006 — observability sinks receive only allowlisted scalar fields.

The obs layer (``repro.obs``) may record exactly what the paper's SSI
observer model already concedes to an honest-but-curious host: sizes,
tags, counts and timings — never tuple payloads, key material or any
other ciphertext/plaintext object.  ``sanitize_fields`` enforces this at
runtime by redacting bytes-ish values; this rule enforces it statically
at every sink *call site* so a leak is caught in review, not in the log.

Mechanics: any call to a manifest-listed obs sink (``log_event`` by
default) is checked, in every module:

* the event name must be a string literal — events are a closed,
  greppable vocabulary, never data;
* ``**kwargs`` splats are rejected — the field set must be visible at
  the call site;
* every field keyword must come from the manifest allowlist
  (``level``/``exc_info`` are the sink's own structural parameters);
* a field's value expression may not mention an identifier whose name
  contains a forbidden substring (``payload``, ``key``, ``tuple``, ...)
  unless it appears inside ``len(...)`` — lengths of sensitive objects
  are exactly the size channel the SSI already observes.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from tools.privacy_lint.diagnostics import Finding
from tools.privacy_lint.rules.context import ModuleContext, terminal_name

#: keyword parameters of the sink itself, not log fields
_STRUCTURAL_KWARGS = {"level", "exc_info"}


def _names_outside_len(node: ast.AST) -> Iterator[str]:
    """Every identifier mentioned in *node*, skipping ``len(...)`` subtrees."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "len"
    ):
        return
    if isinstance(node, ast.Name):
        yield node.id
    elif isinstance(node, ast.Attribute):
        yield node.attr
    for child in ast.iter_child_nodes(node):
        yield from _names_outside_len(child)


class ObsRedaction:
    code = "PL006"
    name = "obs-redaction"
    rationale = "obs sinks may carry only allowlisted scalar fields (§2.1 observer model)"

    def __init__(self, context: ModuleContext) -> None:
        self.context = context

    def run(self) -> Iterator[Finding]:
        sinks = self.context.manifest.obs_sinks
        if not sinks:
            return
        allowed = self.context.manifest.obs_allowed_fields
        forbidden = self.context.manifest.obs_forbidden_value_names
        for node in ast.walk(self.context.tree):
            if not isinstance(node, ast.Call):
                continue
            if terminal_name(node.func) not in sinks:
                continue
            yield from self._check_call(node, allowed, forbidden)

    def _check_call(
        self, call: ast.Call, allowed: set[str], forbidden: set[str]
    ) -> Iterator[Finding]:
        sink = terminal_name(call.func)
        if len(call.args) >= 2 and not (
            isinstance(call.args[1], ast.Constant)
            and isinstance(call.args[1].value, str)
        ):
            yield self._finding(
                call,
                f"{sink}() event name must be a string literal, not an "
                "expression — events are a closed vocabulary, never data",
            )
        for keyword in call.keywords:
            if keyword.arg is None:
                yield self._finding(
                    call,
                    f"{sink}(**kwargs) hides the field set from review — "
                    "spell every field out at the call site",
                )
                continue
            if keyword.arg in _STRUCTURAL_KWARGS:
                continue
            if keyword.arg not in allowed:
                yield self._finding(
                    call,
                    f"field {keyword.arg!r} is not in the obs field "
                    "allowlist ([pl006] allowed_fields in manifest.cfg) — "
                    "obs records sizes/tags/counts/timings only",
                )
            for ident in _names_outside_len(keyword.value):
                lowered = ident.lower()
                hits = sorted(sub for sub in forbidden if sub in lowered)
                if hits:
                    yield self._finding(
                        call,
                        f"field {keyword.arg!r} is computed from {ident!r} "
                        f"(matches forbidden name(s): {', '.join(hits)}) — "
                        "only len(...) of such objects may reach an obs sink",
                    )

    def _finding(self, call: ast.Call, message: str) -> Finding:
        return Finding(
            path=self.context.path,
            line=call.lineno,
            col=call.col_offset + 1,
            rule=self.code,
            message=message,
            source_line=self.context.line_text(call.lineno),
        )
