"""PL004 — the LoadQ accounting choke point.

LoadQ counts *every* byte a TDS downloads or uploads (EXPERIMENTS.md), and
the repo keeps the invariant ``stats.bytes_processed == trace.total_bytes``
by forcing all charging through ``ProtocolDriver.account()``.  PR 1 fixed
three transfer sites that silently bypassed it; this rule makes the bug
class impossible to reintroduce.

Mechanics: within ``protocol``-role modules, any function whose body
(nested handlers included) calls a *transfer* endpoint — the SSI methods
that move covering-result/partial/result bytes — must also call an
*accounting* method (``account`` itself or the helpers that wrap it:
``record_collection``, ``run_collection``, ``run_partitions``).  Both sets
come from the manifest.  Transfer calls at module scope are always
flagged: there is no enclosing function to account for them.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from tools.privacy_lint.diagnostics import Finding
from tools.privacy_lint.rules.context import ModuleContext, terminal_name

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


class AccountingChokePoint:
    code = "PL004"
    name = "accounting-choke-point"
    rationale = "every TDS transfer must be charged to LoadQ via account()"

    def __init__(self, context: ModuleContext) -> None:
        self.context = context

    def run(self) -> Iterator[Finding]:
        if self.context.role != "protocol":
            return
        transfer = self.context.manifest.transfer_methods
        account = self.context.manifest.account_methods
        if not transfer:
            return
        # Outermost functions own their nested handlers: a transfer inside
        # a closure handed to run_partitions() is charged by the caller.
        tree = self.context.tree
        module_body = getattr(tree, "body", [])
        outer_functions: list[ast.AST] = []
        module_level: list[ast.stmt] = []
        for stmt in module_body:
            if isinstance(stmt, _FUNCTION_NODES):
                outer_functions.append(stmt)
            elif isinstance(stmt, ast.ClassDef):
                for item in stmt.body:
                    if isinstance(item, _FUNCTION_NODES):
                        outer_functions.append(item)
                    else:
                        module_level.append(item)
            else:
                module_level.append(stmt)

        for function in outer_functions:
            transfers: list[ast.Call] = []
            accounts = False
            for node in ast.walk(function):
                if isinstance(node, ast.Call):
                    name = terminal_name(node.func)
                    if name in transfer and isinstance(node.func, ast.Attribute):
                        transfers.append(node)
                    elif name in account:
                        accounts = True
            if transfers and not accounts:
                for call in transfers:
                    yield self._finding(call, f"in {function.name}()")

        for stmt in module_level:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    name = terminal_name(node.func)
                    if name in transfer and isinstance(node.func, ast.Attribute):
                        yield self._finding(node, "at module scope")

    def _finding(self, call: ast.Call, where: str) -> Finding:
        name = terminal_name(call.func)
        return Finding(
            path=self.context.path,
            line=call.lineno,
            col=call.col_offset + 1,
            rule=self.code,
            message=(
                f"transfer call {name}() {where} bypasses the LoadQ choke "
                "point — charge it via ProtocolDriver.account() (or the "
                "record_collection/run_collection/run_partitions helpers) so "
                "stats.bytes_processed == trace.total_bytes() holds"
            ),
            source_line=self.context.line_text(call.lineno),
        )
