"""PL003 — deterministic-encryption allowlist.

``Det_Enc`` leaks ciphertext equality by design: the paper licenses that
leak *only* for grouping attributes — the ``Det_Enc(AG)`` tags of the
noise-based protocols, whose frequency distribution the injected fake
tuples then hide (§4.3), and ED_Hist's keyed bucket tags (§4.4).  A
``Det_Enc`` call anywhere else (say, on tuple payloads in S_Agg, which the
paper ranks most confidential precisely because it is all-nDet, Fig. 8)
silently downgrades security without breaking any test.

The manifest's ``[pl003] allowed`` patterns name the files where acquiring
a deterministic cipher is legitimate; everywhere else both the import of
``repro.crypto.det`` and calls to ``DeterministicCipher`` / ``det_cipher``
are flagged.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from tools.privacy_lint.diagnostics import Finding
from tools.privacy_lint.rules.context import ModuleContext, terminal_name


class DetEncAllowlist:
    code = "PL003"
    name = "det-enc-allowlist"
    rationale = "Det_Enc only on grouping attributes (§4.3, §4.4)"

    def __init__(self, context: ModuleContext) -> None:
        self.context = context

    def run(self) -> Iterator[Finding]:
        if self.context.manifest.det_enc_allows(self.context.path):
            return
        modules = self.context.manifest.det_enc_modules
        callables = self.context.manifest.det_enc_callables
        for node in ast.walk(self.context.tree):  # type: ignore[arg-type]
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in modules:
                        yield self._finding(
                            node, f"imports {alias.name} (Det_Enc implementation)"
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module in modules:
                    yield self._finding(
                        node, f"imports from {node.module} (Det_Enc implementation)"
                    )
            elif isinstance(node, ast.Call):
                name = terminal_name(node.func)
                if name in callables:
                    yield self._finding(node, f"acquires a Det_Enc cipher via {name}()")

    def _finding(self, node: ast.stmt | ast.expr, message: str) -> Finding:
        return Finding(
            path=self.context.path,
            line=node.lineno,
            col=node.col_offset + 1,
            rule=self.code,
            message=(
                f"{message} outside the grouping-attribute allowlist — "
                "deterministic encryption reveals ciphertext equality, which "
                "the paper permits only for noise-based/ED_Hist group tags "
                "(§4.3, §4.4)"
            ),
            source_line=self.context.line_text(node.lineno),
        )
