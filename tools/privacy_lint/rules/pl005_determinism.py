"""PL005 — simulation determinism.

The discrete-event simulator replays execution traces on a *logical*
clock; reproducibility of every figure (and the replay equivalence tests)
requires that no wall-clock time or process-global randomness sneaks in.
Within ``simulation``-role modules this rule flags:

* wall-clock reads — ``time.time() / time_ns / monotonic / perf_counter /
  localtime / gmtime / ctime`` and ``datetime.now / utcnow / today``;
* the process-global RNG — any ``random.<func>()`` module-level call
  (``random.random``, ``random.randint``, ``random.shuffle``, ...), which
  shares unseeded state across the whole process;
* unseeded generators — ``random.Random()`` with no arguments (seeds from
  the OS).

Seeded ``random.Random(seed)`` instances threaded through as ``rng``
parameters are the sanctioned source of randomness.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from tools.privacy_lint.diagnostics import Finding
from tools.privacy_lint.rules.context import ModuleContext, dotted_path

_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: module-level functions of the global RNG (shared, unseeded state)
_GLOBAL_RANDOM = {
    "random",
    "randint",
    "randrange",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "gauss",
    "normalvariate",
    "expovariate",
    "betavariate",
    "getrandbits",
    "randbytes",
    "seed",
}


class SimulationDeterminism:
    code = "PL005"
    name = "simulation-determinism"
    rationale = "the simulator runs on a logical clock with seeded RNGs only"

    def __init__(self, context: ModuleContext) -> None:
        self.context = context

    def run(self) -> Iterator[Finding]:
        if self.context.role != "simulation":
            return
        for node in ast.walk(self.context.tree):  # type: ignore[arg-type]
            if not isinstance(node, ast.Call):
                continue
            path = dotted_path(node.func)
            if path is None:
                continue
            if path in _WALL_CLOCK:
                yield self._finding(
                    node,
                    f"wall-clock read {path}() — use the logical clock "
                    "(collection_interval / trace timestamps) instead",
                )
            elif path == "random.Random" and not node.args and not node.keywords:
                yield self._finding(
                    node,
                    "unseeded random.Random() — construct with an explicit "
                    "seed and thread it through as an rng parameter",
                )
            elif path.startswith("random.") and path.split(".", 1)[1] in _GLOBAL_RANDOM:
                yield self._finding(
                    node,
                    f"process-global RNG call {path}() — use a seeded "
                    "random.Random instance passed in as rng",
                )

    def _finding(self, call: ast.Call, message: str) -> Finding:
        return Finding(
            path=self.context.path,
            line=call.lineno,
            col=call.col_offset + 1,
            rule=self.code,
            message=message + " (simulation runs must replay bit-identically)",
            source_line=self.context.line_text(call.lineno),
        )
