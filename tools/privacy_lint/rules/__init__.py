"""Rule registry: one module per PL rule, discovered statically.

Each syntactic rule is a class with ``code`` (``PL00X``), ``name``, a
one-line ``rationale`` citing the paper invariant it protects, and
``run()`` yielding :class:`~tools.privacy_lint.diagnostics.Finding`.

Rules with ``requires_program = True`` (PL007/PL008) are constructed with
a :class:`~tools.privacy_lint.rules.context.ProgramContext` — the linked
whole-program IR — instead of a per-module context, and run once per lint
invocation rather than once per file.
"""

from __future__ import annotations

from tools.privacy_lint.rules.context import ModuleContext, ProgramContext
from tools.privacy_lint.rules.pl001_trust_boundary import TrustBoundaryImports
from tools.privacy_lint.rules.pl002_plaintext_egress import PlaintextEgress
from tools.privacy_lint.rules.pl003_det_enc_allowlist import DetEncAllowlist
from tools.privacy_lint.rules.pl004_accounting import AccountingChokePoint
from tools.privacy_lint.rules.pl005_determinism import SimulationDeterminism
from tools.privacy_lint.rules.pl006_obs_redaction import ObsRedaction
from tools.privacy_lint.rules.pl007_taint import PlaintextTaint
from tools.privacy_lint.rules.pl008_async import AsyncConcurrency

#: per-file syntactic rules
ALL_RULES = (
    TrustBoundaryImports,
    PlaintextEgress,
    DetEncAllowlist,
    AccountingChokePoint,
    SimulationDeterminism,
    ObsRedaction,
)

#: whole-program rules (need the linked IR, run once per invocation)
PROGRAM_RULES = (
    PlaintextTaint,
    AsyncConcurrency,
)

RULES_BY_CODE = {rule.code: rule for rule in ALL_RULES + PROGRAM_RULES}

__all__ = [
    "ALL_RULES",
    "PROGRAM_RULES",
    "RULES_BY_CODE",
    "ModuleContext",
    "ProgramContext",
    "TrustBoundaryImports",
    "PlaintextEgress",
    "DetEncAllowlist",
    "AccountingChokePoint",
    "SimulationDeterminism",
    "ObsRedaction",
    "PlaintextTaint",
    "AsyncConcurrency",
]
