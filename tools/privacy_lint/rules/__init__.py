"""Rule registry: one module per PL rule, discovered statically.

Each rule is a class with ``code`` (``PL00X``), ``name``, a one-line
``rationale`` citing the paper invariant it protects, and
``run(context)`` yielding :class:`~tools.privacy_lint.diagnostics.Finding`.
"""

from __future__ import annotations

from tools.privacy_lint.rules.context import ModuleContext
from tools.privacy_lint.rules.pl001_trust_boundary import TrustBoundaryImports
from tools.privacy_lint.rules.pl002_plaintext_egress import PlaintextEgress
from tools.privacy_lint.rules.pl003_det_enc_allowlist import DetEncAllowlist
from tools.privacy_lint.rules.pl004_accounting import AccountingChokePoint
from tools.privacy_lint.rules.pl005_determinism import SimulationDeterminism
from tools.privacy_lint.rules.pl006_obs_redaction import ObsRedaction

ALL_RULES = (
    TrustBoundaryImports,
    PlaintextEgress,
    DetEncAllowlist,
    AccountingChokePoint,
    SimulationDeterminism,
    ObsRedaction,
)

RULES_BY_CODE = {rule.code: rule for rule in ALL_RULES}

__all__ = [
    "ALL_RULES",
    "RULES_BY_CODE",
    "ModuleContext",
    "TrustBoundaryImports",
    "PlaintextEgress",
    "DetEncAllowlist",
    "AccountingChokePoint",
    "SimulationDeterminism",
    "ObsRedaction",
]
