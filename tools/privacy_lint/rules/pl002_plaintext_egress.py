"""PL002 — plaintext egress into SSI-bound containers.

Every byte the SSI stores must be ciphertext or paper-sanctioned cleartext
(§3.2: the SIZE clause; signed credentials).  This rule taints the
arguments of SSI-bound sinks — the ``EncryptedTuple`` / ``EncryptedPartial``
constructors and the ``submit_* / store_result_rows`` transfer methods —
and flags *syntactic* evidence of plaintext flowing in:

* producer calls: ``encode`` / ``encode_tuple_frame`` / ``encode_partial_frame``
  / ``decode`` / ``decrypt`` / ``decrypt_many`` / ``to_portable`` — all yield
  cleartext bytes or structures;
* the plaintext constructor ``TupleContent(...)``;
* identifiers whose name admits plaintext (``*plain*``, ``*cleartext*``,
  ``*decrypted*``, ``*decoded*``);
* string/bytes literals (a constant payload is by definition not
  ciphertext under a fresh key).

Subtrees inside sanitizer calls (``encrypt*``, ``hash_bucket``) are
pruned first, so ``encrypt_many(tag_plaintexts)`` is fine while a bare
``tag_plaintexts`` is not.  This is a lexical approximation of taint
tracking — cheap, deterministic, and in practice what a reviewer greps
for.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from tools.privacy_lint.diagnostics import Finding
from tools.privacy_lint.rules.context import ModuleContext, terminal_name

_SINK_CONSTRUCTORS = {"EncryptedTuple", "EncryptedPartial"}
_SINK_METHODS = {"submit_tuples", "submit_partials", "store_result_rows"}

_PLAINTEXT_PRODUCERS = {
    "encode",
    "encode_tuple_frame",
    "encode_partial_frame",
    "decode",
    "decrypt",
    "decrypt_many",
    "to_portable",
}
_PLAINTEXT_CONSTRUCTORS = {"TupleContent"}
_PLAINTEXT_NAME_MARKERS = ("plain", "cleartext", "decrypted", "decoded")
_SANITIZER_PREFIXES = ("encrypt",)
_SANITIZERS = {"hash_bucket"}


def _is_sanitizer(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = terminal_name(node.func)
    if name is None:
        return False
    return name.startswith(_SANITIZER_PREFIXES) or name in _SANITIZERS


def _plaintext_evidence(node: ast.AST) -> tuple[ast.AST, str] | None:
    """First plaintext marker in *node*'s subtree, pruning sanitizer calls."""
    if _is_sanitizer(node):
        return None
    if isinstance(node, ast.Call):
        name = terminal_name(node.func)
        if name in _PLAINTEXT_PRODUCERS:
            return node, f"plaintext-producing call {name}()"
        if name in _PLAINTEXT_CONSTRUCTORS:
            return node, f"plaintext constructor {name}()"
    if isinstance(node, ast.Name):
        lowered = node.id.lower()
        for marker in _PLAINTEXT_NAME_MARKERS:
            if marker in lowered:
                return node, f"plaintext-named value {node.id!r}"
    if isinstance(node, ast.Attribute):
        lowered = node.attr.lower()
        for marker in _PLAINTEXT_NAME_MARKERS:
            if marker in lowered:
                return node, f"plaintext-named value {node.attr!r}"
    if isinstance(node, ast.Constant) and isinstance(node.value, (str, bytes)):
        return node, "constant payload (not ciphertext)"
    for child in ast.iter_child_nodes(node):
        evidence = _plaintext_evidence(child)
        if evidence is not None:
            return evidence
    return None


class PlaintextEgress:
    code = "PL002"
    name = "plaintext-egress"
    rationale = "SSI-bound payloads must be ciphertext (§3.2)"

    def __init__(self, context: ModuleContext) -> None:
        self.context = context

    def run(self) -> Iterator[Finding]:
        for node in ast.walk(self.context.tree):  # type: ignore[arg-type]
            if not isinstance(node, ast.Call):
                continue
            name = terminal_name(node.func)
            if name in _SINK_CONSTRUCTORS:
                yield from self._check_args(node, name, node.args, node.keywords)
            elif name in _SINK_METHODS and isinstance(node.func, ast.Attribute):
                # First positional arg of the transfer methods is the
                # query id (opaque); the payload-carrying args follow.
                yield from self._check_args(
                    node, name, node.args[1:], node.keywords
                )

    def _check_args(
        self,
        call: ast.Call,
        sink: str,
        args: list[ast.expr],
        keywords: list[ast.keyword],
    ) -> Iterator[Finding]:
        candidates: list[ast.expr] = list(args)
        candidates.extend(kw.value for kw in keywords)
        for expr in candidates:
            evidence = _plaintext_evidence(expr)
            if evidence is None:
                continue
            marker, description = evidence
            line = getattr(marker, "lineno", call.lineno)
            col = getattr(marker, "col_offset", call.col_offset) + 1
            yield Finding(
                path=self.context.path,
                line=line,
                col=col,
                rule=self.code,
                message=(
                    f"{description} flows into SSI-bound {sink} — everything "
                    "the SSI stores must be ciphertext (§3.2); encrypt first"
                ),
                source_line=self.context.line_text(line),
            )
