"""PL008 — async-concurrency hygiene for the event-loop roles.

The networked deployment (PR 4/6) runs asyncio loops in the SSI server,
the TDS fleet and the clients.  Three bug classes recur there and are
invisible to per-file syntax checks:

* **blocking calls in ``async def``** — ``time.sleep``, subprocess,
  sync socket/file IO, or the synchronous bulk-crypto paths
  (``encrypt_block``/``decrypt_many``/...) stall every connection the
  loop serves.  Reached *transitively*: an async handler calling a sync
  helper that ends in ``decrypt_block`` blocks just as hard, so the
  check composes may-block summaries over the call graph (offloads via
  ``run_in_executor``/``to_thread`` are exempt by design).
* **cross-await mutation** — ``self.X`` read before an ``await`` and
  mutated after it without holding the owning lock: the loop may have
  interleaved another coroutine, so the read is stale.  A mutation under
  an ``async with <lock>`` (context-manager name containing "lock", or
  manifest-listed) is fine.
* **unawaited coroutines** — a bare statement calling an ``async def``
  silently creates-and-drops the coroutine; a bare
  ``create_task``/``ensure_future`` discards the task handle, so its
  exceptions vanish.

Scope: modules whose manifest role is in ``[pl008] async_roles``.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

from tools.privacy_lint.analysis.program import BlockSpec
from tools.privacy_lint.diagnostics import Finding
from tools.privacy_lint.rules.context import ProgramContext

#: bare statements that spawn-and-drop a task
_FIRE_AND_FORGET = {"create_task", "ensure_future"}


class AsyncConcurrency:
    code = "PL008"
    name = "async-concurrency"
    rationale = (
        "event-loop roles must not block the loop, race shared state "
        "across awaits, or drop coroutines"
    )
    requires_program = True

    def __init__(self, context: ProgramContext) -> None:
        self.context = context
        self.manifest = context.manifest

    def run(self) -> Iterator[Finding]:
        if not self.manifest.async_roles:
            return
        program = self.context.program
        spec = BlockSpec(
            blocking_calls=frozenset(self.manifest.blocking_calls),
            blocking_methods=frozenset(self.manifest.blocking_methods),
            offload_callables=frozenset(self.manifest.offload_callables),
        )
        summaries = program.blocking_summaries(spec)
        for qual in sorted(program.functions):
            fn = program.functions[qual]
            role = program.roles.get(fn["path"])
            if role not in self.manifest.async_roles:
                continue
            if fn["is_async"]:
                yield from self._blocking_findings(fn, summaries[qual])
                yield from self._cross_await_findings(fn)
            yield from self._unawaited_findings(fn)

    # ------------------------------------------------------------------ #
    def _finding(
        self,
        fn: dict[str, Any],
        line: int,
        message: str,
        related: tuple[tuple[str, int, str], ...] = (),
    ) -> Finding:
        return Finding(
            path=fn["path"],
            line=line,
            col=1,
            rule=self.code,
            message=message,
            source_line=self.context.line_text(fn["path"], line),
            related=related,
        )

    def _blocking_findings(
        self, fn: dict[str, Any], entries: list[Any]
    ) -> Iterator[Finding]:
        for entry in entries:
            related = tuple(
                (hop_path, hop_ln, note)
                for hop_path, hop_ln, note in entry.trace
                if (hop_path, hop_ln) != (fn["path"], entry.site_ln)
            )
            if (entry.leaf_path, entry.leaf_ln) != (fn["path"], entry.site_ln):
                related = related + (
                    (entry.leaf_path, entry.leaf_ln, f"blocks here: {entry.desc}"),
                )
            where = (
                "" if entry.leaf_path == fn["path"]
                and entry.leaf_ln == entry.site_ln
                else f" (via {entry.leaf_path}:{entry.leaf_ln})"
            )
            yield self._finding(
                fn,
                entry.site_ln,
                f"blocking call {entry.desc}{where} inside async def "
                f"{fn['name']} stalls the event loop — await an async "
                "variant or offload via run_in_executor/to_thread",
                related,
            )

    # ------------------------------------------------------------------ #
    def _is_lock(self, name: str) -> bool:
        return "lock" in name.lower() or name in self.manifest.lock_names

    def _cross_await_findings(self, fn: dict[str, Any]) -> Iterator[Finding]:
        awaits = fn["awaits"]
        if not awaits:
            return
        mutating = self.manifest.mutating_methods
        by_obj: dict[str, list[dict[str, Any]]] = {}
        for access in fn["accesses"]:
            by_obj.setdefault(access["obj"], []).append(access)
        for obj, accesses in sorted(by_obj.items()):
            reads = [
                a for a in accesses
                if a["mode"] == "read"
                or (a["mode"] == "call" and a["meth"] not in mutating)
            ]
            writes = [
                a for a in accesses
                if a["mode"] == "write"
                or (a["mode"] == "call" and a["meth"] in mutating)
            ]
            if not reads or not writes:
                continue
            first_read = min(a["i"] for a in reads)
            for write in writes:
                if any(self._is_lock(name) for name in write["locks"]):
                    continue
                crossing = [
                    a for a in awaits if first_read <= a[0] and a[0] <= write["i"]
                ]
                if not crossing:
                    continue
                read = min(
                    (a for a in reads if a["i"] <= crossing[-1][0]),
                    key=lambda a: a["i"],
                )
                if read["ln"] == write["ln"]:
                    continue
                yield self._finding(
                    fn,
                    write["ln"],
                    f"{obj} is mutated after an await but read before it "
                    f"(line {read['ln']}) without holding the owning lock — "
                    "another coroutine may have interleaved; guard both "
                    "sides with the same async lock",
                    (
                        (fn["path"], read["ln"], f"{obj} read here"),
                        (fn["path"], crossing[0][1], "await crossed here"),
                    ),
                )
                break  # one finding per object per function is enough

    # ------------------------------------------------------------------ #
    def _unawaited_findings(self, fn: dict[str, Any]) -> Iterator[Finding]:
        program = self.context.program
        for step in fn["steps"]:
            if step[0] != "expr":
                continue
            expr = step[1]
            if expr.get("k") != "call" or not expr.get("bare"):
                continue
            if expr.get("awaited"):
                continue
            name = expr.get("name")
            if name in _FIRE_AND_FORGET:
                yield self._finding(
                    fn,
                    expr["ln"],
                    f"{name}() result is discarded — a fire-and-forget task "
                    "loses its exceptions; keep the handle and attach a "
                    "done-callback (or await it)",
                )
                continue
            for qual in program.resolve_call(expr, fn):
                if program.functions[qual]["is_async"]:
                    yield self._finding(
                        fn,
                        expr["ln"],
                        f"coroutine {name}() is never awaited — the call "
                        "creates the coroutine object and drops it without "
                        "running it",
                        ((program.functions[qual]["path"],
                          program.functions[qual]["ln"],
                          f"async def {name} defined here"),),
                    )
                    break
