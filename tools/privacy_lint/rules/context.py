"""Per-module and whole-program analysis contexts shared by all rules."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from tools.privacy_lint.manifest import Manifest

if TYPE_CHECKING:
    from tools.privacy_lint.analysis.program import Program


def terminal_name(node: ast.expr) -> str | None:
    """The rightmost identifier of a Name/Attribute chain, else None.

    ``DeterministicCipher`` -> ``DeterministicCipher``;
    ``cache.det_cipher`` -> ``det_cipher``; ``self.ssi.submit_tuples`` ->
    ``submit_tuples``; anything else -> ``None``.
    """
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def dotted_path(node: ast.expr) -> str | None:
    """``a.b.c`` as a string when the chain is pure Name/Attribute."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


@dataclass
class ModuleContext:
    """Everything a rule needs to analyse one source file."""

    path: str  # repo-relative POSIX path
    source: str
    tree: ast.AST
    manifest: Manifest
    lines: list[str] = field(init=False)
    role: str | None = field(init=False)

    def __post_init__(self) -> None:
        self.lines = self.source.splitlines()
        self.role = self.manifest.role_of(self.path)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


@dataclass
class ProgramContext:
    """Everything an interprocedural rule needs: the linked program plus
    the source text of every linted file (for diagnostics)."""

    program: "Program"
    manifest: Manifest
    sources: dict[str, str]
    _lines: dict[str, list[str]] = field(init=False, default_factory=dict)

    def line_text(self, path: str, lineno: int) -> str:
        lines = self._lines.get(path)
        if lines is None:
            lines = self.sources.get(path, "").splitlines()
            self._lines[path] = lines
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1].strip()
        return ""
