"""PL007 — interprocedural plaintext/key-material taint.

The paper's whole guarantee is a dataflow property: plaintext tuples,
decrypted query results and key material exist only inside trusted
parties (querier, TDS), and everything the untrusted SSI observes is
ciphertext, deterministic tags or sizes (§2.1, §3.2).  PL002/PL003 check
this syntactically at single call sites, which a one-function detour
defeats: ``rows = helper(statement); ssi.store_result_rows(qid, rows)``
looks innocent in both files.

This rule runs the summary-based taint engine over the linked program:

* **sources** — manifest ``[pl007]``: ``decrypt_*``/``open_query``
  results, ``TupleContent(...)`` construction, key-material attribute
  reads;
* **sanitizers** — ``encrypt_*``/``seal_*``/hashing call results,
  ``len()``, and the attribute projections the paper licenses the SSI to
  see (tags, offsets, query ids, the SIZE clause);
* **sinks** — arguments of any function resolved into an ssi-role module
  (or its client-side RPC mirror) and of the observability emitters
  (``log_event``/``labels``/``annotate``).

The finding's primary location is the sink call site; the source and
every interprocedural hop are attached as related locations, and a
pragma at any of them suppresses the finding.
"""

from __future__ import annotations

from collections.abc import Iterator

from tools.privacy_lint.analysis.program import TaintSpec
from tools.privacy_lint.diagnostics import Finding
from tools.privacy_lint.rules.context import ProgramContext


def _taint_spec(context: ProgramContext) -> TaintSpec:
    manifest = context.manifest
    return TaintSpec(
        source_call_prefixes=manifest.taint_source_call_prefixes,
        source_calls=frozenset(manifest.taint_source_calls),
        source_constructors=frozenset(manifest.taint_source_constructors),
        source_attributes=frozenset(manifest.taint_source_attributes),
        sanitizer_prefixes=manifest.taint_sanitizer_prefixes,
        sanitizers=frozenset(manifest.taint_sanitizers),
        sanitizer_attributes=frozenset(manifest.taint_sanitizer_attributes),
        sink_roles=frozenset(manifest.taint_sink_roles),
        sink_callables=frozenset(manifest.taint_sink_callables),
    )


class PlaintextTaint:
    code = "PL007"
    name = "plaintext-taint"
    rationale = (
        "plaintext/key material must not flow into SSI-visible sinks, even "
        "through helper functions (§2.1 trust boundary)"
    )
    requires_program = True

    def __init__(self, context: ProgramContext) -> None:
        self.context = context

    def run(self) -> Iterator[Finding]:
        spec = _taint_spec(self.context)
        if not spec.sink_roles and not spec.sink_callables:
            return
        for flow in self.context.program.taint_analyze(spec):
            related = [
                (flow.source_path, flow.source_ln, f"source: {flow.source_desc}")
            ]
            related.extend(
                (hop_path, hop_ln, note)
                for hop_path, hop_ln, note in flow.trace
                if (hop_path, hop_ln) != (flow.sink_path, flow.sink_ln)
            )
            yield Finding(
                path=flow.sink_path,
                line=flow.sink_ln,
                col=1,
                rule=self.code,
                message=(
                    f"{flow.source_desc} "
                    f"({flow.source_path}:{flow.source_ln}) reaches "
                    f"{flow.sink_desc} without encryption — the SSI must "
                    "only ever observe ciphertext, tags and sizes"
                ),
                source_line=self.context.line_text(flow.sink_path, flow.sink_ln),
                related=tuple(related),
            )
