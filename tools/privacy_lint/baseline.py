"""Committed baseline of grandfathered findings.

Format — one entry per line, ``#`` comments and blank lines ignored::

    RULE | repo/relative/path.py | normalized offending line | justification

An entry suppresses every finding with the same (rule, path, normalized
source line) key, so entries survive line-number churn but die as soon as
the offending code changes — exactly when a human should re-decide.
``--write-baseline`` regenerates the file from the current findings
(keeping a TODO justification for new entries).
"""

from __future__ import annotations

from pathlib import Path

from tools.privacy_lint.diagnostics import Finding

_HEADER = """\
# privacy-lint baseline — grandfathered findings.
#
# One entry per line:  RULE | path | normalized source line | justification
# An entry stops matching (and must be revisited) as soon as the offending
# line changes.  Prefer fixing the code or an inline pragma with a
# justification; use the baseline only for findings that are intentional
# and too noisy to pragma individually.
"""

BaselineKey = tuple[str, str, str]


def _key(rule: str, path: str, normalized: str) -> BaselineKey:
    return (rule.upper(), path, normalized)


class Baseline:
    """Set of grandfathered finding keys, with load/save round-trip."""

    def __init__(self, entries: dict[BaselineKey, str] | None = None) -> None:
        #: key -> justification
        self.entries: dict[BaselineKey, str] = dict(entries or {})

    def __len__(self) -> int:
        return len(self.entries)

    def suppresses(self, finding: Finding) -> bool:
        return _key(finding.rule, finding.path, finding.normalized_source()) in self.entries

    # ------------------------------------------------------------------ #
    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        baseline = cls()
        baseline_path = Path(path)
        if not baseline_path.exists():
            return baseline
        for raw in baseline_path.read_text(encoding="utf-8").splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = [part.strip() for part in line.split("|", 3)]
            if len(parts) < 3:
                raise ValueError(f"malformed baseline entry: {raw!r}")
            rule, entry_path, normalized = parts[0], parts[1], parts[2]
            justification = parts[3] if len(parts) == 4 else ""
            baseline.entries[_key(rule, entry_path, normalized)] = justification
        return baseline

    @classmethod
    def from_findings(
        cls, findings: list[Finding], previous: "Baseline | None" = None
    ) -> "Baseline":
        """Baseline for *findings*, keeping justifications already written."""
        baseline = cls()
        for finding in findings:
            key = _key(finding.rule, finding.path, finding.normalized_source())
            justification = "TODO: justify or fix"
            if previous is not None and key in previous.entries:
                justification = previous.entries[key] or justification
            baseline.entries[key] = justification
        return baseline

    def save(self, path: str | Path) -> None:
        lines = [_HEADER]
        for (rule, entry_path, normalized), justification in sorted(
            self.entries.items()
        ):
            lines.append(f"{rule} | {entry_path} | {normalized} | {justification}")
        Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
