"""Whole-program linking and interprocedural dataflow over the module IR.

:class:`Program` links every extracted module into one namespace:

* **module-qualified resolution** — ``frames.write_envelope(...)``
  resolves through the caller's import table to
  ``repro.net.frames::write_envelope``; ``self.seal_frames(...)``
  resolves to the enclosing class's method; ``obj.submit_tuples(...)``
  falls back to a method-name index over every known class (capped, and
  never for generic container-method names).
* **taint summaries** (PL007) — per function: which taints its return
  value carries (concrete sources, or "whatever flows into parameter p")
  and which parameters reach a sink inside it.  Summaries compose over
  the call graph to a fixpoint, so a plaintext value laundered through
  any number of helper functions still connects source to sink, and the
  engine stays linear-ish in program size.
* **may-block summaries** (PL008) — per function: the blocking calls it
  can reach through synchronous callees, with the call chain preserved
  for the diagnostic.

Summary maps are insert-only (keyed without their traces), which makes
both fixpoints monotone and guarantees termination; traces are capped at
``MAX_TRACE`` hops so recursion cannot grow them without bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, NamedTuple, Optional

from tools.privacy_lint.analysis.ir import Expr, FunctionIR, ModuleIR

#: method names too generic to resolve through the method-name index —
#: they would bind list.append/dict.get/... to unrelated classes.
GENERIC_METHODS = frozenset(
    {
        "append", "add", "insert", "extend", "update", "setdefault", "pop",
        "popitem", "clear", "remove", "discard", "get", "keys", "values",
        "items", "copy", "join", "split", "strip", "encode", "decode",
        "format", "read", "write", "readline", "sort", "reverse", "index",
        "count", "close", "open", "items", "cast", "len",
    }
)

#: sink-classification fan-out cap (see :meth:`Program.resolve_for_sink`).
MAX_SINK_CANDIDATES = 8

#: maximum hops kept in a diagnostic trace (source -> ... -> sink).
MAX_TRACE = 6

#: local dataflow passes per function (loop-carried flows converge).
LOCAL_PASSES = 2


class Taint(NamedTuple):
    """One tainted value: a concrete source or a parameter dependency."""

    kind: str    # "src" | "param"
    detail: str  # source description, or the parameter name
    path: str    # where the source is (declaration site for params)
    ln: int
    trace: tuple[tuple[str, int, str], ...]  # hops from source to here


class TaintFinding(NamedTuple):
    """A source-to-sink flow discovered by the taint engine."""

    sink_path: str
    sink_ln: int
    sink_desc: str
    source_desc: str
    source_path: str
    source_ln: int
    trace: tuple[tuple[str, int, str], ...]
    via: str  # qualname of the function containing the sink call site


class BlockEntry(NamedTuple):
    """One (possibly transitive) blocking call reachable from a function."""

    desc: str
    site_ln: int   # call-site line inside the summarized function
    leaf_path: str
    leaf_ln: int
    trace: tuple[tuple[str, int, str], ...]


@dataclass
class TaintSpec:
    """PL007 configuration (populated from the manifest)."""

    source_call_prefixes: tuple[str, ...] = ()
    source_calls: frozenset[str] = frozenset()
    source_constructors: frozenset[str] = frozenset()
    source_attributes: frozenset[str] = frozenset()
    sanitizer_prefixes: tuple[str, ...] = ()
    sanitizers: frozenset[str] = frozenset()
    sanitizer_attributes: frozenset[str] = frozenset()
    sink_roles: frozenset[str] = frozenset()
    sink_callables: frozenset[str] = frozenset()


@dataclass
class BlockSpec:
    """PL008 blocking-call configuration (populated from the manifest)."""

    blocking_calls: frozenset[str] = frozenset()    # dotted or bare names
    blocking_methods: frozenset[str] = frozenset()  # match any receiver
    offload_callables: frozenset[str] = frozenset()


def _strip(name: str) -> str:
    return name.lstrip("_")


def iter_exprs(expr: Expr) -> Iterator[Expr]:
    """Every atom in an expression tree, preorder."""
    yield expr
    kind = expr.get("k")
    if kind == "call":
        fexpr = expr.get("fexpr")
        if fexpr is not None:
            yield from iter_exprs(fexpr)
        for arg in expr["args"]:
            yield from iter_exprs(arg)
        for _, value in expr["kw"]:
            yield from iter_exprs(value)
    elif kind == "attr":
        base = expr.get("base")
        if base is not None:
            yield from iter_exprs(base)
    elif kind == "many":
        for part in expr["parts"]:
            yield from iter_exprs(part)
        for guard in expr.get("guards", ()):
            yield from iter_exprs(guard)


class Program:
    """Linked whole-program view over a set of module IRs."""

    def __init__(
        self, modules: dict[str, ModuleIR], roles: dict[str, Optional[str]]
    ) -> None:
        #: path -> ModuleIR
        self.modules = modules
        #: path -> manifest role (None when unmapped)
        self.roles = roles
        #: dotted module name -> path
        self.module_paths: dict[str, str] = {
            ir["module"]: path for path, ir in modules.items()
        }
        #: qualname -> FunctionIR
        self.functions: dict[str, FunctionIR] = {}
        #: method name -> [qualname, ...]
        self.methods_by_name: dict[str, list[str]] = {}
        for ir in modules.values():
            for fn in ir["functions"]:
                self.functions[fn["qual"]] = fn
                if fn["cls"] is not None:
                    self.methods_by_name.setdefault(fn["name"], []).append(
                        fn["qual"]
                    )
        for quals in self.methods_by_name.values():
            quals.sort()

    # ------------------------------------------------------------------ #
    # name resolution
    # ------------------------------------------------------------------ #
    def role_of_function(self, qual: str) -> Optional[str]:
        fn = self.functions.get(qual)
        if fn is None:
            return None
        return self.roles.get(fn["path"])

    def find_module(self, name: str) -> Optional[str]:
        """Dotted module name -> canonical module name, allowing a unique
        suffix match so fixture packs can use short import names."""
        if name in self.module_paths:
            return name
        suffix = "." + name
        matches = [m for m in self.module_paths if m.endswith(suffix)]
        if len(matches) == 1:
            return matches[0]
        return None

    def _function(self, qual: str) -> Optional[str]:
        return qual if qual in self.functions else None

    def resolve_call(self, call: Expr, caller: FunctionIR) -> list[str]:
        """Callee qualnames for dataflow binding: qualified resolution,
        with the method-name fallback only when it is unambiguous —
        binding arguments across same-named methods of unrelated classes
        would manufacture flows that do not exist."""
        cached = call.get("_r")
        if cached is not None:
            return list(cached)
        candidates = self._resolve_uncached(call, caller, fallback_limit=1)
        call["_r"] = tuple(candidates)
        return candidates

    def resolve_for_sink(self, call: Expr, caller: FunctionIR) -> list[str]:
        """Callee qualnames for sink *classification*: here ambiguity is
        tolerable (several same-named methods, cap ``MAX_SINK_CANDIDATES``)
        because the caller only asks what role the callee lives in, not
        which parameters bind."""
        cached = call.get("_rs")
        if cached is not None:
            return list(cached)
        candidates = self._resolve_uncached(
            call, caller, fallback_limit=MAX_SINK_CANDIDATES
        )
        call["_rs"] = tuple(candidates)
        return candidates

    def _resolve_uncached(
        self, call: Expr, caller: FunctionIR, fallback_limit: int
    ) -> list[str]:
        dotted: Optional[str] = call.get("dotted")
        name: Optional[str] = call.get("name")
        module = caller["module"]
        module_ir = self.modules.get(caller["path"])
        imports: dict[str, list[Optional[str]]] = (
            module_ir["imports"] if module_ir is not None else {}
        )
        if dotted is not None:
            segs = dotted.split(".")
            if len(segs) == 1:
                resolved = self._resolve_bare(segs[0], module, imports)
                if resolved:
                    return resolved
            elif segs[0] in ("self", "cls") and caller["cls"] is not None:
                if len(segs) == 2:
                    qual = self._function(
                        f"{module}::{caller['cls']}.{segs[1]}"
                    )
                    if qual:
                        return [qual]
            else:
                resolved = self._resolve_qualified(segs, module, imports)
                if resolved:
                    return resolved
        if name and name not in GENERIC_METHODS:
            methods = self.methods_by_name.get(name, [])
            if 0 < len(methods) <= fallback_limit:
                return list(methods)
        return []

    def _resolve_bare(
        self, name: str, module: str, imports: dict[str, list[Optional[str]]]
    ) -> list[str]:
        qual = self._function(f"{module}::{name}")
        if qual:
            return [qual]
        entry = imports.get(name)
        if entry is not None:
            base, member = entry[0], entry[1]
            if member is not None and base is not None:
                target = self.find_module(base)
                if target is not None:
                    qual = self._function(f"{target}::{member}")
                    if qual:
                        return [qual]
                    # imported class used as constructor
                    qual = self._function(f"{target}::{member}.__init__")
                    if qual:
                        return [qual]
        # local class constructor
        qual = self._function(f"{module}::{name}.__init__")
        if qual:
            return [qual]
        return []

    def _resolve_qualified(
        self,
        segs: list[str],
        module: str,
        imports: dict[str, list[Optional[str]]],
    ) -> list[str]:
        entry = imports.get(segs[0])
        bases: list[str] = []
        if entry is not None:
            base, member = entry[0], entry[1]
            if base is not None:
                if member is None:
                    bases.append(base)
                else:
                    bases.append(f"{base}.{member}")  # submodule import
                    # `from mod import Class` -> Class.method(...)
                    target = self.find_module(base)
                    if target is not None:
                        qual = self._function(
                            f"{target}::{member}.{'.'.join(segs[1:])}"
                        )
                        if qual:
                            return [qual]
        # local class: ClassName.method(...)
        qual = self._function(f"{module}::{'.'.join(segs)}")
        if qual:
            return [qual]
        for base in bases:
            target = self.find_module(base)
            if target is None:
                continue
            qual = self._function(f"{target}::{'.'.join(segs[1:])}")
            if qual:
                return [qual]
        return []

    def expand_dotted(self, call: Expr, caller: FunctionIR) -> Optional[str]:
        """The call's dotted name with its first segment expanded through
        the caller's imports (``sleep`` -> ``time.sleep`` after
        ``from time import sleep``), for matching configured call lists."""
        dotted = call.get("dotted")
        module_ir = self.modules.get(caller["path"])
        imports = module_ir["imports"] if module_ir is not None else {}
        if dotted is None:
            return None
        segs = dotted.split(".")
        entry = imports.get(segs[0])
        if entry is not None and entry[0] is not None:
            base, member = entry[0], entry[1]
            head = base if member is None else f"{base}.{member}"
            return ".".join([head] + segs[1:])
        return dotted

    # ------------------------------------------------------------------ #
    # PL007: interprocedural taint
    # ------------------------------------------------------------------ #
    def taint_analyze(self, spec: TaintSpec) -> list[TaintFinding]:
        engine = _TaintEngine(self, spec)
        engine.solve()
        return engine.report()

    # ------------------------------------------------------------------ #
    # PL008: may-block summaries
    # ------------------------------------------------------------------ #
    def blocking_summaries(self, spec: BlockSpec) -> dict[str, list[BlockEntry]]:
        engine = _BlockEngine(self, spec)
        return engine.solve()


# ---------------------------------------------------------------------- #
# taint engine
# ---------------------------------------------------------------------- #
@dataclass
class _Summary:
    #: (kind, detail) -> representative Taint returned by the function
    ret: dict[tuple[str, str], Taint] = field(default_factory=dict)
    #: (param, sink_path, sink_ln, sink_desc) -> chain from the call of
    #: the function to the sink (tuple of hops)
    param_sinks: dict[
        tuple[str, str, int, str], tuple[tuple[str, int, str], ...]
    ] = field(default_factory=dict)


def _dedupe(taints: set[Taint]) -> set[Taint]:
    """One representative per underlying taint.

    ``Taint`` equality includes the trace, so repeated propagation of the
    same source through different call paths would otherwise accumulate a
    combinatorial number of trace variants in every environment set.  The
    identity of a taint is (kind, detail, path, ln); the shortest trace
    wins so diagnostics show the most direct route.
    """
    best: dict[tuple[str, str, str, int], Taint] = {}
    for taint in taints:
        key = (taint.kind, taint.detail, taint.path, taint.ln)
        kept = best.get(key)
        if kept is None or len(taint.trace) < len(kept.trace):
            best[key] = taint
    return set(best.values())


def _extend(
    trace: tuple[tuple[str, int, str], ...], hop: tuple[str, int, str]
) -> tuple[tuple[str, int, str], ...]:
    if len(trace) >= MAX_TRACE:
        return trace
    if trace and trace[-1] == hop:
        return trace
    return trace + (hop,)


class _TaintEngine:
    def __init__(self, program: Program, spec: TaintSpec) -> None:
        self.program = program
        self.spec = spec
        self.summaries: dict[str, _Summary] = {
            qual: _Summary() for qual in program.functions
        }
        self.findings: dict[tuple[str, int, str, str, int], TaintFinding] = {}

    # -- classification ------------------------------------------------ #
    def _is_sanitizer(self, name: Optional[str]) -> bool:
        if not name:
            return False
        stripped = _strip(name)
        return (
            stripped == "len"
            or stripped in self.spec.sanitizers
            or stripped.startswith(self.spec.sanitizer_prefixes)
        )

    def _is_source_call(self, name: Optional[str]) -> bool:
        if not name:
            return False
        stripped = _strip(name)
        return (
            stripped in self.spec.source_calls
            or name in self.spec.source_constructors
            or stripped.startswith(self.spec.source_call_prefixes)
        )

    def _sink_desc(self, call: Expr, caller: FunctionIR) -> Optional[str]:
        name = call.get("name")
        caller_role = self.program.roles.get(caller["path"])
        if caller_role in self.spec.sink_roles:
            return None  # taint already inside the sink role: flagged upstream
        if name in self.spec.sink_callables:
            return f"observability sink {name}()"
        # Any plausible callee in a sink role counts: the client-side RPC
        # proxies deliberately mirror the SSI server API name-for-name,
        # and data passed to either ends up on the SSI-visible wire.
        for qual in self.program.resolve_for_sink(call, caller):
            role = self.program.role_of_function(qual)
            if role in self.spec.sink_roles:
                fn = self.program.functions[qual]
                return (
                    f"{name}() [{qual.replace('::', ':')}, "
                    f"{role}-role {fn['path']}]"
                )
        return None

    # -- solving -------------------------------------------------------- #
    def solve(self) -> None:
        order = sorted(self.program.functions)
        for _ in range(16):
            changed = False
            for qual in order:
                if self._analyze(self.program.functions[qual], report=False):
                    changed = True
            if not changed:
                break

    def report(self) -> list[TaintFinding]:
        for qual in sorted(self.program.functions):
            self._analyze(self.program.functions[qual], report=True)
        return sorted(self.findings.values())

    # -- local analysis -------------------------------------------------- #
    def _analyze(self, fn: FunctionIR, *, report: bool) -> bool:
        summary = self.summaries[fn["qual"]]
        before = (len(summary.ret), len(summary.param_sinks))
        env: dict[str, set[Taint]] = {}
        params = list(fn["params"]) + list(fn["kwonly"])
        for param in params:
            env[param] = {
                Taint("param", param, fn["path"], fn["ln"], ())
            }
        for _ in range(LOCAL_PASSES):
            for step in fn["steps"]:
                kind = step[0]
                if kind in ("assign", "aug"):
                    taints = self._eval(step[2], env, fn, summary, report)
                    for target in step[1]:
                        if kind == "aug":
                            env[target] = _dedupe(
                                env.get(target, set()) | taints
                            )
                        else:
                            env[target] = _dedupe(taints)
                elif kind == "ret":
                    taints = self._eval(step[1], env, fn, summary, report)
                    for taint in taints:
                        summary.ret.setdefault(
                            (taint.kind, taint.detail), taint
                        )
                elif kind == "expr":
                    self._eval(step[1], env, fn, summary, report)
        after = (len(summary.ret), len(summary.param_sinks))
        return after != before

    def _dotted_taints(
        self, dotted: str, ln: int, env: dict[str, set[Taint]], fn: FunctionIR
    ) -> set[Taint]:
        """Taint of an ``a.b.c`` chain: env lookup on the longest known
        prefix, then attribute projection (sources add, sanitized
        projections clear)."""
        segs = dotted.split(".")
        taints: set[Taint] = set()
        start = 0
        for cut in range(len(segs), 0, -1):
            prefix = ".".join(segs[:cut])
            if prefix in env:
                taints = set(env[prefix])
                start = cut
                break
        for seg in segs[start:]:
            if seg in self.spec.source_attributes:
                taints.add(
                    Taint("src", f"attribute .{seg} (key material)",
                          fn["path"], ln, ())
                )
            elif seg in self.spec.sanitizer_attributes:
                taints = set()
        return taints

    def _eval(
        self,
        expr: Expr,
        env: dict[str, set[Taint]],
        fn: FunctionIR,
        summary: _Summary,
        report: bool,
    ) -> set[Taint]:
        kind = expr["k"]
        if kind == "const":
            return set()
        if kind == "name":
            return set(env.get(expr["id"], ()))
        if kind == "attr":
            base = expr.get("base")
            attr = expr["attr"]
            if expr.get("dotted"):
                return self._dotted_taints(expr["dotted"], expr["ln"], env, fn)
            taints: set[Taint] = set()
            if base is not None:
                taints = self._eval(base, env, fn, summary, report)
            if attr in self.spec.source_attributes:
                taints = taints | {
                    Taint("src", f"attribute .{attr} (key material)",
                          fn["path"], expr["ln"], ())
                }
            elif attr in self.spec.sanitizer_attributes:
                taints = set()
            return taints
        if kind == "many":
            taints = set()
            for part in expr["parts"]:
                taints |= self._eval(part, env, fn, summary, report)
            for guard in expr.get("guards", ()):
                # evaluated for sink detection only; a guard decides which
                # branch runs, it does not flow into the value
                self._eval(guard, env, fn, summary, report)
            return _dedupe(taints)
        # call
        return self._eval_call(expr, env, fn, summary, report)

    def _receiver_taints(
        self, call: Expr, env: dict[str, set[Taint]], fn: FunctionIR,
        summary: _Summary, report: bool,
    ) -> set[Taint]:
        dotted = call.get("dotted")
        if dotted is not None and "." in dotted:
            receiver = dotted.rsplit(".", 1)[0]
            return self._dotted_taints(receiver, call["ln"], env, fn)
        fexpr = call.get("fexpr")
        if fexpr is not None:
            return self._eval(fexpr, env, fn, summary, report)
        return set()

    def _eval_call(
        self,
        call: Expr,
        env: dict[str, set[Taint]],
        fn: FunctionIR,
        summary: _Summary,
        report: bool,
    ) -> set[Taint]:
        name = call.get("name")
        ln = call["ln"]
        arg_taints: list[set[Taint]] = [
            self._eval(arg, env, fn, summary, report) for arg in call["args"]
        ]
        kw_taints: list[tuple[Optional[str], set[Taint]]] = [
            (kw_name, self._eval(value, env, fn, summary, report))
            for kw_name, value in call["kw"]
        ]
        if self._is_sanitizer(name):
            return set()
        if self._is_source_call(name):
            return {
                Taint("src", f"{name}() result", fn["path"], ln, ())
            }
        candidates = self.program.resolve_call(call, fn)
        sink = self._sink_desc(call, fn)
        if sink is not None:
            for taints in arg_taints + [t for _, t in kw_taints]:
                for taint in taints:
                    self._record_flow(taint, sink, fn, ln, summary, report)
        result: set[Taint] = set()
        receiver = self._receiver_taints(call, env, fn, summary, report)
        if not candidates:
            for taints in arg_taints:
                result |= taints
            for _, taints in kw_taints:
                result |= taints
            result |= receiver
            result = _dedupe(result)
            self._mutate_receiver(call, env, result)
            return result
        for qual in candidates:
            callee = self.program.functions[qual]
            callee_summary = self.summaries[qual]
            binding = self._bind_args(
                callee, call, arg_taints, kw_taints, receiver
            )
            hop = (fn["path"], ln, f"via {name}()")
            # list(): the callee may be the caller (recursion), in which
            # case these are the same dicts we are inserting into.
            for taint in list(callee_summary.ret.values()):
                if taint.kind == "src":
                    result.add(taint._replace(trace=_extend(taint.trace, hop)))
                else:  # param dependency: substitute the caller's argument
                    for arg_taint in binding.get(taint.detail, set()):
                        result.add(
                            arg_taint._replace(
                                trace=_extend(arg_taint.trace, hop)
                            )
                        )
            for key, chain in list(callee_summary.param_sinks.items()):
                param, sink_path, sink_ln, sink_desc = key
                for arg_taint in binding.get(param, set()):
                    self._record_chain_flow(
                        arg_taint, sink_path, sink_ln, sink_desc,
                        (fn["path"], ln, f"into {name}()"), chain,
                        summary, report,
                    )
            if qual.endswith(".__init__"):
                # constructor: the object carries whatever its fields do
                for taints in arg_taints:
                    result |= taints
                for _, taints in kw_taints:
                    result |= taints
        result = _dedupe(result)
        self._mutate_receiver(call, env, result)
        return result

    def _mutate_receiver(
        self, call: Expr, env: dict[str, set[Taint]], taints: set[Taint]
    ) -> None:
        """``frames.append(tainted)`` taints ``frames`` (weak update)."""
        if not taints:
            return
        dotted = call.get("dotted")
        if dotted is None or "." not in dotted:
            return
        receiver = dotted.rsplit(".", 1)[0]
        if "." in receiver or receiver in ("self", "cls"):
            # Only plain locals: tainting `self` on every
            # `self.helper(tainted)` call would smear taint over every
            # later `self.*` read; calls on self resolve through
            # summaries instead.
            return
        env[receiver] = _dedupe(env.get(receiver, set()) | taints)

    def _bind_args(
        self,
        callee: FunctionIR,
        call: Expr,
        arg_taints: list[set[Taint]],
        kw_taints: list[tuple[Optional[str], set[Taint]]],
        receiver: set[Taint],
    ) -> dict[str, set[Taint]]:
        params = list(callee["params"])
        binding: dict[str, set[Taint]] = {}
        positional = params
        dotted = call.get("dotted") or ""
        is_attr_call = "." in dotted or call.get("fexpr") is not None
        if callee["kind"] in ("method", "class") and params:
            if is_attr_call:
                binding[params[0]] = set(receiver)
                positional = params[1:]
            # bare-name call of a method: alignment unknown; keep 1:1
        for index, taints in enumerate(arg_taints):
            if index < len(positional):
                binding.setdefault(positional[index], set()).update(taints)
        valid = set(params) | set(callee["kwonly"])
        for kw_name, taints in kw_taints:
            if kw_name is not None and kw_name in valid:
                binding.setdefault(kw_name, set()).update(taints)
        return binding

    def _record_flow(
        self,
        taint: Taint,
        sink_desc: str,
        fn: FunctionIR,
        ln: int,
        summary: _Summary,
        report: bool,
    ) -> None:
        if taint.kind == "param":
            summary.param_sinks.setdefault(
                (taint.detail, fn["path"], ln, sink_desc), taint.trace
            )
            return
        if report:
            key = (fn["path"], ln, sink_desc, taint.detail, taint.ln)
            self.findings.setdefault(
                key,
                TaintFinding(
                    sink_path=fn["path"], sink_ln=ln, sink_desc=sink_desc,
                    source_desc=taint.detail, source_path=taint.path,
                    source_ln=taint.ln, trace=taint.trace, via=fn["qual"],
                ),
            )

    def _record_chain_flow(
        self,
        taint: Taint,
        sink_path: str,
        sink_ln: int,
        sink_desc: str,
        hop: tuple[str, int, str],
        chain: tuple[tuple[str, int, str], ...],
        summary: _Summary,
        report: bool,
    ) -> None:
        if taint.kind == "param":
            chain_through = taint.trace
            chain_through = _extend(chain_through, hop)
            for link in chain:
                chain_through = _extend(chain_through, link)
            summary.param_sinks.setdefault(
                (taint.detail, sink_path, sink_ln, sink_desc), chain_through
            )
            return
        if report:
            trace = taint.trace
            trace = _extend(trace, hop)
            for link in chain:
                trace = _extend(trace, link)
            key = (sink_path, sink_ln, sink_desc, taint.detail, taint.ln)
            self.findings.setdefault(
                key,
                TaintFinding(
                    sink_path=sink_path, sink_ln=sink_ln, sink_desc=sink_desc,
                    source_desc=taint.detail, source_path=taint.path,
                    source_ln=taint.ln, trace=trace, via=hop[0],
                ),
            )


# ---------------------------------------------------------------------- #
# blocking engine
# ---------------------------------------------------------------------- #
class _BlockEngine:
    def __init__(self, program: Program, spec: BlockSpec) -> None:
        self.program = program
        self.spec = spec
        self.summaries: dict[str, dict[tuple[str, int], BlockEntry]] = {
            qual: {} for qual in program.functions
        }

    def solve(self) -> dict[str, list[BlockEntry]]:
        order = sorted(self.program.functions)
        for _ in range(16):
            changed = False
            for qual in order:
                if self._analyze(self.program.functions[qual]):
                    changed = True
            if not changed:
                break
        return {
            qual: sorted(entries.values())
            for qual, entries in self.summaries.items()
        }

    def _blocking_desc(self, call: Expr, fn: FunctionIR) -> Optional[str]:
        name = call.get("name")
        dotted = call.get("dotted")
        expanded = self.program.expand_dotted(call, fn)
        if expanded is not None and expanded in self.spec.blocking_calls:
            return f"{expanded}()"
        if (
            dotted is not None
            and "." not in dotted
            and dotted in self.spec.blocking_calls
        ):
            return f"{dotted}()"
        if name is not None and _strip(name) in self.spec.blocking_methods:
            return f"{name}() [synchronous bulk crypto]"
        return None

    def _scan_calls(self, expr: Expr) -> Iterator[Expr]:
        """Call atoms in *expr*, skipping offloaded subtrees
        (``run_in_executor``/``to_thread`` arguments run off-loop by
        design)."""
        kind = expr.get("k")
        if kind == "call":
            name = expr.get("name")
            if name in self.spec.offload_callables:
                return
            yield expr
            fexpr = expr.get("fexpr")
            if fexpr is not None:
                yield from self._scan_calls(fexpr)
            for arg in expr["args"]:
                yield from self._scan_calls(arg)
            for _, value in expr["kw"]:
                yield from self._scan_calls(value)
        elif kind == "attr":
            base = expr.get("base")
            if base is not None:
                yield from self._scan_calls(base)
        elif kind == "many":
            for part in expr["parts"]:
                yield from self._scan_calls(part)
            for guard in expr.get("guards", ()):
                yield from self._scan_calls(guard)

    def _analyze(self, fn: FunctionIR) -> bool:
        summary = self.summaries[fn["qual"]]
        before = len(summary)
        for step in fn["steps"]:
            exprs = [step[2]] if step[0] in ("assign", "aug") else [step[1]]
            for expr in exprs:
                for call in self._scan_calls(expr):
                    if call.get("awaited"):
                        continue
                    ln = call["ln"]
                    desc = self._blocking_desc(call, fn)
                    if desc is not None:
                        summary.setdefault(
                            (desc, ln),
                            BlockEntry(desc, ln, fn["path"], ln, ()),
                        )
                        continue
                    for qual in self.program.resolve_call(call, fn):
                        callee = self.program.functions[qual]
                        if callee["is_async"]:
                            continue
                        # list(): self-recursive functions share this dict
                        for entry in list(self.summaries[qual].values()):
                            hop = (
                                fn["path"], ln,
                                f"calls {call.get('name')}()",
                            )
                            summary.setdefault(
                                (entry.desc, ln),
                                BlockEntry(
                                    entry.desc, ln, entry.leaf_path,
                                    entry.leaf_ln,
                                    ((hop,) + entry.trace)[:MAX_TRACE],
                                ),
                            )
        return len(summary) != before
