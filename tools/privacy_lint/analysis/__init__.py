"""Whole-program analysis layer for privacy-lint (PL007/PL008).

PR 2's rules are per-file, syntactic AST checks; the shapes the codebase
has since grown — packed buffers flowing ``tds/node.py`` ->
``net/batch.py`` -> ``net/server.py``, a spawn-based crypto pool, a
concurrent asyncio dispatcher — leak *through function calls*, which a
single-file rule cannot see.  This package adds the missing layer:

* :mod:`~tools.privacy_lint.analysis.ir` — a serializable per-module IR
  (imports, functions, assignment/return/call steps, await and
  shared-state access traces) extracted once per file from the stdlib
  AST.  Extraction depends only on the file's bytes, so the result is
  cacheable by content hash.
* :mod:`~tools.privacy_lint.analysis.cache` — the on-disk IR cache that
  keeps full-repo runs fast in CI (cold builds every module; warm runs
  deserialize).
* :mod:`~tools.privacy_lint.analysis.program` — whole-program linking:
  module-qualified function/method resolution, the call graph, and a
  summary-based interprocedural dataflow engine (taint for PL007,
  may-block for PL008).  Summaries compose over the call graph to a
  fixpoint, so the analysis stays linear-ish in program size instead of
  exponential in path count.
"""

from tools.privacy_lint.analysis.cache import IRCache
from tools.privacy_lint.analysis.ir import IR_VERSION, extract_module
from tools.privacy_lint.analysis.program import Program

__all__ = ["IR_VERSION", "IRCache", "Program", "extract_module"]
