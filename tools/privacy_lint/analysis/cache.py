"""On-disk cache of per-module IR, keyed by file content hash.

The IR for one file depends only on that file's bytes (and the extractor
version), so the cache key is ``sha256(IR_VERSION || path || source)``.
Entries are one JSON file each under the cache directory — no index to
corrupt, concurrent writers at worst both write the same bytes, and a
stale entry is simply never looked up again.

The full-repo CI run budget (cold < 60s, warm < 10s) rides on this:
warm runs deserialize JSON instead of re-parsing and re-walking every
AST.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Optional

from tools.privacy_lint.analysis.ir import IR_VERSION, ModuleIR


class IRCache:
    """Content-addressed store of extracted module IR."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(path: str, source: str) -> str:
        digest = hashlib.sha256()
        digest.update(f"ir-v{IR_VERSION}\x00{path}\x00".encode("utf-8"))
        digest.update(source.encode("utf-8"))
        return digest.hexdigest()

    def _entry(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, path: str, source: str) -> Optional[ModuleIR]:
        entry = self._entry(self.key(path, source))
        try:
            raw = entry.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            return None
        try:
            ir: ModuleIR = json.loads(raw)
        except ValueError:
            self.misses += 1
            return None
        if ir.get("version") != IR_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        return ir

    def put(self, path: str, source: str, ir: ModuleIR) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        entry = self._entry(self.key(path, source))
        tmp = entry.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(ir, separators=(",", ":")), encoding="utf-8")
        os.replace(tmp, entry)
