"""Per-module dataflow IR, extracted once per file from the stdlib AST.

The IR is deliberately *plain data* (nested dicts/lists of scalars) so a
module's extraction result can be serialized to JSON and cached by file
content hash — re-linting an unchanged file never re-parses it.  Nothing
in here consults the manifest: extraction must stay configuration-free
or the cache would silently go stale when ``manifest.cfg`` changes.

Shape (see ``IR_VERSION`` for the schema revision):

``ModuleIR`` ::

    {"version": int, "path": str, "module": str,
     "imports": {alias: [module, name-or-None]},
     "functions": [FunctionIR, ...]}

``FunctionIR`` ::

    {"qual": "repro.net.fleet::FleetRunner._poll_once",
     "module": str, "path": str, "cls": str|None, "name": str,
     "kind": "function"|"method"|"static"|"class",
     "params": [str], "kwonly": [str], "ln": int, "is_async": bool,
     "steps": [Step, ...],          # linear, source order
     "awaits": [[step_index, ln]],  # every await point, in order
     "accesses": [Access, ...]}     # shared-state touches (PL008)

``Step`` is one of::

    ["assign", [target, ...], Expr, ln]   # x = ..., for-targets, with-as
    ["aug",    [target],      Expr, ln]   # x += ...
    ["ret",    Expr, ln]                  # return ...
    ["expr",   Expr, ln]                  # bare expression statement

and ``Expr`` is an atom tree::

    {"k": "name",  "id": str, "ln": int}
    {"k": "attr",  "attr": str, "dotted": str|None, "base": Expr|None, "ln": int}
    {"k": "call",  "name": str|None, "dotted": str|None, "args": [Expr],
     "kw": [[str|None, Expr]], "ln": int, "awaited": bool, "bare": bool}
    {"k": "const", "ln": int}
    {"k": "many",  "parts": [Expr], "ln": int}   # everything else, flattened

Control flow is linearized (branch bodies concatenate in source order);
the dataflow pass in :mod:`~tools.privacy_lint.analysis.program` runs a
few passes over the step list so loop-carried flows converge.  This is a
path-insensitive over/under-approximation — exactly the trade the rest
of privacy-lint already makes: deterministic, fast, and reviewable.
"""

from __future__ import annotations

import ast
from typing import Any, Optional

#: bump whenever the IR shape or extraction semantics change — the cache
#: keys on (IR_VERSION, file content hash), so stale entries self-expire.
IR_VERSION = 1

Expr = dict[str, Any]
Step = list[Any]
ModuleIR = dict[str, Any]
FunctionIR = dict[str, Any]


def module_name_for_path(path: str) -> str:
    """Dotted module name for a repo-relative POSIX path.

    ``src/repro/net/server.py`` -> ``repro.net.server``;
    ``tools/privacy_lint/cli.py`` -> ``tools.privacy_lint.cli``;
    ``pkg/__init__.py`` -> ``pkg``.  Files outside any package root still
    get a stable dotted name derived from their path.
    """
    name = path
    if name.endswith(".py"):
        name = name[: -len(".py")]
    if name.startswith("src/"):
        name = name[len("src/") :]
    name = name.replace("/", ".")
    if name.endswith(".__init__"):
        name = name[: -len(".__init__")]
    return name


def dotted_of(node: ast.expr) -> Optional[str]:
    """``a.b.c`` when *node* is a pure Name/Attribute chain, else None."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def _self_root(dotted: Optional[str]) -> Optional[str]:
    """``self.X`` prefix of a dotted chain (shared-state root), if any."""
    if dotted is None:
        return None
    parts = dotted.split(".")
    if len(parts) >= 2 and parts[0] in ("self", "cls"):
        return f"{parts[0]}.{parts[1]}"
    if len(parts) >= 1 and parts[0].isupper():  # module-level REGISTRY etc.
        return parts[0]
    return None


class _FunctionExtractor:
    """Builds one FunctionIR by walking a function body."""

    def __init__(
        self,
        module: str,
        path: str,
        scope: list[str],
        cls: Optional[str],
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        sink: list[FunctionIR],
    ) -> None:
        self.module = module
        self.path = path
        self.cls = cls
        self.node = node
        self.sink = sink
        self.qual = f"{module}::{'.'.join(scope)}"
        self.steps: list[Step] = []
        self.awaits: list[list[int]] = []
        self.accesses: list[dict[str, Any]] = []
        self._locks: list[str] = []
        self._scope = scope

    # ------------------------------------------------------------------ #
    def extract(self) -> FunctionIR:
        for stmt in self.node.body:
            self._stmt(stmt)
        args = self.node.args
        params = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
        kind = "method" if self.cls is not None else "function"
        for decorator in self.node.decorator_list:
            name = dotted_of(decorator)
            terminal = name.rsplit(".", 1)[-1] if name else None
            if terminal == "staticmethod":
                kind = "static"
            elif terminal == "classmethod":
                kind = "class"
        return {
            "qual": self.qual,
            "module": self.module,
            "path": self.path,
            "cls": self.cls,
            "name": self.node.name,
            "kind": kind,
            "params": params,
            "kwonly": [a.arg for a in args.kwonlyargs],
            "ln": self.node.lineno,
            "is_async": isinstance(self.node, ast.AsyncFunctionDef),
            "steps": self.steps,
            "awaits": self.awaits,
            "accesses": self.accesses,
        }

    # ------------------------------------------------------------------ #
    # statements
    # ------------------------------------------------------------------ #
    def _emit(self, step: Step) -> None:
        self.steps.append(step)

    @property
    def _idx(self) -> int:
        return len(self.steps)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            targets: list[str] = []
            for target in stmt.targets:
                targets.extend(self._targets(target))
            self._emit(["assign", targets, self._expr(stmt.value), stmt.lineno])
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._emit(
                    ["assign", self._targets(stmt.target),
                     self._expr(stmt.value), stmt.lineno]
                )
        elif isinstance(stmt, ast.AugAssign):
            self._emit(
                ["aug", self._targets(stmt.target),
                 self._expr(stmt.value), stmt.lineno]
            )
        elif isinstance(stmt, ast.Return):
            value = stmt.value if stmt.value is not None else ast.Constant(None)
            if not hasattr(value, "lineno"):
                value = ast.copy_location(value, stmt)
            self._emit(["ret", self._expr(value), stmt.lineno])
        elif isinstance(stmt, ast.Expr):
            expr = self._expr(stmt.value, bare=True)
            self._emit(["expr", expr, stmt.lineno])
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            if isinstance(stmt, ast.AsyncFor):
                self.awaits.append([self._idx, stmt.lineno])
            self._emit(
                ["assign", self._targets(stmt.target),
                 self._expr(stmt.iter), stmt.lineno]
            )
            for child in stmt.body:
                self._stmt(child)
            for child in stmt.orelse:
                self._stmt(child)
        elif isinstance(stmt, ast.While):
            self._emit(["expr", self._expr(stmt.test), stmt.lineno])
            for child in stmt.body:
                self._stmt(child)
            for child in stmt.orelse:
                self._stmt(child)
        elif isinstance(stmt, ast.If):
            self._emit(["expr", self._expr(stmt.test), stmt.lineno])
            for child in stmt.body:
                self._stmt(child)
            for child in stmt.orelse:
                self._stmt(child)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._with(stmt)
        elif isinstance(stmt, ast.Try):
            for child in stmt.body:
                self._stmt(child)
            for handler in stmt.handlers:
                for child in handler.body:
                    self._stmt(child)
            for child in stmt.orelse:
                self._stmt(child)
            for child in stmt.finalbody:
                self._stmt(child)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._emit(["expr", self._expr(stmt.exc), stmt.lineno])
        elif isinstance(stmt, ast.Assert):
            self._emit(["expr", self._expr(stmt.test), stmt.lineno])
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                for name in self._targets(target):
                    root = _self_root(name)
                    if root is not None:
                        self._access(root, "write", None, stmt.lineno)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _FunctionExtractor(
                self.module, self.path, self._scope + [stmt.name],
                self.cls, stmt, self.sink,
            ).collect()
        elif isinstance(stmt, ast.ClassDef):
            # Classes nested inside functions are rare; extract their
            # methods under the outer scope so nothing is silently lost.
            for child in stmt.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    _FunctionExtractor(
                        self.module, self.path,
                        self._scope + [stmt.name, child.name],
                        stmt.name, child, self.sink,
                    ).collect()
        # Import/Pass/Break/Continue/Global/Nonlocal: no dataflow.

    def collect(self) -> None:
        self.sink.append(self.extract())

    def _with(self, stmt: ast.With | ast.AsyncWith) -> None:
        held: list[str] = []
        for item in stmt.items:
            ctx = item.context_expr
            dotted = dotted_of(ctx)
            terminal = dotted.rsplit(".", 1)[-1] if dotted else None
            if terminal is None and isinstance(ctx, ast.Call):
                name = dotted_of(ctx.func)
                terminal = name.rsplit(".", 1)[-1] if name else None
            if isinstance(stmt, ast.AsyncWith):
                self.awaits.append([self._idx, stmt.lineno])
            if item.optional_vars is not None:
                self._emit(
                    ["assign", self._targets(item.optional_vars),
                     self._expr(ctx), stmt.lineno]
                )
            else:
                self._emit(["expr", self._expr(ctx), stmt.lineno])
            if terminal is not None:
                held.append(terminal)
        self._locks.extend(held)
        try:
            for child in stmt.body:
                self._stmt(child)
        finally:
            del self._locks[len(self._locks) - len(held) :]

    # ------------------------------------------------------------------ #
    # targets and accesses
    # ------------------------------------------------------------------ #
    def _targets(self, node: ast.expr) -> list[str]:
        """Flatten an assignment target into dotted names (best effort)."""
        if isinstance(node, ast.Name):
            return [node.id]
        if isinstance(node, ast.Attribute):
            dotted = dotted_of(node)
            if dotted is not None:
                root = _self_root(dotted)
                if root is not None:
                    self._access(root, "write", None, node.lineno)
                return [dotted]
            return []
        if isinstance(node, ast.Subscript):
            dotted = dotted_of(node.value)
            if dotted is not None:
                root = _self_root(dotted)
                if root is not None:
                    self._access(root, "write", None, node.lineno)
                return [dotted]
            return []
        if isinstance(node, (ast.Tuple, ast.List)):
            names: list[str] = []
            for element in node.elts:
                names.extend(self._targets(element))
            return names
        if isinstance(node, ast.Starred):
            return self._targets(node.value)
        return []

    def _access(
        self, obj: str, mode: str, meth: Optional[str], ln: int
    ) -> None:
        self.accesses.append(
            {"i": self._idx, "obj": obj, "mode": mode, "meth": meth,
             "ln": ln, "locks": list(self._locks)}
        )

    # ------------------------------------------------------------------ #
    # expressions
    # ------------------------------------------------------------------ #
    def _expr(self, node: ast.expr, *, bare: bool = False) -> Expr:
        ln = getattr(node, "lineno", self.node.lineno)
        if isinstance(node, ast.Await):
            self.awaits.append([self._idx, ln])
            inner = self._expr(node.value, bare=bare)
            if inner.get("k") == "call":
                inner["awaited"] = True
            return inner
        if isinstance(node, ast.Name):
            return {"k": "name", "id": node.id, "ln": ln}
        if isinstance(node, ast.Attribute):
            dotted = dotted_of(node)
            root = _self_root(dotted)
            if root is not None:
                self._access(root, "read", None, ln)
            base = None
            if not isinstance(node.value, ast.Name) or dotted is None:
                base = self._expr(node.value)
            return {"k": "attr", "attr": node.attr, "dotted": dotted,
                    "base": base, "ln": ln}
        if isinstance(node, ast.Call):
            dotted = dotted_of(node.func)
            name: Optional[str] = None
            if dotted is not None:
                name = dotted.rsplit(".", 1)[-1]
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            root = _self_root(dotted)
            if root is not None and dotted is not None and dotted.count(".") >= 2:
                # self.X.method(...) — a potential shared-state mutation.
                self._access(root, "call", name, ln)
            args = [self._expr(a.value if isinstance(a, ast.Starred) else a)
                    for a in node.args]
            kw: list[list[Any]] = [
                [k.arg, self._expr(k.value)] for k in node.keywords
            ]
            call: Expr = {"k": "call", "name": name, "dotted": dotted,
                          "args": args, "kw": kw, "ln": ln,
                          "awaited": False, "bare": bare}
            if dotted is None:
                # The callee is itself an expression (call-on-call,
                # subscripted callable, ...): keep it as a data part so
                # taint through e.g. ``self._cipher().encrypt`` survives.
                call["fexpr"] = self._expr(node.func)
            return call
        if isinstance(node, ast.Constant):
            return {"k": "const", "ln": ln}
        if isinstance(node, ast.IfExp):
            # The ternary's *value* is one of the branches; the test only
            # decides which (implicit flow, outside taint scope).  Keep
            # the test as a guard so calls inside it are still scanned.
            return {
                "k": "many",
                "parts": [self._expr(node.body), self._expr(node.orelse)],
                "guards": [self._expr(node.test)],
                "ln": ln,
            }
        # Everything else flattens to its child expressions.
        parts: list[Expr] = []
        guards: list[Expr] = []
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                parts.append(self._expr(child))
            elif isinstance(child, ast.comprehension):
                parts.append(self._expr(child.iter))
                for test in child.ifs:
                    guards.append(self._expr(test))
        many: Expr = {"k": "many", "parts": parts, "ln": ln}
        if guards:
            many["guards"] = guards
        return many


def _resolve_relative(module: str, path: str, level: int, target: str | None) -> str:
    """Resolve a ``from ..x import y`` module reference to a dotted name.

    The importing module's package is the module itself for a package
    ``__init__.py`` and its parent otherwise; each additional level strips
    one more component.
    """
    parts = module.split(".")
    package = parts if path.endswith("/__init__.py") else parts[:-1]
    drop = level - 1
    if drop > 0:
        package = package[:-drop] if drop < len(package) else []
    if target:
        package = package + target.split(".")
    return ".".join(package)


def extract_module(path: str, source: str) -> ModuleIR:
    """Parse *source* and extract the serializable module IR.

    *path* must be the repo-relative POSIX path (it determines the dotted
    module name used for cross-module resolution).  Raises ``SyntaxError``
    for unparseable source, like the rest of the engine.
    """
    tree = ast.parse(source, filename=path)
    module = module_name_for_path(path)
    imports: dict[str, list[Optional[str]]] = {}
    functions: list[FunctionIR] = []

    def walk_body(body: list[ast.stmt], scope: list[str], cls: Optional[str]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    imports[bound] = [target, None]
            elif isinstance(stmt, ast.ImportFrom):
                base = stmt.module or ""
                if stmt.level:
                    base = _resolve_relative(module, path, stmt.level, stmt.module)
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    imports[bound] = [base, alias.name]
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _FunctionExtractor(
                    module, path, scope + [stmt.name], cls, stmt, functions
                ).collect()
            elif isinstance(stmt, ast.ClassDef):
                walk_body(stmt.body, scope + [stmt.name], stmt.name)
            elif isinstance(stmt, (ast.If, ast.Try)):
                # TYPE_CHECKING guards / optional-dependency fallbacks.
                walk_body(stmt.body, scope, cls)
                if isinstance(stmt, ast.Try):
                    for handler in stmt.handlers:
                        walk_body(handler.body, scope, cls)
                    walk_body(stmt.orelse, scope, cls)
                    walk_body(stmt.finalbody, scope, cls)
                else:
                    walk_body(stmt.orelse, scope, cls)

    walk_body(tree.body, [], None)
    return {
        "version": IR_VERSION,
        "path": path,
        "module": module,
        "imports": imports,
        "functions": functions,
    }
