"""Command-line entry point: ``python -m tools.privacy_lint``."""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from tools.privacy_lint.baseline import Baseline
from tools.privacy_lint.engine import lint_paths
from tools.privacy_lint.manifest import Manifest
from tools.privacy_lint.rules import ALL_RULES, PROGRAM_RULES
from tools.privacy_lint.sarif import to_sarif

_PACKAGE_DIR = Path(__file__).parent
DEFAULT_PATHS = ["src/repro"]
DEFAULT_BASELINE = _PACKAGE_DIR / "baseline.txt"
DEFAULT_CACHE_DIR = ".privacy_lint_cache"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="privacy-lint",
        description=(
            "Static enforcement of the paper's trust-boundary invariants "
            "(PL001-PL008); see tools/privacy_lint/__init__.py"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=DEFAULT_PATHS,
        help=f"files/directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--manifest",
        default=None,
        help="trust manifest INI (default: the committed manifest.cfg)",
    )
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="baseline file of grandfathered findings",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report baselined findings too",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the summary line",
    )
    parser.add_argument(
        "--format",
        choices=("text", "sarif"),
        default="text",
        help="output format: human-readable text (default) or SARIF 2.1.0 "
        "JSON on stdout (for CI artifact upload)",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help="directory for the on-disk dataflow-IR cache used by the "
        f"interprocedural rules (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the IR cache (every file is re-analysed)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES + PROGRAM_RULES:
            print(f"{rule.code}  {rule.name:28s} {rule.rationale}")
        return 0

    try:
        manifest = Manifest.load(args.manifest)
    except (OSError, ValueError) as exc:
        print(f"privacy-lint: cannot load manifest: {exc}", file=sys.stderr)
        return 2

    select = None
    if args.select:
        select = {code.strip().upper() for code in args.select.split(",")}

    baseline: Baseline | None = None
    if not args.no_baseline and not args.write_baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except ValueError as exc:
            print(f"privacy-lint: {exc}", file=sys.stderr)
            return 2

    cache_dir = None if args.no_cache else args.cache_dir
    report = lint_paths(
        args.paths,
        manifest,
        baseline=baseline,
        select=select,
        cache_dir=cache_dir,
    )

    if args.write_baseline:
        previous = Baseline.load(args.baseline)
        Baseline.from_findings(report.findings, previous).save(args.baseline)
        print(
            f"privacy-lint: wrote {len(report.findings)} entr"
            f"{'y' if len(report.findings) == 1 else 'ies'} to {args.baseline}"
        )
        return 0

    if args.format == "sarif":
        json.dump(to_sarif(report), sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 1 if (report.findings or report.errors) else 0

    for error in report.errors:
        print(f"privacy-lint: error: {error}", file=sys.stderr)
    for finding in report.findings:
        print(finding.render())
    if not args.quiet:
        summary = (
            f"privacy-lint: {report.files_checked} files, "
            f"{len(report.findings)} finding(s)"
        )
        if report.baseline_suppressed:
            summary += f", {report.baseline_suppressed} baselined"
        if report.pragma_suppressed:
            summary += f", {report.pragma_suppressed} pragma-suppressed"
        print(summary)
    return 1 if (report.findings or report.errors) else 0


if __name__ == "__main__":
    raise SystemExit(main())
