"""The trust manifest: which module plays which architectural role.

The paper's parties (querier, SSI, TDS) do not coincide with Python
packages one-to-one — protocol drivers orchestrate both sides, ``crypto/``
is shared — so the mapping is declared here instead of being inferred.
The committed ``manifest.cfg`` (INI, stdlib :mod:`configparser` so it
works on every supported Python) assigns a *role* to each path pattern and
parameterizes the individual rules; tests build custom manifests to lint
fixture files under synthetic roles.

Patterns are :func:`fnmatch.fnmatchcase` globs over repo-relative POSIX
paths; the first matching pattern wins.
"""

from __future__ import annotations

import configparser
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path

_DEFAULT_MANIFEST = Path(__file__).with_name("manifest.cfg")


def _split_list(raw: str) -> list[str]:
    parts: list[str] = []
    for chunk in raw.replace("\n", ",").split(","):
        chunk = chunk.strip()
        if chunk:
            parts.append(chunk)
    return parts


@dataclass
class Manifest:
    """Role map plus per-rule parameters (see ``manifest.cfg``)."""

    #: (pattern, role) pairs; first match wins.  Unmatched files have role
    #: ``None`` and only the role-independent rules apply to them.
    roles: list[tuple[str, str]] = field(default_factory=list)

    #: PL001 — module-prefix -> reason; SSI-role files may not import these.
    forbidden_modules: dict[str, str] = field(default_factory=dict)
    #: PL001 — ("module", "name") -> reason; forbidden from-imports.
    forbidden_names: dict[tuple[str, str], str] = field(default_factory=dict)

    #: PL003 — path patterns where Det_Enc may be constructed/acquired.
    det_enc_allowed: list[str] = field(default_factory=list)
    #: PL003 — callables whose invocation means "acquire a Det_Enc cipher".
    det_enc_callables: set[str] = field(default_factory=set)
    #: PL003 — modules whose import implies Det_Enc access.
    det_enc_modules: set[str] = field(default_factory=set)

    #: PL004 — attribute names that move bytes across the TDS<->SSI boundary.
    transfer_methods: set[str] = field(default_factory=set)
    #: PL004 — attribute names that charge work to the LoadQ choke point.
    account_methods: set[str] = field(default_factory=set)

    #: PL006 — callables that emit structured observability records.
    obs_sinks: set[str] = field(default_factory=set)
    #: PL006 — field keywords a sink call may carry.
    obs_allowed_fields: set[str] = field(default_factory=set)
    #: PL006 — identifier substrings banned from field value expressions
    #: (except inside ``len(...)``).
    obs_forbidden_value_names: set[str] = field(default_factory=set)

    #: PL007 — call-name prefixes whose results carry plaintext (decrypt_*).
    taint_source_call_prefixes: tuple[str, ...] = ()
    #: PL007 — exact call names whose results carry plaintext.
    taint_source_calls: set[str] = field(default_factory=set)
    #: PL007 — constructors that build plaintext values (TupleContent).
    taint_source_constructors: set[str] = field(default_factory=set)
    #: PL007 — attribute names whose read yields plaintext/key material.
    taint_source_attributes: set[str] = field(default_factory=set)
    #: PL007 — call-name prefixes that sanitize (encrypt_*, seal_*, hash*).
    taint_sanitizer_prefixes: tuple[str, ...] = ()
    #: PL007 — exact call names that sanitize.
    taint_sanitizers: set[str] = field(default_factory=set)
    #: PL007 — attribute projections that yield only SSI-visible scalars.
    taint_sanitizer_attributes: set[str] = field(default_factory=set)
    #: PL007 — roles whose functions are egress sinks.
    taint_sink_roles: set[str] = field(default_factory=set)
    #: PL007 — observability callables whose arguments are sinks.
    taint_sink_callables: set[str] = field(default_factory=set)

    #: PL008 — roles whose ``async def`` bodies must not block the loop.
    async_roles: set[str] = field(default_factory=set)
    #: PL008 — dotted (or bare builtin) call names that block.
    blocking_calls: set[str] = field(default_factory=set)
    #: PL008 — method names that block regardless of receiver.
    blocking_methods: set[str] = field(default_factory=set)
    #: PL008 — callables whose argument subtrees run off-loop by design.
    offload_callables: set[str] = field(default_factory=set)
    #: PL008 — container methods that mutate shared state.
    mutating_methods: set[str] = field(default_factory=set)
    #: PL008 — context-manager names that count as the owning lock.
    lock_names: set[str] = field(default_factory=set)

    def role_of(self, path: str) -> str | None:
        for pattern, role in self.roles:
            if fnmatchcase(path, pattern):
                return role
        return None

    def det_enc_allows(self, path: str) -> bool:
        return any(fnmatchcase(path, pattern) for pattern in self.det_enc_allowed)

    # ------------------------------------------------------------------ #
    @classmethod
    def load(cls, path: str | Path | None = None) -> "Manifest":
        """Load a manifest from INI; ``None`` loads the committed default."""
        # "=" only: pl001.forbidden_names keys embed ":" (module:name).
        parser = configparser.ConfigParser(delimiters=("=",))
        parser.optionxform = str  # type: ignore[assignment]  # keep case
        manifest_path = Path(path) if path is not None else _DEFAULT_MANIFEST
        with open(manifest_path, encoding="utf-8") as handle:
            parser.read_file(handle)

        manifest = cls()
        if parser.has_section("roles"):
            for pattern, role in parser.items("roles"):
                manifest.roles.append((pattern, role.strip()))
        if parser.has_section("pl001.forbidden_modules"):
            for prefix, reason in parser.items("pl001.forbidden_modules"):
                manifest.forbidden_modules[prefix] = reason.strip()
        if parser.has_section("pl001.forbidden_names"):
            for spec, reason in parser.items("pl001.forbidden_names"):
                module, _, name = spec.partition(":")
                manifest.forbidden_names[(module, name)] = reason.strip()
        if parser.has_section("pl003"):
            section = parser["pl003"]
            manifest.det_enc_allowed = _split_list(section.get("allowed", ""))
            manifest.det_enc_callables = set(_split_list(section.get("callables", "")))
            manifest.det_enc_modules = set(_split_list(section.get("modules", "")))
        if parser.has_section("pl004"):
            section = parser["pl004"]
            manifest.transfer_methods = set(
                _split_list(section.get("transfer_methods", ""))
            )
            manifest.account_methods = set(
                _split_list(section.get("account_methods", ""))
            )
        if parser.has_section("pl006"):
            section = parser["pl006"]
            manifest.obs_sinks = set(_split_list(section.get("sinks", "")))
            manifest.obs_allowed_fields = set(
                _split_list(section.get("allowed_fields", ""))
            )
            manifest.obs_forbidden_value_names = set(
                _split_list(section.get("forbidden_value_names", ""))
            )
        if parser.has_section("pl007"):
            section = parser["pl007"]
            manifest.taint_source_call_prefixes = tuple(
                _split_list(section.get("source_call_prefixes", ""))
            )
            manifest.taint_source_calls = set(
                _split_list(section.get("source_calls", ""))
            )
            manifest.taint_source_constructors = set(
                _split_list(section.get("source_constructors", ""))
            )
            manifest.taint_source_attributes = set(
                _split_list(section.get("source_attributes", ""))
            )
            manifest.taint_sanitizer_prefixes = tuple(
                _split_list(section.get("sanitizer_prefixes", ""))
            )
            manifest.taint_sanitizers = set(
                _split_list(section.get("sanitizers", ""))
            )
            manifest.taint_sanitizer_attributes = set(
                _split_list(section.get("sanitizer_attributes", ""))
            )
            manifest.taint_sink_roles = set(
                _split_list(section.get("sink_roles", ""))
            )
            manifest.taint_sink_callables = set(
                _split_list(section.get("sink_callables", ""))
            )
        if parser.has_section("pl008"):
            section = parser["pl008"]
            manifest.async_roles = set(_split_list(section.get("async_roles", "")))
            manifest.blocking_calls = set(
                _split_list(section.get("blocking_calls", ""))
            )
            manifest.blocking_methods = set(
                _split_list(section.get("blocking_methods", ""))
            )
            manifest.offload_callables = set(
                _split_list(section.get("offload_callables", ""))
            )
            manifest.mutating_methods = set(
                _split_list(section.get("mutating_methods", ""))
            )
            manifest.lock_names = set(_split_list(section.get("locks", "")))
        return manifest
