"""SARIF 2.1.0 serialization of a lint report.

SARIF is the interchange format CI code-scanning UIs ingest (GitHub code
scanning among them), so ``--format sarif`` lets the CI job upload the
privacy-lint run as an artifact that renders inline on the diff.  Only
the fields those consumers read are emitted: the rule catalogue, one
``result`` per finding with its primary location, and the
interprocedural trace as ``relatedLocations``.
"""

from __future__ import annotations

from typing import Any

from tools.privacy_lint.engine import LintReport
from tools.privacy_lint.rules import ALL_RULES, PROGRAM_RULES

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _location(path: str, line: int, col: int = 1) -> dict[str, Any]:
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": path},
            "region": {"startLine": line, "startColumn": col},
        }
    }


def to_sarif(report: LintReport, tool_version: str = "0") -> dict[str, Any]:
    """The report as a SARIF 2.1.0 ``log`` dict (caller serializes)."""
    rules = [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.rationale},
        }
        for rule in ALL_RULES + PROGRAM_RULES
    ]
    results: list[dict[str, Any]] = []
    for finding in report.findings:
        result: dict[str, Any] = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [_location(finding.path, finding.line, finding.col)],
        }
        if finding.related:
            result["relatedLocations"] = [
                {
                    **_location(rel_path, rel_line),
                    "message": {"text": note},
                }
                for rel_path, rel_line, note in finding.related
            ]
        results.append(result)
    for error in report.errors:
        results.append(
            {
                "ruleId": "PL000",
                "level": "error",
                "message": {"text": f"lint error: {error}"},
            }
        )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "privacy-lint",
                        "informationUri": "tools/privacy_lint",
                        "version": tool_version,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
