"""The lint engine: file discovery, rule dispatch, pragma/baseline filters.

Two phases per :func:`lint_paths` run:

1. **syntactic** — PL001–PL006 run per file over the AST, exactly as in
   PR 2;
2. **whole-program** — every parsed file's dataflow IR (cached on disk by
   content hash when a cache directory is given) is linked into one
   :class:`~tools.privacy_lint.analysis.program.Program`, and the
   interprocedural rules (PL007/PL008) run once over it.

Interprocedural findings carry related locations (taint source, call
hops, blocking leaf); a pragma at the primary *or* any related line
suppresses them.  The baseline keys on the primary location only.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from tools.privacy_lint.analysis.cache import IRCache
from tools.privacy_lint.analysis.ir import ModuleIR, extract_module
from tools.privacy_lint.analysis.program import Program
from tools.privacy_lint.baseline import Baseline
from tools.privacy_lint.diagnostics import Finding
from tools.privacy_lint.manifest import Manifest
from tools.privacy_lint.pragmas import PragmaIndex
from tools.privacy_lint.rules import ALL_RULES, PROGRAM_RULES, ModuleContext
from tools.privacy_lint.rules.context import ProgramContext

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "build"}


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    pragma_suppressed: int = 0
    baseline_suppressed: int = 0
    files_checked: int = 0
    errors: list[str] = field(default_factory=list)
    #: IR cache statistics (both zero when no cache directory was given)
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors


def _select_rules(select: set[str] | None) -> tuple[type, ...]:
    if select is None:
        return ALL_RULES
    return tuple(rule for rule in ALL_RULES if rule.code in select)


def _select_program_rules(select: set[str] | None) -> tuple[type, ...]:
    if select is None:
        return PROGRAM_RULES
    return tuple(rule for rule in PROGRAM_RULES if rule.code in select)


def _lint_source_counting(
    path: str,
    source: str,
    manifest: Manifest,
    select: set[str] | None,
) -> tuple[list[Finding], int]:
    tree = ast.parse(source, filename=path)
    context = ModuleContext(path=path, source=source, tree=tree, manifest=manifest)
    pragmas = PragmaIndex(source)
    findings: list[Finding] = []
    suppressed = 0
    for rule_cls in _select_rules(select):
        for finding in rule_cls(context).run():
            if pragmas.suppresses(finding):
                suppressed += 1
            else:
                findings.append(finding)
    return sorted(findings), suppressed


def lint_source(
    path: str,
    source: str,
    manifest: Manifest,
    select: set[str] | None = None,
) -> list[Finding]:
    """Lint one module given its source text (pragma-filtered, unbaselined).

    Syntactic rules only — interprocedural analysis needs the whole
    program; use :func:`lint_paths` (optionally with ``overrides``) for
    PL007/PL008.

    *path* is the repo-relative POSIX path the manifest patterns are
    matched against — callers may lint hypothetical content for a real
    path (the injection tests do exactly that).
    """
    findings, _ = _lint_source_counting(path, source, manifest, select)
    return findings


def iter_python_files(paths: list[str | Path], root: Path) -> list[Path]:
    """Expand *paths* (files or directories) into sorted .py files."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    files.append(candidate)
        elif path.suffix == ".py":
            files.append(path)
    return files


def _program_suppressed(
    finding: Finding, pragma_indexes: dict[str, PragmaIndex]
) -> bool:
    """An interprocedural finding is suppressed by a pragma at the sink
    (primary) line or at any related location — source or hop."""
    index = pragma_indexes.get(finding.path)
    if index is not None and index.suppresses(finding):
        return True
    for rel_path, rel_line, _note in finding.related:
        index = pragma_indexes.get(rel_path)
        if index is not None and index.suppresses_line(finding.rule, rel_line):
            return True
    return False


def lint_paths(
    paths: list[str | Path],
    manifest: Manifest,
    baseline: Baseline | None = None,
    root: str | Path | None = None,
    select: set[str] | None = None,
    overrides: dict[str, str] | None = None,
    cache_dir: str | Path | None = None,
) -> LintReport:
    """Lint every Python file under *paths*; returns the filtered report.

    Pragma-suppressed findings never surface; baseline-suppressed ones are
    counted but dropped.  Unparseable files are reported as errors (the
    linter must not silently skip what it cannot vouch for).

    *overrides* maps repo-relative paths to replacement source text —
    the acceptance-injection tests lint the real repository with one
    hypothetical file swapped in.  *cache_dir* enables the on-disk IR
    cache for the whole-program phase.
    """
    root_path = Path(root) if root is not None else Path.cwd()
    report = LintReport()
    overrides = overrides or {}
    cache = IRCache(cache_dir) if cache_dir is not None else None

    sources: dict[str, str] = {}
    modules: dict[str, ModuleIR] = {}
    for file_path in iter_python_files(paths, root_path):
        try:
            rel = file_path.resolve().relative_to(root_path.resolve()).as_posix()
        except ValueError:
            rel = file_path.as_posix()
        try:
            source = overrides.get(rel)
            if source is None:
                source = file_path.read_text(encoding="utf-8")
            findings, suppressed = _lint_source_counting(rel, source, manifest, select)
        except (OSError, SyntaxError) as exc:
            report.errors.append(f"{rel}: {exc}")
            continue
        sources[rel] = source
        report.files_checked += 1
        report.pragma_suppressed += suppressed
        for finding in findings:
            if baseline is not None and baseline.suppresses(finding):
                report.baseline_suppressed += 1
            else:
                report.findings.append(finding)

    # Overrides for paths that do not exist on disk inject brand-new
    # modules into the program — how the acceptance tests plant a leak.
    for rel, source in overrides.items():
        if rel in sources:
            continue
        try:
            findings, suppressed = _lint_source_counting(rel, source, manifest, select)
        except SyntaxError as exc:
            report.errors.append(f"{rel}: {exc}")
            continue
        sources[rel] = source
        report.files_checked += 1
        report.pragma_suppressed += suppressed
        for finding in findings:
            if baseline is not None and baseline.suppresses(finding):
                report.baseline_suppressed += 1
            else:
                report.findings.append(finding)

    program_rules = _select_program_rules(select)
    if program_rules and sources:
        for rel, source in sources.items():
            ir = cache.get(rel, source) if cache is not None else None
            if ir is None:
                ir = extract_module(rel, source)
                if cache is not None:
                    cache.put(rel, source, ir)
            modules[rel] = ir
        if cache is not None:
            report.cache_hits = cache.hits
            report.cache_misses = cache.misses
        roles = {rel: manifest.role_of(rel) for rel in modules}
        program = Program(modules, roles)
        context = ProgramContext(
            program=program, manifest=manifest, sources=sources
        )
        pragma_indexes = {rel: PragmaIndex(src) for rel, src in sources.items()}
        for rule_cls in program_rules:
            for finding in rule_cls(context).run():
                if _program_suppressed(finding, pragma_indexes):
                    report.pragma_suppressed += 1
                elif baseline is not None and baseline.suppresses(finding):
                    report.baseline_suppressed += 1
                else:
                    report.findings.append(finding)

    report.findings.sort()
    return report
