"""The lint engine: file discovery, rule dispatch, pragma/baseline filters."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from tools.privacy_lint.baseline import Baseline
from tools.privacy_lint.diagnostics import Finding
from tools.privacy_lint.manifest import Manifest
from tools.privacy_lint.pragmas import PragmaIndex
from tools.privacy_lint.rules import ALL_RULES, ModuleContext

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "build"}


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    pragma_suppressed: int = 0
    baseline_suppressed: int = 0
    files_checked: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors


def _select_rules(select: set[str] | None) -> tuple[type, ...]:
    if select is None:
        return ALL_RULES
    return tuple(rule for rule in ALL_RULES if rule.code in select)


def _lint_source_counting(
    path: str,
    source: str,
    manifest: Manifest,
    select: set[str] | None,
) -> tuple[list[Finding], int]:
    tree = ast.parse(source, filename=path)
    context = ModuleContext(path=path, source=source, tree=tree, manifest=manifest)
    pragmas = PragmaIndex(source)
    findings: list[Finding] = []
    suppressed = 0
    for rule_cls in _select_rules(select):
        for finding in rule_cls(context).run():
            if pragmas.suppresses(finding):
                suppressed += 1
            else:
                findings.append(finding)
    return sorted(findings), suppressed


def lint_source(
    path: str,
    source: str,
    manifest: Manifest,
    select: set[str] | None = None,
) -> list[Finding]:
    """Lint one module given its source text (pragma-filtered, unbaselined).

    *path* is the repo-relative POSIX path the manifest patterns are
    matched against — callers may lint hypothetical content for a real
    path (the injection tests do exactly that).
    """
    findings, _ = _lint_source_counting(path, source, manifest, select)
    return findings


def iter_python_files(paths: list[str | Path], root: Path) -> list[Path]:
    """Expand *paths* (files or directories) into sorted .py files."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    files.append(candidate)
        elif path.suffix == ".py":
            files.append(path)
    return files


def lint_paths(
    paths: list[str | Path],
    manifest: Manifest,
    baseline: Baseline | None = None,
    root: str | Path | None = None,
    select: set[str] | None = None,
) -> LintReport:
    """Lint every Python file under *paths*; returns the filtered report.

    Pragma-suppressed findings never surface; baseline-suppressed ones are
    counted but dropped.  Unparseable files are reported as errors (the
    linter must not silently skip what it cannot vouch for).
    """
    root_path = Path(root) if root is not None else Path.cwd()
    report = LintReport()
    for file_path in iter_python_files(paths, root_path):
        try:
            rel = file_path.resolve().relative_to(root_path.resolve()).as_posix()
        except ValueError:
            rel = file_path.as_posix()
        try:
            source = file_path.read_text(encoding="utf-8")
            findings, suppressed = _lint_source_counting(rel, source, manifest, select)
        except (OSError, SyntaxError) as exc:
            report.errors.append(f"{rel}: {exc}")
            continue
        report.files_checked += 1
        report.pragma_suppressed += suppressed
        for finding in findings:
            if baseline is not None and baseline.suppresses(finding):
                report.baseline_suppressed += 1
            else:
                report.findings.append(finding)
    report.findings.sort()
    return report
