"""Inline suppression pragmas.

Two forms, mirroring the usual linter conventions:

* line pragma — suppresses matching findings on that physical line::

      self.ssi.store_result_rows(...)  # privacy-lint: disable=PL004  <why>

* file pragma — anywhere in the first ``_FILE_PRAGMA_WINDOW`` lines,
  suppresses matching findings in the whole file::

      # privacy-lint: disable-file=PL003

``disable=all`` suppresses every rule.  A pragma never ships without a
justification in the surrounding comment; that convention is enforced in
review, not here.
"""

from __future__ import annotations

import re

from tools.privacy_lint.diagnostics import Finding

# Codes are comma-separated identifiers; trailing prose ("  why ...")
# after the list must not be swallowed into the last code.
_CODES = r"((?:[A-Za-z0-9_]+\s*,\s*)*[A-Za-z0-9_]+)"
_LINE_RE = re.compile(r"#\s*privacy-lint:\s*disable=" + _CODES)
_FILE_RE = re.compile(r"#\s*privacy-lint:\s*disable-file=" + _CODES)
_FILE_PRAGMA_WINDOW = 10


def _parse_codes(raw: str) -> set[str]:
    return {code.strip().upper() for code in raw.split(",") if code.strip()}


class PragmaIndex:
    """Per-file index of suppression pragmas, built once from the source."""

    def __init__(self, source: str) -> None:
        self._by_line: dict[int, set[str]] = {}
        self._file_wide: set[str] = set()
        lines = source.splitlines()
        for lineno, text in enumerate(lines, start=1):
            match = _LINE_RE.search(text)
            if match:
                self._by_line[lineno] = _parse_codes(match.group(1))
            if lineno <= _FILE_PRAGMA_WINDOW:
                match = _FILE_RE.search(text)
                if match:
                    self._file_wide |= _parse_codes(match.group(1))

    def suppresses_line(self, rule: str, line: int) -> bool:
        """Is *rule* disabled on *line* (or file-wide)?

        Interprocedural findings call this for every related location, so
        a ``# privacy-lint: disable=PL007`` works at either the source or
        the sink line.
        """
        rule = rule.upper()
        if "ALL" in self._file_wide or rule in self._file_wide:
            return True
        codes = self._by_line.get(line, set())
        return "ALL" in codes or rule in codes

    def suppresses(self, finding: Finding) -> bool:
        return self.suppresses_line(finding.rule, finding.line)
