"""``python -m tools.privacy_lint`` dispatches to the CLI."""

from tools.privacy_lint.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
