"""Finding: one diagnostic emitted by a privacy-lint rule."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """A single diagnostic, sortable into file/line order.

    ``path`` is repo-relative and POSIX-style so findings are stable across
    machines (baseline entries key on it).  ``source_line`` carries the
    stripped offending line; the baseline keys on its whitespace-normalized
    form so entries survive reformatting and line-number churn.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    source_line: str = ""

    def normalized_source(self) -> str:
        """The offending line with whitespace collapsed (baseline key)."""
        return " ".join(self.source_line.split())

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
