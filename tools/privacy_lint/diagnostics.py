"""Finding: one diagnostic emitted by a privacy-lint rule."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """A single diagnostic, sortable into file/line order.

    ``path`` is repo-relative and POSIX-style so findings are stable across
    machines (baseline entries key on it).  ``source_line`` carries the
    stripped offending line; the baseline keys on its whitespace-normalized
    form so entries survive reformatting and line-number churn.

    ``related`` carries secondary locations for interprocedural findings —
    the source and every call hop of a PL007 taint trace, or the blocking
    leaf of a transitive PL008 chain — as ``(path, line, note)`` tuples.
    The primary location stays the *sink*/call site (that is the line a
    reviewer must justify), but a pragma at any related location also
    suppresses the finding.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    source_line: str = ""
    related: tuple[tuple[str, int, str], ...] = ()

    def normalized_source(self) -> str:
        """The offending line with whitespace collapsed (baseline key)."""
        return " ".join(self.source_line.split())

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        for rel_path, rel_line, note in self.related:
            text += f"\n    {rel_path}:{rel_line}: {note}"
        return text
