"""privacy-lint: static enforcement of the paper's trust-boundary invariants.

The reproduction's security argument (DESIGN.md, "Statically enforced
invariants") rests on properties the code can only promise by convention:

* the SSI never touches plaintext or key material (§2.1, §3.1);
* everything crossing the TDS <-> SSI boundary is ciphertext (§3.2);
* deterministic encryption is legal only on grouping attributes of the
  noise-based / ED_Hist protocols (§4.3, §4.4);
* every byte a TDS moves is charged to LoadQ through one choke point
  (EXPERIMENTS.md, the PR 1 bug class);
* the simulator is deterministic — logical clock and seeded RNGs only.

This package machine-checks those invariants on every commit with a small
AST-based rule engine (stdlib only).  Rules are numbered PL001..PL005; see
:mod:`tools.privacy_lint.rules` for one module per rule.

Usage::

    python -m tools.privacy_lint [paths...]
    python -m tools.privacy_lint --list-rules
    python -m tools.privacy_lint --write-baseline

Findings can be suppressed three ways, in order of preference: fix the
code, add a ``# privacy-lint: disable=PL00X`` pragma on the offending line
(with a justification comment), or grandfather it in ``baseline.txt``.
"""

from tools.privacy_lint.diagnostics import Finding
from tools.privacy_lint.engine import LintReport, lint_paths, lint_source
from tools.privacy_lint.manifest import Manifest

__version__ = "1.0.0"

__all__ = [
    "Finding",
    "LintReport",
    "Manifest",
    "lint_paths",
    "lint_source",
    "__version__",
]
