"""Setup shim for environments without the `wheel` package (offline CI).

`pip install -e . --no-use-pep517` takes the legacy setuptools path, which
this file enables.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
