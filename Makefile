# Convenience targets for the repro library.

.PHONY: install test bench examples figures clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		python $$script || exit 1; \
	done

figures:
	python -m repro figures

clean:
	rm -rf build *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
