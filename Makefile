# Convenience targets for the repro library.

.PHONY: install test bench examples figures clean \
	lint lint-privacy lint-ruff lint-mypy

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

# ----------------------------------------------------------------------- #
# Static analysis.  privacy-lint (tools/privacy_lint, stdlib-only) always
# runs and is the gate for the paper's trust-boundary invariants; ruff and
# mypy run when installed (CI installs them; the bare container may not).
# ----------------------------------------------------------------------- #
lint: lint-privacy lint-ruff lint-mypy

lint-privacy:
	python -m tools.privacy_lint src/repro

lint-ruff:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check .; \
	else \
		echo "lint-ruff: ruff not installed — skipping (CI runs it)"; \
	fi

lint-mypy:
	@if python -c "import mypy" >/dev/null 2>&1; then \
		python -m mypy; \
	else \
		echo "lint-mypy: mypy not installed — skipping (CI runs it)"; \
	fi

bench:
	pytest benchmarks/ --benchmark-only

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		python $$script || exit 1; \
	done

figures:
	python -m repro figures

clean:
	rm -rf build *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
