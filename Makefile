# Convenience targets for the repro library.

.PHONY: install test bench examples figures clean serve-demo \
	lint lint-privacy lint-ruff lint-mypy

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

# ----------------------------------------------------------------------- #
# Static analysis.  privacy-lint (tools/privacy_lint, stdlib-only) always
# runs and is the gate for the paper's trust-boundary invariants; ruff and
# mypy run when installed (CI installs them; the bare container may not).
# ----------------------------------------------------------------------- #
lint: lint-privacy lint-ruff lint-mypy

lint-privacy:
	python -m tools.privacy_lint src/repro

lint-ruff:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check .; \
	else \
		echo "lint-ruff: ruff not installed — skipping (CI runs it)"; \
	fi

lint-mypy:
	@if python -c "import mypy" >/dev/null 2>&1; then \
		python -m mypy; \
	else \
		echo "lint-mypy: mypy not installed — skipping (CI runs it)"; \
	fi

bench:
	pytest benchmarks/ --benchmark-only

# Three real processes over localhost TCP: an SSI server (with its
# Prometheus endpoint up), a fleet of TDS clients and one querier.  After
# the queries, the metrics endpoint is scraped and asserted on, and
# `repro stats` fetches the same registry over the wire protocol.
SERVE_DEMO_PORT ?= 7464
SERVE_DEMO_METRICS_PORT ?= 9464
serve-demo:
	@set -e; \
	PYTHONPATH=src python -m repro serve --port $(SERVE_DEMO_PORT) \
		--metrics-port $(SERVE_DEMO_METRICS_PORT) --partition-timeout 2.0 & \
	SERVE_PID=$$!; \
	trap 'kill $$SERVE_PID 2>/dev/null || true' EXIT; \
	sleep 1.5; \
	PYTHONPATH=src python -m repro fleet --port $(SERVE_DEMO_PORT) --tds 8 --seed 3 --queries 2 & \
	FLEET_PID=$$!; \
	sleep 0.5; \
	PYTHONPATH=src python -m repro query --port $(SERVE_DEMO_PORT) --tds 8 --seed 3 --protocol s_agg; \
	PYTHONPATH=src python -m repro query --port $(SERVE_DEMO_PORT) --tds 8 --seed 3 --protocol ed_hist; \
	wait $$FLEET_PID; \
	python tools/check_metrics_endpoint.py --port $(SERVE_DEMO_METRICS_PORT) --min-requests 10 --check-healthz; \
	PYTHONPATH=src python -m repro stats --port $(SERVE_DEMO_PORT) | grep -q 'repro_ssi_requests_total{msg_type="post_query",outcome="ok"} 2' \
		&& echo "ok: repro stats sees both demo queries"

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		python $$script || exit 1; \
	done

figures:
	python -m repro figures

clean:
	rm -rf build *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
